//! Validates a `--telemetry` JSONL capture: every line must parse with
//! the in-tree JSON parser, and a capture that covers a full solve must
//! contain the solver's span / gap / refine / mass-drift records.
//!
//! With `--figure <name>` (and optionally `--profile quick|full`,
//! default `quick`) the check also enforces that figure's **telemetry
//! budget** from the registry: the capture must contain *exactly* the
//! number of `solver.solve` spans the figure is specified to produce —
//! a regression gate against both silently duplicated solves (a sweep
//! accidentally re-solving points) and silently skipped ones (a
//! checkpoint resume eating work it should have redone). The budgets
//! are warm-aware: spans carrying `warm: true` (lattice warm starts)
//! are counted against the plan's donor-bearing point ceiling for the
//! requested profile, and a violation is reported through the
//! registry's typed [`lrd_experiments::run::BudgetError`], which names
//! the offending figure.
//!
//! With `--coord` the capture is a **coordinator** telemetry file (from
//! `sweep_coord --telemetry`) instead of a solver one: the check then
//! verifies the lease ledger — every completed batch was granted, the
//! reclaim counter agrees with the reclaim events, and (with
//! `--figure`) the points of the completed batches sum to exactly the
//! figure's solve budget. Only valid for a capture from a single
//! coordinator process that was not killed mid-sweep.
//!
//! With `--fleet --lease-log <coord_lease.jsonl>` the positional paths
//! are **worker** captures and the check reconciles fleet telemetry
//! with the coordinator's durable ledger: every batch in the lease log
//! must be done, the per-worker `sweep.points` counters in the
//! captures must cover (and, when nothing was ever reclaimed, exactly
//! equal) the points of the batches the ledger credits to that worker,
//! and with `--trace <trace.json>` the exported Chrome timeline must
//! parse and contain a lease slice for every granted lease epoch.
//!
//! Used by `scripts/ci.sh` as the telemetry smoke check:
//!
//! ```sh
//! cargo run --release -p lrd-experiments --bin fig02_bounds -- --quick --telemetry /tmp/t.jsonl
//! cargo run --release --example telemetry_check -- /tmp/t.jsonl --figure fig02_bounds
//! ```
//!
//! Exits non-zero (with one line per violated requirement) when the
//! capture is malformed or incomplete.

use lrd::obs::{parse_json, Json};
use lrd_experiments::figures::Profile;
use std::process::ExitCode;

struct Args {
    /// The capture (legacy/--coord modes) or worker captures (--fleet).
    paths: Vec<String>,
    figure: Option<String>,
    profile: Profile,
    coord: bool,
    fleet: bool,
    lease_log: Option<String>,
    trace: Option<String>,
}

fn parse_args() -> Option<Args> {
    let mut paths = Vec::new();
    let mut figure = None;
    let mut profile = Profile::Quick;
    let mut coord = false;
    let mut fleet = false;
    let mut lease_log = None;
    let mut trace = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--figure" => figure = Some(args.next()?),
            "--profile" => profile = Profile::from_tag(&args.next()?)?,
            "--coord" => coord = true,
            "--fleet" => fleet = true,
            "--lease-log" => lease_log = Some(args.next()?),
            "--trace" => trace = Some(args.next()?),
            other if other.starts_with('-') => return None,
            other => paths.push(other.to_string()),
        }
    }
    // Legacy and --coord modes take exactly one capture; --fleet takes
    // one or more worker captures plus the ledger.
    if paths.is_empty() || (!fleet && paths.len() != 1) || (fleet && lease_log.is_none()) {
        return None;
    }
    Some(Args {
        paths,
        figure,
        profile,
        coord,
        fleet,
        lease_log,
        trace,
    })
}

/// Parses a JSONL file, failing loudly on any unparseable line except
/// a torn final one (a killed process's last write).
fn read_jsonl(path: &str) -> Result<Vec<Json>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut records = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        match parse_json(line) {
            Ok(json) => records.push(json),
            Err(e) if i + 1 == lines.len() => {
                eprintln!("telemetry_check: note: {path} has a torn final line ({e})");
            }
            Err(e) => return Err(format!("{path} line {} is not valid JSON: {e}", i + 1)),
        }
    }
    Ok(records)
}

/// The `--fleet` requirements: worker captures, the coordinator's
/// lease ledger, and (optionally) the exported trace must agree.
fn check_fleet(args: &Args) -> ExitCode {
    match try_check_fleet(args) {
        Ok(summary) => {
            println!("telemetry_check: {summary}");
            ExitCode::SUCCESS
        }
        Err(failures) => {
            for failure in failures {
                eprintln!("telemetry_check: {failure}");
            }
            ExitCode::FAILURE
        }
    }
}

fn try_check_fleet(args: &Args) -> Result<String, Vec<String>> {
    use std::collections::BTreeMap;

    let fail = |msg: String| -> Vec<String> { vec![msg] };
    let lease_log = args.lease_log.as_deref().expect("checked in parse_args");
    let ledger = read_jsonl(lease_log).map_err(fail)?;
    if ledger.first().and_then(|j| j.get("kind")).and_then(Json::as_str)
        != Some("coord_manifest")
    {
        return Err(fail(format!(
            "{lease_log}: first line is not a coord_manifest"
        )));
    }
    let batch_sizes: Vec<u64> = ledger[0]
        .get("batches")
        .and_then(Json::as_array)
        .map(|bs| bs.iter().map(|b| b.as_array().map_or(0, |p| p.len() as u64)).collect())
        .unwrap_or_default();
    let total_points: u64 = batch_sizes.iter().sum();

    // Replay the ledger: granted epochs, reclaim count, and which
    // worker each batch's final completion is credited to.
    let mut granted: Vec<(u64, u64)> = Vec::new();
    let mut reclaims = 0u64;
    let mut done_by: BTreeMap<u64, String> = BTreeMap::new();
    for event in &ledger[1..] {
        let kind = event.get("kind").and_then(Json::as_str).unwrap_or_default();
        let batch = event.get("batch").and_then(Json::as_u64).unwrap_or(0);
        let epoch = event.get("epoch").and_then(Json::as_u64).unwrap_or(0);
        let worker = event.get("worker").and_then(Json::as_str).unwrap_or("?");
        match kind {
            "grant" => granted.push((batch, epoch)),
            "reclaim" => reclaims += 1,
            "done" => {
                done_by.insert(batch, worker.to_string());
            }
            _ => {}
        }
    }

    let mut failures = Vec::new();
    if done_by.len() != batch_sizes.len() {
        failures.push(format!(
            "ledger {lease_log}: {} of {} batch(es) done — the sweep did not drain",
            done_by.len(),
            batch_sizes.len(),
        ));
    }

    // Fold each worker capture: identity from the meta line, counter
    // totals summed across flushes (each flush drains deltas).
    let mut capture_points: BTreeMap<String, u64> = BTreeMap::new();
    let mut capture_reused: BTreeMap<String, u64> = BTreeMap::new();
    for path in &args.paths {
        let records = read_jsonl(path).map_err(fail)?;
        let who = records
            .iter()
            .find(|j| j.get("kind").and_then(Json::as_str) == Some("meta"))
            .and_then(|j| j.get("who").and_then(Json::as_str))
            .map(str::to_string)
            .ok_or_else(|| fail(format!("{path}: no meta line with a worker identity")))?;
        let counter_total = |name: &str| -> u64 {
            records
                .iter()
                .filter(|j| {
                    j.get("kind").and_then(Json::as_str) == Some("counter")
                        && j.get("name").and_then(Json::as_str) == Some(name)
                })
                .filter_map(|j| j.get("value").and_then(Json::as_u64))
                .sum()
        };
        *capture_points.entry(who.clone()).or_insert(0) += counter_total("sweep.points");
        *capture_reused.entry(who).or_insert(0) += counter_total("sweep.points_reused");
    }

    // Reconcile: each worker's captured solve count must cover the
    // points the ledger credits to it; with no reclaims (and no reuse)
    // nothing can legitimately diverge, so demand exact equality.
    let mut credited_total = 0u64;
    let mut per_worker: BTreeMap<&str, u64> = BTreeMap::new();
    for (batch, worker) in &done_by {
        let points = batch_sizes.get(*batch as usize).copied().unwrap_or(0);
        credited_total += points;
        *per_worker.entry(worker).or_insert(0) += points;
    }
    for (worker, &credited) in &per_worker {
        let Some(&captured) = capture_points.get(*worker) else {
            failures.push(format!(
                "ledger credits {credited} point(s) to {worker} but no capture for it was given"
            ));
            continue;
        };
        let reused = capture_reused.get(*worker).copied().unwrap_or(0);
        if captured + reused < credited {
            failures.push(format!(
                "{worker}: capture records {captured} solved (+{reused} reused) point(s) but \
                 the ledger credits it with {credited}"
            ));
        } else if reclaims == 0 && reused == 0 && captured != credited {
            failures.push(format!(
                "{worker}: capture records {captured} solved point(s), ledger credits \
                 {credited} — must match exactly when nothing was reclaimed or reused"
            ));
        }
    }
    if let Some(name) = &args.figure {
        match lrd_experiments::find_figure(name) {
            None => failures.push(format!("unknown figure `{name}`")),
            Some(spec) => {
                let expected = spec.expected_solves(args.profile);
                if credited_total != expected {
                    failures.push(format!(
                        "{name} ({}) fleet budget violated: done batches cover \
                         {credited_total} point(s), expected exactly {expected}",
                        args.profile.tag(),
                    ));
                }
            }
        }
    } else if credited_total != total_points {
        failures.push(format!(
            "done batches cover {credited_total} point(s) of {total_points} in the manifest"
        ));
    }

    // Trace coverage: the exported timeline must hold one lease slice
    // per granted lease epoch.
    if let Some(trace_path) = &args.trace {
        let text = std::fs::read_to_string(trace_path)
            .map_err(|e| fail(format!("cannot read {trace_path}: {e}")))?;
        let doc = parse_json(&text)
            .map_err(|e| fail(format!("{trace_path} is not valid JSON: {e}")))?;
        let empty = [];
        let trace_events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .unwrap_or(&empty);
        let covered: std::collections::BTreeSet<String> = trace_events
            .iter()
            .filter(|e| {
                e.get("name")
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.starts_with("lease "))
            })
            .filter_map(|e| {
                e.get("args")?
                    .get("trace")?
                    .as_str()
                    .map(str::to_string)
            })
            .collect();
        for (batch, epoch) in &granted {
            let id = format!("t{batch}.{epoch}");
            if !covered.contains(&id) {
                failures.push(format!(
                    "{trace_path}: granted lease {id} has no lease slice in the trace"
                ));
            }
        }
    }

    if !failures.is_empty() {
        return Err(failures);
    }
    Ok(format!(
        "fleet ok — {} worker(s) reconcile with the ledger ({} batch(es), \
         {credited_total} point(s), {} grant(s), {reclaims} reclaim(s)){}",
        capture_points.len(),
        done_by.len(),
        granted.len(),
        match &args.trace {
            Some(t) => format!("; trace {t} covers every grant"),
            None => String::new(),
        },
    ))
}

/// The `--coord` requirements: the lease ledger of a coordinator that
/// served a sweep to completion must balance.
fn check_coord(args: &Args, records: &[Json]) -> ExitCode {
    let events = |name: &str| -> Vec<&Json> {
        records
            .iter()
            .filter(|j| {
                j.get("kind").and_then(Json::as_str) == Some("event")
                    && j.get("name").and_then(Json::as_str) == Some(name)
            })
            .collect()
    };
    let granted = events("coord.lease_granted").len();
    let done = events("coord.batch_done");
    let reclaim_events = events("coord.lease_reclaimed").len() as u64;
    // The counter record is only flushed when at least one reclaim
    // happened; absent means zero.
    let reclaim_counter = records
        .iter()
        .find(|j| {
            j.get("kind").and_then(Json::as_str) == Some("counter")
                && j.get("name").and_then(Json::as_str) == Some("coord.reclaims")
        })
        .and_then(|j| j.get("value").and_then(Json::as_u64))
        .unwrap_or(0);

    let mut ok = true;
    if done.is_empty() {
        eprintln!("telemetry_check: no coord.batch_done events (did the sweep run?)");
        ok = false;
    }
    if granted < done.len() {
        eprintln!(
            "telemetry_check: {} batch(es) completed but only {granted} lease(s) granted",
            done.len()
        );
        ok = false;
    }
    if reclaim_counter != reclaim_events {
        eprintln!(
            "telemetry_check: coord.reclaims counter ({reclaim_counter}) disagrees with \
             {reclaim_events} coord.lease_reclaimed event(s)"
        );
        ok = false;
    }
    // Every completed batch reports its point count; for an unkilled
    // coordinator the total must be exactly the figure's solve budget
    // — points can be re-solved by reclaimed leases, but each batch
    // completes exactly once.
    let points: u64 = done
        .iter()
        .filter_map(|j| {
            j.get("fields")
                .and_then(|f| f.get("points"))
                .and_then(Json::as_u64)
        })
        .sum();
    if let Some(name) = &args.figure {
        match lrd_experiments::find_figure(name) {
            None => {
                eprintln!("telemetry_check: unknown figure `{name}`");
                ok = false;
            }
            Some(spec) => {
                let expected = spec.expected_solves(args.profile);
                if points != expected {
                    eprintln!(
                        "telemetry_check: {name} ({}) coordinator budget violated: completed \
                         batches cover {points} point(s), expected exactly {expected}",
                        args.profile.tag(),
                    );
                    ok = false;
                }
            }
        }
    }
    if !ok {
        return ExitCode::FAILURE;
    }
    println!(
        "telemetry_check: coordinator ledger ok ({granted} grant(s), {} batch(es) done \
         covering {points} point(s), {reclaim_events} reclaim(s))",
        done.len(),
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        eprintln!(
            "usage: telemetry_check <capture.jsonl> [--figure <name>] [--profile quick|full] \
             [--coord]\n\
             \u{20}      telemetry_check --fleet --lease-log <coord_lease.jsonl> \
             [--trace <trace.json>]\n\
             \u{20}          [--figure <name>] [--profile quick|full] <worker.jsonl>..."
        );
        return ExitCode::FAILURE;
    };
    if args.fleet {
        return check_fleet(&args);
    }
    let path = &args.paths[0];
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("telemetry_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        match parse_json(line) {
            Ok(json) => records.push(json),
            Err(e) => {
                eprintln!("telemetry_check: line {} is not valid JSON: {e}", i + 1);
                return ExitCode::FAILURE;
            }
        }
    }

    let count = |kind: &str, name: &str| {
        records
            .iter()
            .filter(|j| {
                j.get("kind").and_then(Json::as_str) == Some(kind)
                    && j.get("name").and_then(Json::as_str) == Some(name)
            })
            .count()
    };

    if args.coord {
        return check_coord(&args, &records);
    }

    // Without --figure the capture must cover at least one full solve;
    // with --figure, the registry decides whether solves are expected
    // at all (some figures are pure statistics and must record none).
    let spec = match &args.figure {
        None => None,
        Some(name) => match lrd_experiments::find_figure(name) {
            Some(spec) => Some(spec),
            None => {
                eprintln!("telemetry_check: unknown figure `{name}`");
                return ExitCode::FAILURE;
            }
        },
    };
    let budget = spec.map(|s| s.expected_solves(args.profile));
    let expects_solves = budget.is_none_or(|n| n > 0);

    let requirements = [
        ("span", "solver.solve", "the solve's root span"),
        ("event", "solver.gap", "per-iteration bound samples"),
        ("gauge", "solver.mass_drift", "the final conservation check"),
        ("counter", "solver.iterations", "the flushed iteration total"),
    ];
    let mut ok = true;
    if expects_solves {
        for (kind, name, why) in requirements {
            if count(kind, name) == 0 {
                eprintln!("telemetry_check: no {kind} named {name:?} ({why})");
                ok = false;
            }
        }
    }
    // Whether a solve refines depends on its parameters, so a
    // refinement record is only demanded in legacy mode, where the
    // capture is by convention one that covers the full protocol.
    if args.figure.is_none() && count("event", "solver.refine") == 0 {
        eprintln!("telemetry_check: no event named \"solver.refine\" (a grid-refinement record)");
        ok = false;
    }
    // Budget check via the registry's typed error: the solve-span
    // total must match exactly, and no more spans may carry
    // `warm: true` than the figure's plan has donor-bearing points —
    // warm-started solves are profile-aware (quick and full lattices
    // have different donor counts), and a cold capture (shard, resume,
    // forced-cold run) is always within budget.
    let warm_solves = records
        .iter()
        .filter(|j| {
            j.get("kind").and_then(Json::as_str) == Some("span")
                && j.get("name").and_then(Json::as_str) == Some("solver.solve")
                && j.get("fields")
                    .and_then(|f| f.get("warm"))
                    .and_then(Json::as_bool)
                    == Some(true)
        })
        .count() as u64;
    if let Some(spec) = spec {
        let found = count("span", "solver.solve") as u64;
        if let Err(e) = spec.check_solve_budget(args.profile, found, warm_solves) {
            eprintln!("telemetry_check: {e}");
            ok = false;
        }
    }
    if !ok {
        return ExitCode::FAILURE;
    }
    println!(
        "telemetry_check: {} lines ok ({} solve span(s), {} gap event(s), \
         {} refine event(s)){}",
        records.len(),
        count("span", "solver.solve"),
        count("event", "solver.gap"),
        count("event", "solver.refine"),
        match (&args.figure, budget) {
            (Some(name), Some(expected)) => format!(
                "; {name} {} budget {expected} met ({warm_solves} warm)",
                args.profile.tag()
            ),
            _ => String::new(),
        },
    );
    ExitCode::SUCCESS
}
