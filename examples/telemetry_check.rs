//! Validates a `--telemetry` JSONL capture: every line must parse with
//! the in-tree JSON parser, and a capture that covers a full solve must
//! contain the solver's span / gap / refine / mass-drift records.
//!
//! With `--figure <name>` (and optionally `--profile quick|full`,
//! default `quick`) the check also enforces that figure's **telemetry
//! budget** from the registry: the capture must contain *exactly* the
//! number of `solver.solve` spans the figure is specified to produce —
//! a regression gate against both silently duplicated solves (a sweep
//! accidentally re-solving points) and silently skipped ones (a
//! checkpoint resume eating work it should have redone).
//!
//! With `--coord` the capture is a **coordinator** telemetry file (from
//! `sweep_coord --telemetry`) instead of a solver one: the check then
//! verifies the lease ledger — every completed batch was granted, the
//! reclaim counter agrees with the reclaim events, and (with
//! `--figure`) the points of the completed batches sum to exactly the
//! figure's solve budget. Only valid for a capture from a single
//! coordinator process that was not killed mid-sweep.
//!
//! Used by `scripts/ci.sh` as the telemetry smoke check:
//!
//! ```sh
//! cargo run --release -p lrd-experiments --bin fig02_bounds -- --quick --telemetry /tmp/t.jsonl
//! cargo run --release --example telemetry_check -- /tmp/t.jsonl --figure fig02_bounds
//! ```
//!
//! Exits non-zero (with one line per violated requirement) when the
//! capture is malformed or incomplete.

use lrd::obs::{parse_json, Json};
use lrd_experiments::figures::Profile;
use std::process::ExitCode;

struct Args {
    path: String,
    figure: Option<String>,
    profile: Profile,
    coord: bool,
}

fn parse_args() -> Option<Args> {
    let mut path = None;
    let mut figure = None;
    let mut profile = Profile::Quick;
    let mut coord = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--figure" => figure = Some(args.next()?),
            "--profile" => profile = Profile::from_tag(&args.next()?)?,
            "--coord" => coord = true,
            other if other.starts_with('-') => return None,
            other => {
                if path.replace(other.to_string()).is_some() {
                    return None;
                }
            }
        }
    }
    Some(Args {
        path: path?,
        figure,
        profile,
        coord,
    })
}

/// The `--coord` requirements: the lease ledger of a coordinator that
/// served a sweep to completion must balance.
fn check_coord(args: &Args, records: &[Json]) -> ExitCode {
    let events = |name: &str| -> Vec<&Json> {
        records
            .iter()
            .filter(|j| {
                j.get("kind").and_then(Json::as_str) == Some("event")
                    && j.get("name").and_then(Json::as_str) == Some(name)
            })
            .collect()
    };
    let granted = events("coord.lease_granted").len();
    let done = events("coord.batch_done");
    let reclaim_events = events("coord.lease_reclaimed").len() as u64;
    // The counter record is only flushed when at least one reclaim
    // happened; absent means zero.
    let reclaim_counter = records
        .iter()
        .find(|j| {
            j.get("kind").and_then(Json::as_str) == Some("counter")
                && j.get("name").and_then(Json::as_str) == Some("coord.reclaims")
        })
        .and_then(|j| j.get("value").and_then(Json::as_u64))
        .unwrap_or(0);

    let mut ok = true;
    if done.is_empty() {
        eprintln!("telemetry_check: no coord.batch_done events (did the sweep run?)");
        ok = false;
    }
    if granted < done.len() {
        eprintln!(
            "telemetry_check: {} batch(es) completed but only {granted} lease(s) granted",
            done.len()
        );
        ok = false;
    }
    if reclaim_counter != reclaim_events {
        eprintln!(
            "telemetry_check: coord.reclaims counter ({reclaim_counter}) disagrees with \
             {reclaim_events} coord.lease_reclaimed event(s)"
        );
        ok = false;
    }
    // Every completed batch reports its point count; for an unkilled
    // coordinator the total must be exactly the figure's solve budget
    // — points can be re-solved by reclaimed leases, but each batch
    // completes exactly once.
    let points: u64 = done
        .iter()
        .filter_map(|j| {
            j.get("fields")
                .and_then(|f| f.get("points"))
                .and_then(Json::as_u64)
        })
        .sum();
    if let Some(name) = &args.figure {
        match lrd_experiments::find_figure(name) {
            None => {
                eprintln!("telemetry_check: unknown figure `{name}`");
                ok = false;
            }
            Some(spec) => {
                let expected = spec.expected_solves(args.profile);
                if points != expected {
                    eprintln!(
                        "telemetry_check: {name} ({}) coordinator budget violated: completed \
                         batches cover {points} point(s), expected exactly {expected}",
                        args.profile.tag(),
                    );
                    ok = false;
                }
            }
        }
    }
    if !ok {
        return ExitCode::FAILURE;
    }
    println!(
        "telemetry_check: coordinator ledger ok ({granted} grant(s), {} batch(es) done \
         covering {points} point(s), {reclaim_events} reclaim(s))",
        done.len(),
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        eprintln!(
            "usage: telemetry_check <capture.jsonl> [--figure <name>] [--profile quick|full] \
             [--coord]"
        );
        return ExitCode::FAILURE;
    };
    let path = &args.path;
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("telemetry_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        match parse_json(line) {
            Ok(json) => records.push(json),
            Err(e) => {
                eprintln!("telemetry_check: line {} is not valid JSON: {e}", i + 1);
                return ExitCode::FAILURE;
            }
        }
    }

    let count = |kind: &str, name: &str| {
        records
            .iter()
            .filter(|j| {
                j.get("kind").and_then(Json::as_str) == Some(kind)
                    && j.get("name").and_then(Json::as_str) == Some(name)
            })
            .count()
    };

    if args.coord {
        return check_coord(&args, &records);
    }

    // Without --figure the capture must cover at least one full solve;
    // with --figure, the registry decides whether solves are expected
    // at all (some figures are pure statistics and must record none).
    let budget = match &args.figure {
        None => None,
        Some(name) => match lrd_experiments::find_figure(name) {
            Some(spec) => Some(spec.expected_solves(args.profile)),
            None => {
                eprintln!("telemetry_check: unknown figure `{name}`");
                return ExitCode::FAILURE;
            }
        },
    };
    let expects_solves = budget.is_none_or(|n| n > 0);

    let requirements = [
        ("span", "solver.solve", "the solve's root span"),
        ("event", "solver.gap", "per-iteration bound samples"),
        ("gauge", "solver.mass_drift", "the final conservation check"),
        ("counter", "solver.iterations", "the flushed iteration total"),
    ];
    let mut ok = true;
    if expects_solves {
        for (kind, name, why) in requirements {
            if count(kind, name) == 0 {
                eprintln!("telemetry_check: no {kind} named {name:?} ({why})");
                ok = false;
            }
        }
    }
    // Whether a solve refines depends on its parameters, so a
    // refinement record is only demanded in legacy mode, where the
    // capture is by convention one that covers the full protocol.
    if args.figure.is_none() && count("event", "solver.refine") == 0 {
        eprintln!("telemetry_check: no event named \"solver.refine\" (a grid-refinement record)");
        ok = false;
    }
    if let Some(expected) = budget {
        let found = count("span", "solver.solve") as u64;
        if found != expected {
            eprintln!(
                "telemetry_check: {} ({}) budget violated: expected exactly {expected} \
                 solver.solve span(s), found {found}",
                args.figure.as_deref().unwrap_or("?"),
                args.profile.tag(),
            );
            ok = false;
        }
    }
    if !ok {
        return ExitCode::FAILURE;
    }
    println!(
        "telemetry_check: {} lines ok ({} solve span(s), {} gap event(s), \
         {} refine event(s)){}",
        records.len(),
        count("span", "solver.solve"),
        count("event", "solver.gap"),
        count("event", "solver.refine"),
        match (&args.figure, budget) {
            (Some(name), Some(expected)) =>
                format!("; {name} {} budget {expected} met", args.profile.tag()),
            _ => String::new(),
        },
    );
    ExitCode::SUCCESS
}
