//! Validates a `--telemetry` JSONL capture: every line must parse with
//! the in-tree JSON parser, and a capture that covers a full solve must
//! contain the solver's span / gap / refine / mass-drift records.
//!
//! Used by `scripts/ci.sh` as the telemetry smoke check:
//!
//! ```sh
//! cargo run --release -p lrd-experiments --bin fig02_bounds -- --quick --telemetry /tmp/t.jsonl
//! cargo run --release --example telemetry_check -- /tmp/t.jsonl
//! ```
//!
//! Exits non-zero (with one line per violated requirement) when the
//! capture is malformed or incomplete.

use lrd::obs::{parse_json, Json};
use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: telemetry_check <capture.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("telemetry_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        match parse_json(line) {
            Ok(json) => records.push(json),
            Err(e) => {
                eprintln!("telemetry_check: line {} is not valid JSON: {e}", i + 1);
                return ExitCode::FAILURE;
            }
        }
    }

    let count = |kind: &str, name: &str| {
        records
            .iter()
            .filter(|j| {
                j.get("kind").and_then(Json::as_str) == Some(kind)
                    && j.get("name").and_then(Json::as_str) == Some(name)
            })
            .count()
    };
    let requirements = [
        ("span", "solver.solve", "the solve's root span"),
        ("event", "solver.gap", "per-iteration bound samples"),
        ("event", "solver.refine", "a grid-refinement record"),
        ("gauge", "solver.mass_drift", "the final conservation check"),
        ("counter", "solver.iterations", "the flushed iteration total"),
    ];
    let mut ok = true;
    for (kind, name, why) in requirements {
        if count(kind, name) == 0 {
            eprintln!("telemetry_check: no {kind} named {name:?} ({why})");
            ok = false;
        }
    }
    if !ok {
        return ExitCode::FAILURE;
    }
    println!(
        "telemetry_check: {} lines ok ({} solve span(s), {} gap event(s), \
         {} refine event(s))",
        records.len(),
        count("span", "solver.solve"),
        count("event", "solver.gap"),
        count("event", "solver.refine"),
    );
    ExitCode::SUCCESS
}
