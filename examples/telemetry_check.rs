//! Validates a `--telemetry` JSONL capture: every line must parse with
//! the in-tree JSON parser, and a capture that covers a full solve must
//! contain the solver's span / gap / refine / mass-drift records.
//!
//! With `--figure <name>` (and optionally `--profile quick|full`,
//! default `quick`) the check also enforces that figure's **telemetry
//! budget** from the registry: the capture must contain *exactly* the
//! number of `solver.solve` spans the figure is specified to produce —
//! a regression gate against both silently duplicated solves (a sweep
//! accidentally re-solving points) and silently skipped ones (a
//! checkpoint resume eating work it should have redone).
//!
//! Used by `scripts/ci.sh` as the telemetry smoke check:
//!
//! ```sh
//! cargo run --release -p lrd-experiments --bin fig02_bounds -- --quick --telemetry /tmp/t.jsonl
//! cargo run --release --example telemetry_check -- /tmp/t.jsonl --figure fig02_bounds
//! ```
//!
//! Exits non-zero (with one line per violated requirement) when the
//! capture is malformed or incomplete.

use lrd::obs::{parse_json, Json};
use lrd_experiments::figures::Profile;
use std::process::ExitCode;

struct Args {
    path: String,
    figure: Option<String>,
    profile: Profile,
}

fn parse_args() -> Option<Args> {
    let mut path = None;
    let mut figure = None;
    let mut profile = Profile::Quick;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--figure" => figure = Some(args.next()?),
            "--profile" => profile = Profile::from_tag(&args.next()?)?,
            other if other.starts_with('-') => return None,
            other => {
                if path.replace(other.to_string()).is_some() {
                    return None;
                }
            }
        }
    }
    Some(Args {
        path: path?,
        figure,
        profile,
    })
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        eprintln!(
            "usage: telemetry_check <capture.jsonl> [--figure <name>] [--profile quick|full]"
        );
        return ExitCode::FAILURE;
    };
    let path = &args.path;
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("telemetry_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        match parse_json(line) {
            Ok(json) => records.push(json),
            Err(e) => {
                eprintln!("telemetry_check: line {} is not valid JSON: {e}", i + 1);
                return ExitCode::FAILURE;
            }
        }
    }

    let count = |kind: &str, name: &str| {
        records
            .iter()
            .filter(|j| {
                j.get("kind").and_then(Json::as_str) == Some(kind)
                    && j.get("name").and_then(Json::as_str) == Some(name)
            })
            .count()
    };

    // Without --figure the capture must cover at least one full solve;
    // with --figure, the registry decides whether solves are expected
    // at all (some figures are pure statistics and must record none).
    let budget = match &args.figure {
        None => None,
        Some(name) => match lrd_experiments::find_figure(name) {
            Some(spec) => Some(spec.expected_solves(args.profile)),
            None => {
                eprintln!("telemetry_check: unknown figure `{name}`");
                return ExitCode::FAILURE;
            }
        },
    };
    let expects_solves = budget.is_none_or(|n| n > 0);

    let requirements = [
        ("span", "solver.solve", "the solve's root span"),
        ("event", "solver.gap", "per-iteration bound samples"),
        ("gauge", "solver.mass_drift", "the final conservation check"),
        ("counter", "solver.iterations", "the flushed iteration total"),
    ];
    let mut ok = true;
    if expects_solves {
        for (kind, name, why) in requirements {
            if count(kind, name) == 0 {
                eprintln!("telemetry_check: no {kind} named {name:?} ({why})");
                ok = false;
            }
        }
    }
    // Whether a solve refines depends on its parameters, so a
    // refinement record is only demanded in legacy mode, where the
    // capture is by convention one that covers the full protocol.
    if args.figure.is_none() && count("event", "solver.refine") == 0 {
        eprintln!("telemetry_check: no event named \"solver.refine\" (a grid-refinement record)");
        ok = false;
    }
    if let Some(expected) = budget {
        let found = count("span", "solver.solve") as u64;
        if found != expected {
            eprintln!(
                "telemetry_check: {} ({}) budget violated: expected exactly {expected} \
                 solver.solve span(s), found {found}",
                args.figure.as_deref().unwrap_or("?"),
                args.profile.tag(),
            );
            ok = false;
        }
    }
    if !ok {
        return ExitCode::FAILURE;
    }
    println!(
        "telemetry_check: {} lines ok ({} solve span(s), {} gap event(s), \
         {} refine event(s)){}",
        records.len(),
        count("span", "solver.solve"),
        count("event", "solver.gap"),
        count("event", "solver.refine"),
        match (&args.figure, budget) {
            (Some(name), Some(expected)) =>
                format!("; {name} {} budget {expected} met", args.profile.tag()),
            _ => String::new(),
        },
    );
    ExitCode::SUCCESS
}
