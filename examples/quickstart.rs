//! Quickstart: compute provable loss-rate bounds for a bursty fluid
//! source feeding a finite buffer, and see the correlation cutoff at
//! work.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lrd::prelude::*;

fn main() {
    // A two-rate bursty source: 2 Mb/s or 14 Mb/s with equal
    // probability, re-drawn at renewal epochs whose lengths follow a
    // truncated Pareto. With Hurst parameter 0.8 the source is
    // (asymptotically) self-similar below the cutoff lag.
    let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    println!(
        "source: mean {:.1} Mb/s, σ {:.1} Mb/s",
        marginal.mean(),
        marginal.std_dev()
    );

    // Serve at 10 Mb/s (utilization 0.8) with a 200 ms buffer.
    let utilization = 0.8;
    let buffer_seconds = 0.2;

    println!("\n   cutoff T_c |  loss lower |  loss upper | iterations | grid M");
    println!("{}", "-".repeat(68));
    for cutoff in [0.1, 0.5, 2.0, 10.0, f64::INFINITY] {
        let intervals = TruncatedPareto::from_hurst(0.8, 0.05, cutoff);
        let model = QueueModel::from_utilization(
            marginal.clone(),
            intervals,
            utilization,
            buffer_seconds,
        );
        let sol = SolveSession::builder(&model)
            .options(&SolverOptions::default())
            .solve();
        assert!(sol.converged, "solver failed to converge");
        println!(
            "{:>13} | {:>11.4e} | {:>11.4e} | {:>10} | {:>6}",
            if cutoff.is_finite() {
                format!("{cutoff:.1} s")
            } else {
                "infinite".to_string()
            },
            sol.lower,
            sol.upper,
            sol.iterations,
            sol.bins
        );
    }

    println!(
        "\nNote how the loss rate saturates once the cutoff exceeds the\n\
         correlation horizon of this queue: correlation at longer lags no\n\
         longer matters for loss — the paper's central observation."
    );

    // Cross-check the solver against a Monte-Carlo simulation at one
    // cutoff.
    use lrd_rng::SeedableRng;
    let intervals = TruncatedPareto::from_hurst(0.8, 0.05, 2.0);
    let model = QueueModel::from_utilization(marginal.clone(), intervals, utilization, buffer_seconds);
    let sol = SolveSession::builder(&model)
        .options(&SolverOptions::default())
        .solve();
    let source = FluidSource::new(marginal, intervals);
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(7);
    let (report, _) = simulate_source(
        &source,
        model.service_rate(),
        model.buffer(),
        1_000_000,
        &mut rng,
    );
    println!(
        "\nMonte-Carlo cross-check at T_c = 2 s: simulated loss {:.4e} vs \
         solver bounds [{:.4e}, {:.4e}]",
        report.loss_rate, sol.lower, sol.upper
    );
}
