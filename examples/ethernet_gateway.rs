//! Ethernet gateway buffer sizing: model prediction vs trace-driven
//! simulation with external shuffling.
//!
//! A Bellcore-like LAN aggregate (heavy-tailed marginal, H ≈ 0.9)
//! feeds a gateway at utilization 0.4. We (i) predict loss with the
//! cutoff-correlated fluid model, (ii) replay the trace through the
//! exact fluid-queue simulator — unshuffled and block-shuffled — and
//! compare, reproducing the paper's Figs. 5 vs 8 methodology on one
//! scenario.
//!
//! ```sh
//! cargo run --release --example ethernet_gateway
//! ```

use lrd::prelude::*;
use lrd::traffic::synth;
use lrd_rng::SeedableRng;

fn main() {
    let trace = synth::bellcore_like_with_len(synth::DEFAULT_SEED + 1, 1 << 16);
    let marginal = trace.marginal(50);
    let mean_epoch = trace.mean_epoch(50);
    let alpha = lrd::traffic::alpha_from_hurst(synth::BELLCORE_HURST);
    let theta = TruncatedPareto::calibrate_theta(mean_epoch, alpha);
    println!(
        "Bellcore-like aggregate: mean {:.2} Mb/s, σ {:.2} Mb/s, H≈{}, mean epoch {:.0} ms",
        marginal.mean(),
        marginal.std_dev(),
        synth::BELLCORE_HURST,
        mean_epoch * 1e3,
    );

    let utilization = 0.4;
    let c = marginal.service_rate_for_utilization(utilization);
    println!("gateway: service {c:.2} Mb/s (utilization {utilization})\n");

    let opts = SolverOptions::default();
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(99);

    println!("buffer [s] |  model (T_c=1s) | sim, shuffled @1s |  sim, unshuffled");
    println!("{}", "-".repeat(72));
    for buffer_s in [0.05, 0.2, 0.5, 1.0, 2.0] {
        let b = c * buffer_s;
        let model = QueueModel::new(
            marginal.clone(),
            TruncatedPareto::new(theta, alpha, 1.0),
            c,
            b,
        );
        let predicted = SolveSession::builder(&model).options(&opts).solve().loss();
        let shuffled = external_shuffle_seconds(&trace, 1.0, &mut rng);
        let sim_shuffled = simulate_trace(&shuffled, c, b).loss_rate;
        let sim_raw = simulate_trace(&trace, c, b).loss_rate;
        println!(
            "{:>10.2} | {:>15} | {:>17} | {:>16}",
            buffer_s,
            fmt(predicted),
            fmt(sim_shuffled),
            fmt(sim_raw)
        );
    }

    println!(
        "\nReadings: the model tracks the shuffled-trace simulation (both kill\n\
         correlation beyond 1 s); the unshuffled trace keeps its long-range\n\
         dependence and loses more at large buffers — buffer ineffectiveness."
    );
}

fn fmt(l: f64) -> String {
    if l == 0.0 {
        "0".to_string()
    } else {
        format!("{l:.3e}")
    }
}
