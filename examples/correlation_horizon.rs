//! The correlation horizon, measured and predicted.
//!
//! For each buffer size we sweep the cutoff lag, find where the loss
//! curve flattens (the **empirical** correlation horizon), and compare
//! with the paper's closed-form estimate (Eq. 26). We also demonstrate
//! the paper's modeling consequence: a memoryless exponential-interval
//! model matched up to the horizon predicts essentially the same loss
//! as the LRD model for sub-horizon buffers.
//!
//! ```sh
//! cargo run --release --example correlation_horizon
//! ```

use lrd::prelude::*;

fn main() {
    let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    let theta = 0.05;
    let hurst = 0.8;
    let utilization = 0.8;
    let opts = SolverOptions::default();

    println!("buffer [s] | empirical CH [s] | Eq. 26 T_CH [s] (p = 0.99)");
    println!("{}", "-".repeat(62));
    let cutoffs: Vec<f64> = (0..12).map(|i| 0.05 * 2f64.powi(i)).collect();
    for buffer_s in [0.1, 0.2, 0.4, 0.8] {
        let mut curve = Vec::new();
        for &tc in &cutoffs {
            let iv = TruncatedPareto::from_hurst(hurst, theta, tc);
            let model =
                QueueModel::from_utilization(marginal.clone(), iv, utilization, buffer_s);
            let sol = SolveSession::builder(&model).options(&opts).solve();
            curve.push((tc, sol.loss()));
        }
        let ch = empirical_horizon(&curve, 0.1).unwrap();

        // Eq. 26 with the interval moments evaluated at the horizon-
        // scale cutoff (σ_T is infinite for the untruncated Pareto).
        let iv = TruncatedPareto::from_hurst(hurst, theta, 1.0);
        let model = QueueModel::from_utilization(marginal.clone(), iv, utilization, buffer_s);
        let t_ch = correlation_horizon(
            model.buffer(),
            iv.mean(),
            iv.variance().sqrt(),
            marginal.std_dev(),
            0.99,
        );
        println!("{buffer_s:>10.1} | {ch:>16.2} | {t_ch:>10.2}");
    }

    println!(
        "\nBoth columns grow proportionally with the buffer — the linear\n\
         scaling the paper reads off Fig. 14.\n"
    );

    // Modeling consequence: below the horizon, a Markovian model is as
    // good as the LRD one.
    println!("Model equivalence below the horizon (buffer 0.1 s):");
    let buffer_s = 0.1;
    let pareto = TruncatedPareto::from_hurst(hurst, theta, f64::INFINITY);
    let expo = Exponential::new(pareto.mean());
    let lrd_model =
        QueueModel::from_utilization(marginal.clone(), pareto, utilization, buffer_s);
    let srd_model = QueueModel::from_utilization(marginal.clone(), expo, utilization, buffer_s);
    let l_lrd = SolveSession::builder(&lrd_model).options(&opts).solve().loss();
    let l_srd = SolveSession::builder(&srd_model).options(&opts).solve().loss();
    println!("  LRD (truncated-Pareto, T_c = ∞): {l_lrd:.3e}");
    println!("  SRD (exponential, same mean):    {l_srd:.3e}");
    println!(
        "  ratio {:.2} — for this small buffer the Markov model is an adequate\n\
         stand-in, exactly as the paper argues in Sec. IV.",
        (l_lrd / l_srd).max(l_srd / l_lrd)
    );
}
