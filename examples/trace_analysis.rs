//! The paper's Sec. III trace-preparation pipeline, end to end:
//! synthesize the two traces, extract the 50-bin marginals, measure
//! the mean epoch durations, estimate Hurst parameters with all five
//! estimators, and calibrate the truncated-Pareto θ via Eq. 25.
//!
//! ```sh
//! cargo run --release --example trace_analysis
//! ```

use lrd::prelude::*;
use lrd::stats::whittle_estimate;
use lrd::traffic::synth;

fn analyze(name: &str, trace: &Trace, published_h: f64) {
    let marginal = trace.marginal(50);
    let epoch = trace.mean_epoch(50);
    let alpha = lrd::traffic::alpha_from_hurst(published_h);
    let theta = TruncatedPareto::calibrate_theta(epoch, alpha);

    println!("── {name} ──");
    println!(
        "  {} samples at {:.0} ms   mean {:.3} Mb/s   σ {:.3} Mb/s",
        trace.len(),
        trace.dt() * 1e3,
        trace.mean_rate(),
        lrd::stats::std_dev(trace.rates()),
    );
    println!(
        "  marginal: {} occupied bins, mode at {:.2} Mb/s",
        marginal.len(),
        marginal
            .rates()
            .iter()
            .zip(marginal.probs())
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(&r, _)| r)
            .unwrap()
    );
    println!(
        "  Hurst: published {:.2} | R/S {:.2} | var-time {:.2} | GPH {:.2} | wavelet {:.2} | Whittle {:.2}",
        published_h,
        rs_estimate(trace.rates()).h,
        variance_time_estimate(trace.rates()).h,
        gph_estimate(trace.rates()).h,
        wavelet_estimate(trace.rates()).h,
        whittle_estimate(trace.rates()).h,
    );
    println!(
        "  mean epoch {:.1} ms  →  θ = {:.2} ms (Eq. 25 with T_c = ∞, α = {:.2})\n",
        epoch * 1e3,
        theta * 1e3,
        alpha
    );
}

fn main() {
    let n = 1 << 16;
    analyze(
        "MTV-like JPEG video",
        &synth::mtv_like_with_len(synth::DEFAULT_SEED, n),
        synth::MTV_HURST,
    );
    analyze(
        "Bellcore-like Ethernet",
        &synth::bellcore_like_with_len(synth::DEFAULT_SEED + 1, n),
        synth::BELLCORE_HURST,
    );
    println!(
        "These are exactly the inputs the loss solver consumes: the marginal\n\
         (Π, Λ), and θ calibrated so the model's mean interval matches the\n\
         measured epoch duration."
    );
}
