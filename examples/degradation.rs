//! The fault-tolerance contract in action: typed errors for invalid
//! input, graceful degradation (best provable bounds plus a
//! machine-readable reason) when the solver is starved of resources.
//!
//! ```sh
//! cargo run --release --example degradation
//! ```

use lrd::prelude::*;

fn main() {
    // 1. Invalid input is a typed error, not a panic.
    match TruncatedPareto::try_new(-0.05, 1.4, 1.0) {
        Ok(_) => unreachable!(),
        Err(e) => println!("typed error      : {e}"),
    }
    match Marginal::try_new(&[2.0, 14.0], &[0.5]) {
        Ok(_) => unreachable!(),
        Err(e) => println!("typed error      : {e}"),
    }

    // 2. Malformed solver options are a typed error too.
    let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    let intervals = TruncatedPareto::from_hurst(0.8, 0.05, 1.0);
    let model = QueueModel::from_utilization(marginal, intervals, 0.8, 0.2);
    let bad = SolverOptions {
        rel_gap: -1.0,
        ..SolverOptions::default()
    };
    match SolveSession::builder(&model).options(&bad).run() {
        Ok(_) => unreachable!(),
        Err(e) => println!("typed error      : {e}"),
    }

    // 3. A starved work budget degrades gracefully: the result is
    //    still a provable bracket, with the reason attached.
    let starved = SolverOptions {
        rel_gap: 1e-9,
        max_total_cost: 300.0,
        ..SolverOptions::default()
    };
    let (sol, _) = SolveSession::builder(&model)
        .options(&starved)
        .run()
        .expect("options are valid");
    println!(
        "degraded bracket : [{:.3e}, {:.3e}] converged={}",
        sol.lower, sol.upper, sol.converged
    );
    match sol.degradation {
        Some(DegradationReason::BudgetExhausted { spent, budget }) => {
            println!("reason           : budget exhausted ({spent:.0} of {budget:.0})")
        }
        other => println!("reason           : {other:?}"),
    }

    // 4. A grid ceiling does the same with a different reason.
    let capped = SolverOptions {
        rel_gap: 1e-9,
        initial_bins: 8,
        max_bins: 8,
        ..SolverOptions::default()
    };
    let (sol, _) = SolveSession::builder(&model)
        .options(&capped)
        .run()
        .expect("options are valid");
    println!(
        "degraded bracket : [{:.3e}, {:.3e}] converged={}",
        sol.lower, sol.upper, sol.converged
    );
    println!("reason           : {:?}", sol.degradation);
}
