//! ARQ vs FEC under long-range-dependent losses — the paper's
//! concluding example made concrete.
//!
//! The paper closes Sec. V with a thought experiment: the relevant
//! correlation time scales depend on the performance question, and for
//! error-control comparison the *whole* correlation structure matters,
//! because burstiness barely affects closed-loop ARQ but defeats
//! open-loop FEC. We derive a packet-loss process from an LRD trace
//! pushed through a fluid queue, compare both schemes, and then repeat
//! with the loss process decorrelated and with the input trace
//! shuffled at different block lengths.
//!
//! ```sh
//! cargo run --release --example arq_vs_fec
//! ```

use lrd::prelude::*;
use lrd::sim::{arq_overhead, fec_residual_loss, LossProcess};
use lrd::traffic::synth;
use lrd_rng::SeedableRng;

fn main() {
    // An LRD Ethernet-like trace into a modest queue: utilization
    // high enough to make the loss process interesting.
    let trace = synth::bellcore_like_with_len(synth::DEFAULT_SEED + 1, 1 << 16);
    let marginal = trace.marginal(50);
    let c = marginal.service_rate_for_utilization(0.75);
    let b = c * 0.05;

    let process = LossProcess::from_trace(&trace, c, b);
    let spread = process.decorrelated();
    println!(
        "packet loss probability: {:.4}  (mean burst length {:.1} packets)",
        process.loss_probability(),
        process.mean_burst_length().unwrap_or(0.0)
    );

    println!("\n                         |  LRD losses | independent losses");
    println!("{}", "-".repeat(64));
    println!(
        "ARQ transmissions/packet |  {:>10.4} | {:>10.4}",
        arq_overhead(&process),
        arq_overhead(&spread)
    );
    for (n, k) in [(10usize, 8usize), (20, 16), (50, 40)] {
        println!(
            "FEC({n:>2},{k:>2}) residual loss |  {:>10.2e} | {:>10.2e}",
            fec_residual_loss(&process, n, k),
            fec_residual_loss(&spread, n, k)
        );
    }

    // Shuffling sweep: as the block length grows (more correlation
    // kept), FEC degrades while ARQ stays flat.
    println!("\nshuffle block [s] | ARQ overhead | FEC(10,8) residual | mean burst");
    println!("{}", "-".repeat(68));
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(17);
    for block_s in [0.05, 0.5, 5.0, f64::INFINITY] {
        let input = if block_s.is_finite() {
            external_shuffle_seconds(&trace, block_s, &mut rng)
        } else {
            trace.clone()
        };
        let p = LossProcess::from_trace(&input, c, b);
        println!(
            "{:>17} | {:>12.4} | {:>18.2e} | {:>10.1}",
            if block_s.is_finite() {
                format!("{block_s}")
            } else {
                "unshuffled".into()
            },
            arq_overhead(&p),
            fec_residual_loss(&p, 10, 8),
            p.mean_burst_length().unwrap_or(0.0)
        );
    }

    println!(
        "\nARQ's overhead tracks only the loss *rate*; FEC's residual loss\n\
         tracks the loss *correlation*. Hence the paper's conclusion: for\n\
         ARQ-vs-FEC questions, model correlation over all time scales —\n\
         a self-similar model is the right tool there, even though a\n\
         truncated one suffices for finite-buffer loss rates."
    );
}
