//! "Any model up to the correlation horizon": fit a multi-time-scale
//! Markov (hyperexponential) interval model to the truncated-Pareto
//! correlation and show it predicts the same loss.
//!
//! Sec. IV of the paper: because only correlation up to CH matters,
//! the modeler "may choose any model among all the available models as
//! long as it captures the correlation structure up to CH" — including
//! multi-state Markov models built from "enough exponential decay
//! functions". This example quantifies how many exponential time
//! scales are enough.
//!
//! ```sh
//! cargo run --release --example markov_fitting
//! ```

use lrd::prelude::*;
use lrd::traffic::{fit_to_pareto, HyperExponential};

fn main() {
    let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    let pareto = TruncatedPareto::from_hurst(0.8, 0.05, f64::INFINITY);
    let utilization = 0.8;
    let opts = SolverOptions::default();

    // Small buffer ⇒ short correlation horizon ⇒ only a few time
    // scales of correlation matter.
    let buffer_s = 0.1;
    let horizon = 2.0; // comfortably above this queue's CH

    let reference = SolveSession::builder(&QueueModel::from_utilization(
        marginal.clone(),
        pareto,
        utilization,
        buffer_s,
    ))
    .options(&opts)
    .solve();
    println!(
        "reference (truncated-Pareto, T_c = ∞): loss ∈ [{:.3e}, {:.3e}]",
        reference.lower, reference.upper
    );

    println!("\nMarkov (hyperexponential) fits up to {horizon} s:");
    println!("states | loss (midpoint) | ratio to reference | max ccdf error");
    println!("{}", "-".repeat(66));
    for states in [2usize, 4, 8, 16] {
        let mix: HyperExponential = fit_to_pareto(&pareto, horizon, states);
        let sol = SolveSession::builder(&QueueModel::from_utilization(
            marginal.clone(),
            mix.clone(),
            utilization,
            buffer_s,
        ))
        .options(&opts)
        .solve();
        // Largest ccdf deviation over the fitted range.
        let mut max_err: f64 = 0.0;
        for i in 0..100 {
            let t = 0.005 * (horizon / 0.005f64).powf(i as f64 / 99.0);
            max_err = max_err.max((mix.ccdf(t) - pareto.ccdf(t)).abs());
        }
        println!(
            "{states:>6} | {:>15.3e} | {:>18.2} | {:>14.3}",
            sol.loss(),
            sol.loss() / reference.loss(),
            max_err
        );
    }

    println!(
        "\nWith enough exponential time scales the Markovian model reproduces\n\
         the LRD model's loss — parsimonious modeling and LRD are, as the\n\
         paper puts it, orthogonal issues."
    );
}
