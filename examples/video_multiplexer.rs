//! Video multiplexer sizing: how much does statistical multiplexing
//! buy compared with buffering?
//!
//! The scenario is the paper's motivating one: JPEG video streams
//! (MTV-like marginal, LRD with H ≈ 0.83) share a link. An operator
//! can fight loss in two ways — grow the buffer, or multiplex more
//! streams (each with its own fair share of capacity). The paper shows
//! multiplexing wins decisively for LRD traffic; this example
//! quantifies it.
//!
//! ```sh
//! cargo run --release --example video_multiplexer
//! ```

use lrd::prelude::*;
use lrd::traffic::synth;

fn main() {
    // Synthesize the MTV-like trace and extract the paper's inputs:
    // 50-bin marginal + epoch-calibrated θ.
    let trace = synth::mtv_like_with_len(synth::DEFAULT_SEED, 1 << 15);
    let marginal = trace.marginal(50);
    let mean_epoch = trace.mean_epoch(50);
    let alpha = lrd::traffic::alpha_from_hurst(synth::MTV_HURST);
    let theta = TruncatedPareto::calibrate_theta(mean_epoch, alpha);
    let intervals = TruncatedPareto::new(theta, alpha, f64::INFINITY);
    println!(
        "MTV-like video: mean {:.2} Mb/s, σ {:.2} Mb/s, mean epoch {:.0} ms",
        marginal.mean(),
        marginal.std_dev(),
        mean_epoch * 1e3
    );

    let utilization = 0.8;
    let opts = SolverOptions::default();

    // Option A: a single stream, ever-larger buffers.
    println!("\nOption A — buy buffer (single stream, utilization 0.8):");
    println!("  buffer [s] | loss rate");
    for buffer_s in [0.1, 0.5, 1.0, 2.0, 5.0] {
        let model = QueueModel::from_utilization(
            marginal.clone(),
            intervals,
            utilization,
            buffer_s,
        );
        let sol = SolveSession::builder(&model).options(&opts).solve();
        println!("  {:>10.1} | {}", buffer_s, fmt_loss(sol.loss()));
    }

    // Option B: multiplex n streams, buffer and service *per stream*
    // fixed at modest values.
    println!("\nOption B — multiplex streams (0.5 s of buffering per stream):");
    println!("  streams n | loss rate");
    for n in [1usize, 2, 4, 6, 10] {
        let muxed = marginal.superpose(n, 200);
        let model = QueueModel::from_utilization(muxed, intervals, utilization, 0.5);
        let sol = SolveSession::builder(&model).options(&opts).solve();
        println!("  {:>9} | {}", n, fmt_loss(sol.loss()));
    }

    println!(
        "\nMultiplexing a handful of streams beats even a 5-second buffer:\n\
         with LRD input, buffers are ineffective but the marginal narrows\n\
         as 1/√n — exactly the paper's Sec. III conclusion."
    );

    // Option C: measure the multiplexing gain directly by simulation —
    // independent streams through private queues vs their aggregate
    // through a pooled queue.
    println!("\nOption C — simulated segregated vs shared queueing (trace-driven):");
    println!("  streams n | segregated loss | shared loss | gain");
    for n in [2usize, 4, 8] {
        let traces: Vec<_> = (0..n)
            .map(|i| synth::mtv_like_with_len(synth::DEFAULT_SEED + 10 + i as u64, 1 << 14))
            .collect();
        let c = traces[0].mean_rate() / utilization;
        let cmp = lrd::sim::compare_multiplexing(&traces, c, c * 0.05);
        println!(
            "  {n:>9} | {:>15} | {:>11} | {:>5.1}x",
            fmt_loss(cmp.segregated_loss),
            fmt_loss(cmp.shared_loss),
            cmp.gain()
        );
    }
}

fn fmt_loss(l: f64) -> String {
    if l == 0.0 {
        "< 1e-10 (reported 0)".to_string()
    } else {
        format!("{l:.3e}")
    }
}
