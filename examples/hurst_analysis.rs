//! Hurst-parameter estimation on three kinds of traffic.
//!
//! Generates (i) exact fractional Gaussian noise, (ii) the aggregate
//! of heavy-tailed on/off sources (the physical explanation the paper
//! cites for LRD in networks), and (iii) a sample path of the paper's
//! own cutoff-correlated fluid model — then runs all four estimators
//! on each and prints the comparison, including the effect of the
//! cutoff on the measured H.
//!
//! ```sh
//! cargo run --release --example hurst_analysis
//! ```

use lrd::prelude::*;
use lrd::stats::HurstEstimate;
use lrd::traffic::{fgn, onoff};
use lrd_rng::SeedableRng;

fn report(name: &str, truth: &str, series: &[f64]) {
    let ests: [(&str, HurstEstimate); 4] = [
        ("R/S", rs_estimate(series)),
        ("var-time", variance_time_estimate(series)),
        ("GPH", gph_estimate(series)),
        ("wavelet", wavelet_estimate(series)),
    ];
    print!("{name:<28} (true {truth:>5}):");
    for (label, e) in &ests {
        print!("  {label} {:.2}", e.h);
    }
    println!();
}

fn main() {
    let n = 1 << 16;
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(2024);

    // (i) Exact fGn at three Hurst parameters.
    for h in [0.6, 0.75, 0.9] {
        let x = fgn::davies_harte(&mut rng, h, n);
        report(&format!("fGn (Davies–Harte) H={h}"), &format!("{h}"), &x);
    }

    // (ii) Superposed heavy-tailed on/off sources: α = 1.4 sojourns
    // imply an aggregate H = (3 − 1.4)/2 = 0.8.
    let src = onoff::OnOffSource::new(1.0, 1.4, 0.05, 1.4, 0.15);
    let agg = onoff::aggregate_trace(&src, 40, 0.1, n, &mut rng);
    report(
        "on/off aggregate (α=1.4)",
        &format!("{}", src.aggregate_hurst()),
        agg.rates(),
    );

    // (iii) The paper's fluid model, with and without cutoff. The
    // untruncated model is asymptotically self-similar with
    // H = (3 − α)/2; truncation at a short lag destroys the long-range
    // structure and the estimators should read ≈ 0.5 at long lags.
    let marginal = Marginal::new(&[1.0, 5.0], &[0.5, 0.5]);
    for (label, cutoff, truth) in [
        ("fluid model, T_c = ∞", f64::INFINITY, "0.8"),
        ("fluid model, T_c = 0.2 s", 0.2, "→0.5"),
    ] {
        let iv = TruncatedPareto::from_hurst(0.8, 0.02, cutoff);
        let source = FluidSource::new(marginal.clone(), iv);
        let trace = source.sample_trace(&mut rng, 0.05, n);
        report(label, truth, trace.rates());
    }

    println!(
        "\nEstimators agree within their usual biases on genuinely LRD input;\n\
         the truncated model reads as short-range dependent once block sizes\n\
         exceed the cutoff — LRD is a property of the tail you keep."
    );
}
