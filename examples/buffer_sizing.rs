//! Capacity planning with certified loss bounds: buffer sizing,
//! admission control, and multiplexing — the three operator questions
//! the paper's findings bear on.
//!
//! ```sh
//! cargo run --release --example buffer_sizing
//! ```

use lrd::fluidq::{max_utilization_for_loss, min_buffer_for_loss, min_streams_for_loss};
use lrd::prelude::*;

fn main() {
    let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    let opts = SolverOptions::default();
    let target = 1e-4;
    println!("traffic: 2/14 Mb/s bursty source, H = 0.8; loss target {target:.0e}\n");

    // Question 1: how much buffer do I need — and how does the answer
    // explode with the correlation cutoff?
    println!("Q1: minimal buffer meeting the target, by correlation cutoff");
    println!("    T_c [s] | min buffer [ms of service]");
    for tc in [0.1, 0.5, 2.0] {
        let model = QueueModel::from_utilization(
            marginal.clone(),
            TruncatedPareto::from_hurst(0.8, 0.05, tc),
            0.8,
            0.1,
        );
        match min_buffer_for_loss(&model, target, model.service_rate() * 60.0, 0.02, &opts) {
            Some(d) => println!(
                "    {tc:>7} | {:>10.0}",
                d.value / model.service_rate() * 1e3
            ),
            None => println!("    {tc:>7} | infeasible within 60 s of buffering"),
        }
    }
    println!("    (longer correlation ⇒ disproportionately more buffer — the\n     buffer-ineffectiveness phenomenon)\n");

    // Question 2: with a fixed 100 ms buffer, how much load can I admit?
    println!("Q2: maximal admissible utilization with a 100 ms buffer");
    for tc in [0.1, 0.5, 2.0] {
        let iv = TruncatedPareto::from_hurst(0.8, 0.05, tc);
        match max_utilization_for_loss(&marginal, &iv, 0.1, target, (0.2, 0.99), 0.005, &opts) {
            Some(d) => println!("    T_c = {tc:>4} s  →  ρ ≤ {:.2}", d.value),
            None => println!("    T_c = {tc:>4} s  →  below 20% load"),
        }
    }
    println!();

    // Question 3: or keep the load and multiplex — how many streams?
    println!("Q3: streams to multiplex at ρ = 0.8 with 100 ms per-stream buffer");
    for tc in [0.5, 2.0] {
        let model = QueueModel::from_utilization(
            marginal.clone(),
            TruncatedPareto::from_hurst(0.8, 0.05, tc),
            0.8,
            0.1,
        );
        match min_streams_for_loss(&model, target, 30, 200, &opts) {
            Some(d) => println!("    T_c = {tc:>4} s  →  {} streams", d.value as usize),
            None => println!("    T_c = {tc:>4} s  →  more than 30 streams"),
        }
    }
    println!(
        "\nAll answers carry the solver's *upper* bound, so the designs are\n\
         conservative by construction."
    );
}
