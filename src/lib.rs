//! # `lrd` — On the Relevance of Long-Range Dependence in Network Traffic
//!
//! A from-scratch Rust reproduction of Grossglauser & Bolot's SIGCOMM
//! '96 study of when long-range dependence (LRD) actually matters for
//! network performance.
//!
//! The paper's thesis: for a **finite-buffer** queue, only the
//! correlation in the arrival process up to a system-dependent
//! **correlation horizon** affects the loss rate — and the **marginal
//! distribution** of the arrival rate matters far more than the Hurst
//! parameter. This workspace implements:
//!
//! * the cutoff-correlated modulated fluid traffic model
//!   ([`traffic`]): truncated-Pareto renewal intervals with i.i.d.
//!   rates, self-similar (Hurst `H = (3−α)/2`) up to a cutoff lag
//!   `T_c`, plus fGn generators, synthetic traces, heavy-tailed on/off
//!   sources and block shuffling;
//! * the provable-bound loss solver ([`fluidq`]): the discretized
//!   Lindley recursion with lower/upper bounding chains, FFT
//!   convolution and adaptive grid refinement (paper Sec. II);
//! * an exact trace/model-driven fluid-queue simulator ([`sim`]);
//! * Hurst estimators, histograms and regression ([`stats`]);
//! * supporting numerics ([`fft`], [`specfun`]).
//!
//! # Quickstart
//!
//! ```
//! use lrd::prelude::*;
//!
//! // A bursty two-rate source: 2 or 14 Mb/s, redrawn at truncated-
//! // Pareto renewal epochs (H = 0.8 below the 1-second cutoff).
//! let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
//! let intervals = TruncatedPareto::from_hurst(0.8, 0.05, 1.0);
//!
//! // Serve it at 10 Mb/s (utilization 0.8) with a 0.2-second buffer.
//! let model = QueueModel::from_utilization(marginal, intervals, 0.8, 0.2);
//!
//! // Provable loss-rate bounds.
//! let solution = SolveSession::builder(&model)
//!     .options(&SolverOptions::default())
//!     .solve();
//! assert!(solution.converged);
//! assert!(solution.lower <= solution.upper);
//! println!("loss rate in [{:.3e}, {:.3e}]", solution.lower, solution.upper);
//! ```

#![warn(missing_docs)]

pub use lrd_fft as fft;
pub use lrd_fluidq as fluidq;
pub use lrd_obs as obs;
pub use lrd_pool as pool;
pub use lrd_rng as rng;
pub use lrd_sim as sim;
pub use lrd_specfun as specfun;
pub use lrd_stats as stats;
pub use lrd_traffic as traffic;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    #[allow(deprecated)] // the legacy free functions remain in the prelude as shims
    pub use lrd_fluidq::{solve, try_solve};
    pub use lrd_fluidq::{
        correlation_horizon, empirical_horizon, BoundSolver, DegradationReason, GapHistory,
        GapSample, LossKernel, LossSolution, QueueModel, SessionBuilder, SessionPhase,
        SolveSession, SolverError, SolverOptions,
    };
    pub use lrd_sim::{
        simulate_source, simulate_trace, try_simulate_source, try_simulate_trace, FluidQueue,
        SimReport,
    };
    pub use lrd_stats::{
        gph_estimate, rs_estimate, variance_time_estimate, wavelet_estimate, Histogram,
    };
    pub use lrd_traffic::{
        shuffle::external_shuffle_seconds, synth, Exponential, FluidSource, Interarrival,
        Marginal, ModelError, Trace, TruncatedPareto,
    };
}
