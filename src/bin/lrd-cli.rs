//! `lrd-cli` — command-line front end for the loss solver, the trace
//! toolkit and the Hurst estimators.
//!
//! ```text
//! lrd-cli solve    --rates 2,14 --probs 0.5,0.5 --hurst 0.8 --theta 0.05 \
//!                  --cutoff 1.0 --utilization 0.8 --buffer-seconds 0.2
//! lrd-cli horizon  --buffer-mb 10 --mean-interval 0.08 --sigma-interval 0.1 \
//!                  --sigma-rate 2.0 --p 0.99
//! lrd-cli synth    --kind mtv --len 16384 --seed 7 --out trace.txt
//! lrd-cli hurst    --trace trace.txt
//! lrd-cli simulate --trace trace.txt --utilization 0.8 --buffer-seconds 0.2 --dt 0.033
//! ```
//!
//! Traces on disk are plain text, one rate per line. Argument parsing
//! is deliberately hand-rolled (`--key value` pairs only) to keep the
//! workspace dependency-free.

use lrd::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Telemetry flags are shared by every subcommand and include a
    // boolean (--telemetry-summary) the `--key value` parser below
    // cannot express, so they are extracted before flag parsing.
    let _telemetry = match extract_telemetry(&mut args) {
        Ok(guard) => guard,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "solve" => cmd_solve(&opts),
        "horizon" => cmd_horizon(&opts),
        "synth" => cmd_synth(&opts),
        "hurst" => cmd_hurst(&opts),
        "simulate" => cmd_simulate(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
lrd-cli — finite-buffer loss bounds for long-range-dependent traffic

USAGE:
  lrd-cli solve    --rates R1,R2,.. --probs P1,P2,.. (--hurst H | --alpha A)
                   --theta S [--cutoff S|inf] (--utilization R | --service MBPS)
                   (--buffer-seconds S | --buffer-mb MB)
  lrd-cli horizon  --buffer-mb MB --mean-interval S --sigma-interval S
                   --sigma-rate MBPS [--p P]
  lrd-cli synth    --kind mtv|bellcore --len N [--seed N] [--out FILE]
  lrd-cli hurst    --trace FILE
  lrd-cli simulate --trace FILE --dt S (--utilization R | --service MBPS)
                   (--buffer-seconds S | --buffer-mb MB)

Every command also accepts --telemetry FILE (structured JSONL
telemetry) and --telemetry-summary (aggregated table on stderr).

Traces are text files with one rate (Mb/s) per line.";

/// Pulls `--telemetry <path>` / `--telemetry=path` /
/// `--telemetry-summary` out of `args` and installs the corresponding
/// sinks, returning the guard that keeps them alive for the run.
fn extract_telemetry(args: &mut Vec<String>) -> Result<lrd::obs::InstallGuard, String> {
    let mut sinks: Vec<std::sync::Arc<dyn lrd::obs::Subscriber>> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--telemetry" => {
                if i + 1 >= args.len() {
                    return Err("flag --telemetry needs a value".into());
                }
                let path = args.remove(i + 1);
                args.remove(i);
                let sub = lrd::obs::JsonlSubscriber::create(path.as_ref())
                    .map_err(|e| format!("cannot open telemetry file {path}: {e}"))?;
                sinks.push(std::sync::Arc::new(sub));
            }
            "--telemetry-summary" => {
                args.remove(i);
                sinks.push(std::sync::Arc::new(lrd::obs::SummarySubscriber::stderr()));
            }
            other if other.starts_with("--telemetry=") => {
                let path = other["--telemetry=".len()..].to_string();
                args.remove(i);
                if path.is_empty() {
                    return Err("flag --telemetry needs a value".into());
                }
                let sub = lrd::obs::JsonlSubscriber::create(path.as_ref())
                    .map_err(|e| format!("cannot open telemetry file {path}: {e}"))?;
                sinks.push(std::sync::Arc::new(sub));
            }
            _ => i += 1,
        }
    }
    Ok(lrd::obs::install_fanout(sinks))
}

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --flag, got '{key}'"));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} needs a value"));
        };
        out.insert(name.to_string(), value.clone());
    }
    Ok(out)
}

fn req<'a>(opts: &'a Flags, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn parse_f64(s: &str, what: &str) -> Result<f64, String> {
    if s == "inf" || s == "infinity" {
        return Ok(f64::INFINITY);
    }
    s.parse::<f64>()
        .map_err(|_| format!("could not parse {what} '{s}' as a number"))
}

fn parse_list(s: &str, what: &str) -> Result<Vec<f64>, String> {
    s.split(',')
        .map(|x| parse_f64(x.trim(), what))
        .collect()
}

fn build_marginal(opts: &Flags) -> Result<Marginal, String> {
    let rates = parse_list(req(opts, "rates")?, "rate")?;
    let probs = parse_list(req(opts, "probs")?, "probability")?;
    if rates.len() != probs.len() {
        return Err("--rates and --probs must have the same length".into());
    }
    Marginal::try_new(&rates, &probs).map_err(|e| e.to_string())
}

fn build_intervals(opts: &Flags) -> Result<TruncatedPareto, String> {
    let theta = parse_f64(req(opts, "theta")?, "theta")?;
    let cutoff = match opts.get("cutoff") {
        Some(s) => parse_f64(s, "cutoff")?,
        None => f64::INFINITY,
    };
    match (opts.get("hurst"), opts.get("alpha")) {
        (Some(h), None) => {
            TruncatedPareto::try_from_hurst(parse_f64(h, "hurst")?, theta, cutoff)
                .map_err(|e| e.to_string())
        }
        (None, Some(a)) => TruncatedPareto::try_new(theta, parse_f64(a, "alpha")?, cutoff)
            .map_err(|e| e.to_string()),
        _ => Err("provide exactly one of --hurst or --alpha".into()),
    }
}

fn service_rate(opts: &Flags, marginal: &Marginal) -> Result<f64, String> {
    match (opts.get("utilization"), opts.get("service")) {
        (Some(u), None) => {
            let u = parse_f64(u, "utilization")?;
            if !(u > 0.0 && u <= 1.0) {
                return Err(format!("utilization must be in (0, 1], got {u}"));
            }
            if marginal.mean() <= 0.0 {
                return Err("mean rate must be positive to set a utilization".into());
            }
            Ok(marginal.service_rate_for_utilization(u))
        }
        (None, Some(c)) => parse_f64(c, "service rate"),
        _ => Err("provide exactly one of --utilization or --service".into()),
    }
}

fn buffer_mb(opts: &Flags, service: f64) -> Result<f64, String> {
    match (opts.get("buffer-seconds"), opts.get("buffer-mb")) {
        (Some(s), None) => Ok(service * parse_f64(s, "buffer seconds")?),
        (None, Some(mb)) => parse_f64(mb, "buffer Mb"),
        _ => Err("provide exactly one of --buffer-seconds or --buffer-mb".into()),
    }
}

fn cmd_solve(opts: &Flags) -> Result<(), String> {
    let marginal = build_marginal(opts)?;
    let intervals = build_intervals(opts)?;
    let c = service_rate(opts, &marginal)?;
    let b = buffer_mb(opts, c)?;
    let model = QueueModel::try_new(marginal, intervals, c, b).map_err(|e| e.to_string())?;
    let sol = SolveSession::builder(&model)
        .options(&SolverOptions::default())
        .solve();
    println!("service rate : {c:.4} Mb/s");
    println!("buffer       : {b:.4} Mb ({:.4} s)", model.normalized_buffer());
    println!("utilization  : {:.4}", model.utilization());
    println!("loss lower   : {:.6e}", sol.lower);
    println!("loss upper   : {:.6e}", sol.upper);
    println!("loss midpoint: {:.6e}", sol.loss());
    println!("iterations   : {} (grid M = {})", sol.iterations, sol.bins);
    println!("converged    : {}", sol.converged);
    Ok(())
}

fn cmd_horizon(opts: &Flags) -> Result<(), String> {
    let b = parse_f64(req(opts, "buffer-mb")?, "buffer")?;
    let mu = parse_f64(req(opts, "mean-interval")?, "mean interval")?;
    let st = parse_f64(req(opts, "sigma-interval")?, "interval sigma")?;
    let sl = parse_f64(req(opts, "sigma-rate")?, "rate sigma")?;
    let p = match opts.get("p") {
        Some(s) => parse_f64(s, "p")?,
        None => 0.99,
    };
    let t = correlation_horizon(b, mu, st, sl, p);
    println!("T_CH = {t:.6} s  (Eq. 26 with p = {p})");
    Ok(())
}

fn cmd_synth(opts: &Flags) -> Result<(), String> {
    let len: usize = req(opts, "len")?
        .parse()
        .map_err(|_| "could not parse --len".to_string())?;
    let seed: u64 = match opts.get("seed") {
        Some(s) => s.parse().map_err(|_| "could not parse --seed".to_string())?,
        None => synth::DEFAULT_SEED,
    };
    let trace = match req(opts, "kind")? {
        "mtv" => synth::mtv_like_with_len(seed, len),
        "bellcore" => synth::bellcore_like_with_len(seed, len),
        other => return Err(format!("unknown trace kind '{other}' (mtv|bellcore)")),
    };
    let mut body = String::with_capacity(len * 10);
    for &r in trace.rates() {
        body.push_str(&format!("{r:.6}\n"));
    }
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "wrote {len} samples (dt = {} s, mean {:.3} Mb/s) to {path}",
                trace.dt(),
                trace.mean_rate()
            );
        }
        None => print!("{body}"),
    }
    Ok(())
}

fn read_trace(opts: &Flags) -> Result<Vec<f64>, String> {
    let path = req(opts, "trace")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut rates = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        rates.push(parse_f64(line, &format!("line {}", i + 1))?);
    }
    if rates.is_empty() {
        return Err("trace file contains no samples".into());
    }
    Ok(rates)
}

fn cmd_hurst(opts: &Flags) -> Result<(), String> {
    let rates = read_trace(opts)?;
    println!("samples      : {}", rates.len());
    println!("mean         : {:.4}", lrd::stats::mean(&rates));
    println!("sigma        : {:.4}", lrd::stats::std_dev(&rates));
    println!("R/S          : H = {:.3}", rs_estimate(&rates).h);
    println!("variance-time: H = {:.3}", variance_time_estimate(&rates).h);
    println!("GPH          : H = {:.3}", gph_estimate(&rates).h);
    println!("wavelet      : H = {:.3}", wavelet_estimate(&rates).h);
    println!(
        "Whittle      : H = {:.3}",
        lrd::stats::whittle_estimate(&rates).h
    );
    Ok(())
}

fn cmd_simulate(opts: &Flags) -> Result<(), String> {
    let rates = read_trace(opts)?;
    let dt = parse_f64(req(opts, "dt")?, "dt")?;
    let trace = Trace::try_new(dt, rates).map_err(|e| e.to_string())?;
    let marginal = trace.marginal(50);
    let c = service_rate(opts, &marginal)?;
    let b = buffer_mb(opts, c)?;
    let rep = try_simulate_trace(&trace, c, b).map_err(|e| e.to_string())?;
    println!("duration     : {:.2} s ({} samples)", trace.duration(), trace.len());
    println!("service rate : {c:.4} Mb/s (utilization {:.3})", trace.mean_rate() / c);
    println!("buffer       : {b:.4} Mb ({:.4} s)", b / c);
    println!("loss rate    : {:.6e}", rep.loss_rate);
    println!("mean queue   : {:.4} Mb", rep.mean_occupancy);
    println!(
        "resets       : {} empty, {} full",
        rep.empty_resets, rep.full_resets
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> Flags {
        pairs
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--a", "1", "--b", "x"].iter().map(|s| s.to_string()).collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f["a"], "1");
        assert_eq!(f["b"], "x");
        assert!(parse_flags(&["--a".to_string()]).is_err());
        assert!(parse_flags(&["a".to_string(), "1".to_string()]).is_err());
    }

    #[test]
    fn numeric_parsing() {
        assert_eq!(parse_f64("inf", "x").unwrap(), f64::INFINITY);
        assert_eq!(parse_f64("2.5", "x").unwrap(), 2.5);
        assert!(parse_f64("abc", "x").is_err());
        assert_eq!(parse_list("1, 2,3", "x").unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn model_construction_from_flags() {
        let f = flags(&[
            ("rates", "2,14"),
            ("probs", "0.5,0.5"),
            ("hurst", "0.8"),
            ("theta", "0.05"),
            ("cutoff", "1.0"),
            ("utilization", "0.8"),
            ("buffer-seconds", "0.2"),
        ]);
        let m = build_marginal(&f).unwrap();
        assert_eq!(m.mean(), 8.0);
        let iv = build_intervals(&f).unwrap();
        assert!((iv.hurst() - 0.8).abs() < 1e-12);
        let c = service_rate(&f, &m).unwrap();
        assert!((c - 10.0).abs() < 1e-12);
        assert!((buffer_mb(&f, c).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_model_parameters_become_errors_not_panics() {
        let f = flags(&[("theta", "-1"), ("alpha", "1.4")]);
        assert!(build_intervals(&f).unwrap_err().contains("theta"));
        let f = flags(&[("theta", "0.05"), ("alpha", "2.5")]);
        assert!(build_intervals(&f).unwrap_err().contains("alpha"));
        let f = flags(&[("rates", "2,14"), ("probs", "-0.5,0.5")]);
        assert!(build_marginal(&f).is_err());
        let m = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
        let f = flags(&[("utilization", "1.5")]);
        assert!(service_rate(&f, &m).unwrap_err().contains("utilization"));
    }

    #[test]
    fn conflicting_flags_rejected() {
        let f = flags(&[("hurst", "0.8"), ("alpha", "1.4"), ("theta", "0.05")]);
        assert!(build_intervals(&f).is_err());
        let f2 = flags(&[("theta", "0.05")]);
        assert!(build_intervals(&f2).is_err());
    }
}
