//! Simulation drivers.

use crate::queue::FluidQueue;
use crate::report::SimReport;
use lrd_stats::Summary;
use lrd_traffic::{FluidSource, Interarrival, ModelError, Trace};
use lrd_rng::Rng;

/// Drives a fluid queue from a binned rate trace (each sample offered
/// for `trace.dt()` seconds) and returns the run report.
///
/// This is exactly the paper's trace-driven setup for the shuffling
/// experiments (Figs. 7, 8, 14): "the results ... have been obtained
/// directly with the shuffled data used as input to a simulated queue".
///
/// # Panics
///
/// Panics on parameters [`try_simulate_trace`] rejects.
pub fn simulate_trace(trace: &Trace, service_rate: f64, buffer: f64) -> SimReport {
    try_simulate_trace(trace, service_rate, buffer).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`simulate_trace`]: returns a typed
/// [`ModelError`] for invalid queue parameters instead of panicking.
/// (The trace itself is valid by construction: [`Trace`] guarantees
/// finite, non-negative rates and a positive sampling interval.)
pub fn try_simulate_trace(
    trace: &Trace,
    service_rate: f64,
    buffer: f64,
) -> Result<SimReport, ModelError> {
    let mut span = lrd_obs::span!("sim.trace", samples = trace.len(), buffer = buffer);
    let mut q = FluidQueue::try_new(service_rate, buffer)?;
    let mut occ = Summary::new();
    // Progress events roughly every tenth of the run, so long
    // trace-driven simulations are observable while they execute.
    let stride = (trace.len() / 10).max(1);
    for (i, &rate) in trace.rates().iter().enumerate() {
        q.offer(rate, trace.dt());
        occ.push(q.occupancy());
        if (i + 1) % stride == 0 && i + 1 < trace.len() {
            lrd_obs::event!(
                "sim.progress",
                done = i + 1,
                total = trace.len(),
                lost = q.lost(),
            );
        }
    }
    span.record("loss_rate", q.loss_rate());
    Ok(report(&q, occ))
}

/// One observation of the queue at an arrival epoch, comparable with
/// the solver's `(W(n), Q(n))` chain.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalEpochSample {
    /// Occupancy `Q(n)` seen at the epoch (before the interval's work).
    pub occupancy: f64,
    /// The interval's net work increment `W(n) = T_n (λ(n) − c)`.
    pub increment: f64,
    /// The fluid rate `λ(n)` active during the interval.
    pub rate: f64,
    /// Work lost to overflow during the interval (Mb).
    pub lost: f64,
}

/// Drives a fluid queue from sampled paths of the modulated fluid
/// source for `intervals` renewal intervals, recording the occupancy
/// at every arrival epoch.
///
/// The returned samples let callers build the empirical stationary
/// occupancy distribution at arrival instants — the exact quantity the
/// numerical solver bounds — so solver and simulator can be
/// cross-validated distributionally, not just on the loss rate.
pub fn simulate_source<D: Interarrival, R: Rng + ?Sized>(
    source: &FluidSource<D>,
    service_rate: f64,
    buffer: f64,
    intervals: usize,
    rng: &mut R,
) -> (SimReport, Vec<ArrivalEpochSample>) {
    try_simulate_source(source, service_rate, buffer, intervals, rng)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`simulate_source`]: returns a typed
/// [`ModelError`] for invalid queue parameters or a zero interval
/// count instead of panicking.
pub fn try_simulate_source<D: Interarrival, R: Rng + ?Sized>(
    source: &FluidSource<D>,
    service_rate: f64,
    buffer: f64,
    intervals: usize,
    rng: &mut R,
) -> Result<(SimReport, Vec<ArrivalEpochSample>), ModelError> {
    if intervals == 0 {
        return Err(ModelError::ParamOutOfDomain {
            param: "interval count",
            value: 0.0,
            constraint: "must be at least one renewal interval",
        });
    }
    let mut span = lrd_obs::span!("sim.source", intervals = intervals, buffer = buffer);
    let mut q = FluidQueue::try_new(service_rate, buffer)?;
    let mut occ = Summary::new();
    let mut samples = Vec::with_capacity(intervals);
    let stride = (intervals / 10).max(1);
    for n in 0..intervals {
        if n > 0 && n % stride == 0 {
            lrd_obs::event!("sim.progress", done = n, total = intervals, lost = q.lost());
        }
        let seg = source.sample_segment(rng);
        let occupancy = q.occupancy();
        let lost_before = q.lost();
        q.offer(seg.rate, seg.duration);
        samples.push(ArrivalEpochSample {
            occupancy,
            increment: seg.duration * (seg.rate - service_rate),
            rate: seg.rate,
            lost: q.lost() - lost_before,
        });
        occ.push(q.occupancy());
    }
    span.record("loss_rate", q.loss_rate());
    Ok((report(&q, occ), samples))
}

fn report(q: &FluidQueue, occupancy_summary: Summary) -> SimReport {
    SimReport {
        loss_rate: q.loss_rate(),
        arrived: q.arrived(),
        lost: q.lost(),
        elapsed: q.elapsed(),
        empty_resets: q.empty_resets(),
        full_resets: q.full_resets(),
        mean_occupancy: q.mean_occupancy(),
        occupancy_summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_traffic::{Marginal, TruncatedPareto};
    use lrd_rng::SeedableRng;

    #[test]
    fn trace_sim_constant_overload() {
        // Constant rate 2 into service 1 with buffer 1: fills in 1 s,
        // then loses 1 Mb/s forever.
        let t = Trace::new(1.0, vec![2.0; 10]);
        let r = simulate_trace(&t, 1.0, 1.0);
        assert!((r.lost - 9.0).abs() < 1e-12);
        assert!((r.loss_rate - 9.0 / 20.0).abs() < 1e-12);
        // The buffer fills exactly at the end of the first segment and
        // stays full: one reset.
        assert_eq!(r.full_resets, 1);
    }

    #[test]
    fn trace_sim_underload_never_loses() {
        let t = Trace::new(0.1, vec![0.5; 100]);
        let r = simulate_trace(&t, 1.0, 1.0);
        assert_eq!(r.lost, 0.0);
        assert_eq!(r.loss_rate, 0.0);
    }

    #[test]
    fn source_sim_records_epochs() {
        let source = FluidSource::new(
            Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
            TruncatedPareto::new(0.05, 1.4, 1.0),
        );
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(31);
        let (rep, samples) = simulate_source(&source, 10.0, 2.0, 10_000, &mut rng);
        assert_eq!(samples.len(), 10_000);
        assert!(samples
            .iter()
            .all(|s| (0.0..=2.0).contains(&s.occupancy)));
        assert!(rep.loss_rate > 0.0 && rep.loss_rate < 1.0);
        // W must take both signs for this mixed marginal.
        assert!(samples.iter().any(|s| s.increment > 0.0));
        assert!(samples.iter().any(|s| s.increment < 0.0));
    }

    #[test]
    fn loss_rate_scales_with_buffer() {
        let source = FluidSource::new(
            Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
            TruncatedPareto::new(0.05, 1.4, 1.0),
        );
        let mut loss = Vec::new();
        for &b in &[0.5, 2.0, 8.0] {
            let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(32);
            let (rep, _) = simulate_source(&source, 10.0, b, 200_000, &mut rng);
            loss.push(rep.loss_rate);
        }
        assert!(loss[0] > loss[1] && loss[1] > loss[2], "{loss:?}");
    }
}
