//! The exact fluid queue.

use lrd_traffic::ModelError;

/// A single-server fluid queue with constant service rate and a finite
/// buffer, advanced segment by segment.
///
/// ```
/// use lrd_sim::FluidQueue;
///
/// let mut q = FluidQueue::new(1.0, 2.0); // serve 1 Mb/s, buffer 2 Mb
/// q.offer(3.0, 3.0);                     // 3 Mb/s for 3 s
/// // Fills the 2 Mb buffer in 1 s, then drops 2 Mb/s for 2 s:
/// assert_eq!(q.lost(), 4.0);
/// assert_eq!(q.occupancy(), 2.0);
/// ```
///
/// Within a segment of constant input rate `λ` and length `τ` the
/// dynamics are linear with slope `λ − c`, clipped at `0` and `B`;
/// everything (occupancy endpoint, lost work, time spent at each
/// boundary) is computed in closed form.
#[derive(Debug, Clone)]
pub struct FluidQueue {
    service_rate: f64,
    buffer: f64,
    occupancy: f64,
    arrived: f64,
    lost: f64,
    elapsed: f64,
    /// Number of times the buffer *reached* empty (from non-empty).
    empty_resets: u64,
    /// Number of times the buffer *reached* full (from non-full).
    full_resets: u64,
    /// Time-integral of the occupancy (for the mean queue length).
    occupancy_integral: f64,
    /// Start time of the current busy (non-empty) period, if any.
    busy_since: Option<f64>,
    /// Completed busy-period durations: count, total, max.
    busy_count: u64,
    busy_total: f64,
    busy_max: f64,
}

impl FluidQueue {
    /// Creates an empty queue.
    ///
    /// # Panics
    ///
    /// Panics unless `service_rate` and `buffer` are positive and
    /// finite. Use [`FluidQueue::try_new`] for a fallible variant.
    pub fn new(service_rate: f64, buffer: f64) -> Self {
        FluidQueue::try_new(service_rate, buffer).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: returns a typed [`ModelError`] instead of
    /// panicking on invalid queue parameters.
    pub fn try_new(service_rate: f64, buffer: f64) -> Result<Self, ModelError> {
        if !service_rate.is_finite() {
            return Err(ModelError::NonFiniteInput {
                param: "service rate",
                value: service_rate,
            });
        }
        if service_rate <= 0.0 {
            return Err(ModelError::ParamOutOfDomain {
                param: "service rate",
                value: service_rate,
                constraint: "must be positive and finite",
            });
        }
        if !buffer.is_finite() {
            return Err(ModelError::NonFiniteInput {
                param: "buffer",
                value: buffer,
            });
        }
        if buffer <= 0.0 {
            return Err(ModelError::ParamOutOfDomain {
                param: "buffer",
                value: buffer,
                constraint: "must be positive and finite",
            });
        }
        Ok(FluidQueue {
            service_rate,
            buffer,
            occupancy: 0.0,
            arrived: 0.0,
            lost: 0.0,
            elapsed: 0.0,
            empty_resets: 0,
            full_resets: 0,
            occupancy_integral: 0.0,
            busy_since: None,
            busy_count: 0,
            busy_total: 0.0,
            busy_max: 0.0,
        })
    }

    /// The service rate `c`.
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// The buffer size `B`.
    pub fn buffer(&self) -> f64 {
        self.buffer
    }

    /// Current occupancy (Mb).
    pub fn occupancy(&self) -> f64 {
        self.occupancy
    }

    /// Sets the occupancy (e.g. to start a simulation full).
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, B]`. Use [`FluidQueue::try_set_occupancy`]
    /// for a fallible variant.
    pub fn set_occupancy(&mut self, q: f64) {
        self.try_set_occupancy(q).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`FluidQueue::set_occupancy`].
    pub fn try_set_occupancy(&mut self, q: f64) -> Result<(), ModelError> {
        if !(0.0..=self.buffer).contains(&q) {
            return Err(ModelError::ParamOutOfDomain {
                param: "occupancy",
                value: q,
                constraint: "must lie in [0, B]",
            });
        }
        self.occupancy = q;
        Ok(())
    }

    /// Total work offered so far (Mb).
    pub fn arrived(&self) -> f64 {
        self.arrived
    }

    /// Total work lost to overflow so far (Mb).
    pub fn lost(&self) -> f64 {
        self.lost
    }

    /// Total simulated time (s).
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Long-run loss rate `lost/arrived` (`0` before any arrivals).
    pub fn loss_rate(&self) -> f64 {
        if self.arrived == 0.0 {
            0.0
        } else {
            self.lost / self.arrived
        }
    }

    /// Number of empty-boundary hits so far.
    pub fn empty_resets(&self) -> u64 {
        self.empty_resets
    }

    /// Number of full-boundary hits so far.
    pub fn full_resets(&self) -> u64 {
        self.full_resets
    }

    /// Time-averaged occupancy (Mb).
    pub fn mean_occupancy(&self) -> f64 {
        if self.elapsed == 0.0 {
            0.0
        } else {
            self.occupancy_integral / self.elapsed
        }
    }

    /// Number of completed busy (non-empty) periods.
    pub fn busy_periods(&self) -> u64 {
        self.busy_count
    }

    /// Mean completed busy-period duration in seconds (`None` before
    /// the first one completes). Long busy periods are the mechanism
    /// behind buffer ineffectiveness: correlated overload keeps the
    /// queue from resetting, so extra buffer just fills more slowly.
    pub fn mean_busy_period(&self) -> Option<f64> {
        if self.busy_count == 0 {
            None
        } else {
            Some(self.busy_total / self.busy_count as f64)
        }
    }

    /// Longest completed busy period in seconds.
    pub fn max_busy_period(&self) -> f64 {
        self.busy_max
    }

    fn busy_ended(&mut self, at: f64) {
        if let Some(start) = self.busy_since.take() {
            let dur = (at - start).max(0.0);
            self.busy_count += 1;
            self.busy_total += dur;
            self.busy_max = self.busy_max.max(dur);
        }
    }

    /// Offers fluid at constant `rate` for `duration` seconds,
    /// advancing the queue exactly.
    ///
    /// # Panics
    ///
    /// Panics on negative rate or non-positive/non-finite duration.
    /// Use [`FluidQueue::try_offer`] for a fallible variant.
    pub fn offer(&mut self, rate: f64, duration: f64) {
        self.try_offer(rate, duration).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`FluidQueue::offer`]: rejects NaN/infinite
    /// or negative rates and non-positive durations with a typed error
    /// *before* touching the queue state, so a failed offer leaves the
    /// queue exactly as it was.
    pub fn try_offer(&mut self, rate: f64, duration: f64) -> Result<(), ModelError> {
        if !rate.is_finite() {
            return Err(ModelError::NonFiniteInput {
                param: "rate",
                value: rate,
            });
        }
        if rate < 0.0 {
            return Err(ModelError::ParamOutOfDomain {
                param: "rate",
                value: rate,
                constraint: "must be non-negative",
            });
        }
        if !duration.is_finite() {
            return Err(ModelError::NonFiniteInput {
                param: "duration",
                value: duration,
            });
        }
        if duration <= 0.0 {
            return Err(ModelError::ParamOutOfDomain {
                param: "duration",
                value: duration,
                constraint: "must be positive and finite",
            });
        }
        let seg_start = self.elapsed;
        self.arrived += rate * duration;
        self.elapsed += duration;
        let drift = rate - self.service_rate;
        let q0 = self.occupancy;
        if q0 == 0.0 && drift > 0.0 && self.busy_since.is_none() {
            // The queue leaves zero at the start of this segment.
            self.busy_since = Some(seg_start);
        }

        if drift > 0.0 {
            // Fill phase: linear until hitting B, then overflow.
            let to_full = (self.buffer - q0) / drift;
            if to_full >= duration {
                self.occupancy = (q0 + drift * duration).min(self.buffer);
                self.occupancy_integral += (q0 + self.occupancy) / 2.0 * duration;
                if self.occupancy >= self.buffer && q0 < self.buffer {
                    self.full_resets += 1;
                }
            } else {
                let overflow_time = duration - to_full;
                self.lost += drift * overflow_time;
                if q0 < self.buffer {
                    self.full_resets += 1;
                }
                self.occupancy_integral += (q0 + self.buffer) / 2.0 * to_full
                    + self.buffer * overflow_time;
                self.occupancy = self.buffer;
            }
        } else if drift < 0.0 {
            // Drain phase: linear until hitting 0, then idle.
            let to_empty = q0 / (-drift);
            if to_empty >= duration {
                self.occupancy = (q0 + drift * duration).max(0.0);
                self.occupancy_integral += (q0 + self.occupancy) / 2.0 * duration;
                if self.occupancy <= 0.0 && q0 > 0.0 {
                    self.empty_resets += 1;
                    self.busy_ended(seg_start + duration);
                }
            } else {
                if q0 > 0.0 {
                    self.empty_resets += 1;
                    self.busy_ended(seg_start + to_empty);
                }
                self.occupancy_integral += q0 / 2.0 * to_empty;
                self.occupancy = 0.0;
            }
        } else {
            // rate == c: occupancy frozen.
            self.occupancy_integral += q0 * duration;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_without_overflow() {
        let mut q = FluidQueue::new(1.0, 10.0);
        q.offer(3.0, 2.0); // drift +2 for 2 s -> occupancy 4
        assert!((q.occupancy() - 4.0).abs() < 1e-12);
        assert_eq!(q.lost(), 0.0);
        assert!((q.arrived() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn overflow_loses_exact_amount() {
        let mut q = FluidQueue::new(1.0, 2.0);
        q.offer(3.0, 3.0); // fills 2 Mb in 1 s, then loses 2 Mb/s·2 s = 4
        assert!((q.occupancy() - 2.0).abs() < 1e-12);
        assert!((q.lost() - 4.0).abs() < 1e-12);
        assert_eq!(q.full_resets(), 1);
        assert!((q.loss_rate() - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn drain_to_empty() {
        let mut q = FluidQueue::new(2.0, 10.0);
        q.offer(4.0, 1.0); // occupancy 2
        q.offer(0.0, 3.0); // drains 2 Mb in 1 s, idle 2 s
        assert_eq!(q.occupancy(), 0.0);
        assert_eq!(q.empty_resets(), 1);
        assert_eq!(q.lost(), 0.0);
    }

    #[test]
    fn rate_equal_to_service_freezes() {
        let mut q = FluidQueue::new(2.0, 10.0);
        q.offer(4.0, 1.0);
        let before = q.occupancy();
        q.offer(2.0, 5.0);
        assert_eq!(q.occupancy(), before);
    }

    #[test]
    fn occupancy_integral_is_exact() {
        // Triangle: fill at slope 2 for 1 s (area 1), drain at slope
        // -2 for 1 s (area 1): mean occupancy over 2 s = 1.
        let mut q = FluidQueue::new(1.0, 10.0);
        q.offer(3.0, 1.0);
        q.offer(0.0, 2.0); // drains the 2 Mb in exactly 2 s
        // Integral: fill triangle (0→2 over 1 s) = 1, drain triangle
        // (2→0 over 2 s) = 2; mean = 3/3 = 1.
        assert!((q.mean_occupancy() - 1.0).abs() < 1e-12);
        assert_eq!(q.empty_resets(), 1);
    }

    #[test]
    fn conservation_of_work() {
        // arrived = served + lost + still queued; served = elapsed·c −
        // idle deficit. Check via: arrived − lost − occupancy must not
        // exceed elapsed·c (equality when never idle).
        let mut q = FluidQueue::new(1.0, 1.0);
        for (r, d) in [(2.0, 1.0), (0.5, 2.0), (3.0, 0.5), (0.0, 1.0)] {
            q.offer(r, d);
        }
        let served = q.arrived() - q.lost() - q.occupancy();
        assert!(served <= q.elapsed() * q.service_rate() + 1e-12);
        assert!(served >= 0.0);
    }

    #[test]
    fn boundary_hit_exactly_at_segment_end_counts_once() {
        let mut q = FluidQueue::new(1.0, 2.0);
        q.offer(3.0, 1.0); // exactly reaches B at the segment end
        assert!((q.occupancy() - 2.0).abs() < 1e-12);
        // to_full == duration is the no-overflow branch: no loss...
        assert_eq!(q.lost(), 0.0);
        // ...but reaching the boundary still counts as a reset.
        assert_eq!(q.full_resets(), 1);
    }

    #[test]
    fn starting_full() {
        let mut q = FluidQueue::new(1.0, 2.0);
        q.set_occupancy(2.0);
        q.offer(2.0, 1.0); // drift +1 with full buffer: everything above c is lost
        assert!((q.lost() - 1.0).abs() < 1e-12);
        // Already at B: reaching it again is not a fresh reset.
        assert_eq!(q.full_resets(), 0);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, B]")]
    fn set_occupancy_validates() {
        FluidQueue::new(1.0, 1.0).set_occupancy(2.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_rejected() {
        FluidQueue::new(1.0, 1.0).offer(-1.0, 1.0);
    }

    #[test]
    fn busy_period_measured_exactly() {
        // Fill at slope +2 for 1 s, then drain at slope −1: the queue
        // leaves zero at t = 0 and returns to zero at t = 1 + 2/1 = 3,
        // one busy period of exactly 3 s.
        let mut q = FluidQueue::new(1.0, 10.0);
        q.offer(3.0, 1.0);
        assert_eq!(q.busy_periods(), 0); // still busy
        q.offer(0.0, 3.0); // empties 2 s into this segment
        assert_eq!(q.busy_periods(), 1);
        assert!((q.mean_busy_period().unwrap() - 3.0).abs() < 1e-12);
        assert!((q.max_busy_period() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_busy_periods() {
        let mut q = FluidQueue::new(1.0, 10.0);
        for _ in 0..3 {
            q.offer(2.0, 1.0); // +1 for 1 s
            q.offer(0.0, 2.0); // -1 for 2 s: empties after 1 s
        }
        assert_eq!(q.busy_periods(), 3);
        assert!((q.mean_busy_period().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn idle_queue_has_no_busy_periods() {
        let mut q = FluidQueue::new(2.0, 10.0);
        q.offer(1.0, 5.0); // underload from empty: never leaves zero
        assert_eq!(q.busy_periods(), 0);
        assert_eq!(q.mean_busy_period(), None);
    }
}
