//! Aggregated results of a simulation run.

use lrd_stats::Summary;

/// Summary statistics of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Long-run loss rate `lost/arrived`.
    pub loss_rate: f64,
    /// Total work offered (Mb).
    pub arrived: f64,
    /// Total work lost (Mb).
    pub lost: f64,
    /// Simulated time (s).
    pub elapsed: f64,
    /// Times the buffer hit empty.
    pub empty_resets: u64,
    /// Times the buffer hit full.
    pub full_resets: u64,
    /// Time-averaged occupancy (Mb).
    pub mean_occupancy: f64,
    /// Occupancy observed at sampling points (arrival epochs for
    /// model-driven runs, segment boundaries for trace-driven runs).
    pub occupancy_summary: Summary,
}

impl SimReport {
    /// Mean time between boundary resets (s); `None` if the buffer
    /// never reset. This is the empirical counterpart of the
    /// correlation horizon's resetting argument (paper Sec. IV).
    pub fn mean_reset_interval(&self) -> Option<f64> {
        let resets = self.empty_resets + self.full_resets;
        if resets == 0 {
            None
        } else {
            Some(self.elapsed / resets as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_interval() {
        let r = SimReport {
            loss_rate: 0.0,
            arrived: 1.0,
            lost: 0.0,
            elapsed: 10.0,
            empty_resets: 3,
            full_resets: 2,
            mean_occupancy: 0.5,
            occupancy_summary: Summary::new(),
        };
        assert_eq!(r.mean_reset_interval(), Some(2.0));
        let none = SimReport {
            empty_resets: 0,
            full_resets: 0,
            ..r
        };
        assert_eq!(none.mean_reset_interval(), None);
    }
}
