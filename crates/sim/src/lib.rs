//! Finite-buffer fluid-queue simulation.
//!
//! Because the input is piecewise-constant fluid, the queue trajectory
//! within one constant-rate interval is *exactly* integrable — there is
//! no time-discretization error anywhere in this crate. The simulator
//! is the model-free counterpart of the numerical solver in
//! [`lrd_fluidq`]:
//!
//! * [`FluidQueue`] — the single-server queue with service rate `c`
//!   and buffer `B`, advanced one `(rate, duration)` segment at a time,
//!   tracking arrived/lost work, boundary resets, and occupancy
//!   statistics;
//! * [`simulate_trace`] — drives a queue from a binned [`Trace`]
//!   (the paper's shuffling experiments, Figs. 7/8/14);
//! * [`simulate_source`] — drives a queue from sampled paths of the
//!   modulated fluid source, recording the queue occupancy **at
//!   arrival epochs** so the result is directly comparable with the
//!   solver's `Q(n)` chain (Monte-Carlo validation of Sec. II);
//! * [`errorcontrol`] — the ARQ-vs-FEC comparison of the paper's
//!   concluding example, driven by queue-derived loss processes;
//! * [`mux`] — the segregated-vs-shared queue comparison quantifying
//!   the statistical-multiplexing gain on traces.

#![warn(missing_docs)]

pub mod errorcontrol;
pub mod mux;
mod queue;
mod report;
mod run;

pub use errorcontrol::{arq_overhead, fec_residual_loss, LossProcess};
pub use mux::{compare_multiplexing, MuxComparison};
pub use queue::FluidQueue;
pub use report::SimReport;
pub use run::{
    simulate_source, simulate_trace, try_simulate_source, try_simulate_trace, ArrivalEpochSample,
};
