//! Statistical-multiplexing comparison: segregated queues vs a shared
//! queue.
//!
//! The paper argues (Sec. III, third consequence) that "statistical
//! multiplexing is an efficient mechanism (more so than buffering) to
//! achieve high utilization while keeping loss low". The analytic route
//! in this workspace models multiplexing through the `n`-fold marginal
//! convolution; this module provides the *simulation* counterpart so
//! the gain can be measured directly on traces: run `n` traces through
//! `n` private queues (service `c`, buffer `B` each), then run their
//! superposition through one shared queue with the pooled resources
//! (`n·c`, `n·B`), and compare loss.

use crate::queue::FluidQueue;
use lrd_traffic::Trace;

/// Result of a segregated-vs-shared comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MuxComparison {
    /// Work-weighted loss rate with one private queue per stream.
    pub segregated_loss: f64,
    /// Loss rate of the pooled queue fed by the aggregate.
    pub shared_loss: f64,
}

impl MuxComparison {
    /// The multiplexing gain `segregated / shared` (∞ if sharing loses
    /// nothing while segregation loses something, 1 if equal, `NaN` if
    /// both are zero).
    pub fn gain(&self) -> f64 {
        self.segregated_loss / self.shared_loss
    }
}

/// Runs the comparison. All traces must share the sampling interval
/// and length.
///
/// # Panics
///
/// Panics if `traces` is empty, the traces disagree in `dt`/length, or
/// the per-stream resources are non-positive.
pub fn compare_multiplexing(
    traces: &[Trace],
    service_per_stream: f64,
    buffer_per_stream: f64,
) -> MuxComparison {
    assert!(!traces.is_empty(), "need at least one stream");
    let dt = traces[0].dt();
    let len = traces[0].len();
    for t in traces {
        assert_eq!(t.dt(), dt, "traces must share the sampling interval");
        assert_eq!(t.len(), len, "traces must share the length");
    }
    assert!(service_per_stream > 0.0 && buffer_per_stream > 0.0);

    // Segregated: each stream gets its own queue.
    let mut arrived = 0.0;
    let mut lost = 0.0;
    for t in traces {
        let mut q = FluidQueue::new(service_per_stream, buffer_per_stream);
        for &rate in t.rates() {
            q.offer(rate, dt);
        }
        arrived += q.arrived();
        lost += q.lost();
    }
    let segregated_loss = if arrived > 0.0 { lost / arrived } else { 0.0 };

    // Shared: the aggregate into the pooled queue.
    let n = traces.len() as f64;
    let mut shared = FluidQueue::new(n * service_per_stream, n * buffer_per_stream);
    for i in 0..len {
        let rate: f64 = traces.iter().map(|t| t.rates()[i]).sum();
        shared.offer(rate, dt);
    }

    MuxComparison {
        segregated_loss,
        shared_loss: shared.loss_rate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_traffic::synth;

    #[test]
    fn sharing_never_loses_more() {
        // Pooled resources can absorb any sample-path the segregated
        // system absorbs (the shared queue is a relaxation), so shared
        // loss <= segregated loss on identical inputs.
        let traces: Vec<Trace> = (0..4)
            .map(|i| synth::mtv_like_with_len(100 + i, 4096))
            .collect();
        let mean = traces[0].mean_rate();
        let c = mean / 0.85;
        let cmp = compare_multiplexing(&traces, c, c * 0.02);
        assert!(
            cmp.shared_loss <= cmp.segregated_loss + 1e-12,
            "sharing lost more: {cmp:?}"
        );
    }

    #[test]
    fn gain_grows_with_stream_count() {
        let all: Vec<Trace> = (0..8)
            .map(|i| synth::mtv_like_with_len(200 + i, 4096))
            .collect();
        let mean = all[0].mean_rate();
        let c = mean / 0.9;
        let b = c * 0.01;
        let few = compare_multiplexing(&all[..2], c, b);
        let many = compare_multiplexing(&all, c, b);
        // Absolute losses differ across the two trace populations, so
        // compare the multiplexing *gain* (segregated/shared), which
        // normalizes per-population burstiness.
        assert!(
            many.gain() >= few.gain(),
            "more streams should multiplex better: few {few:?} many {many:?}"
        );
    }

    #[test]
    fn identical_constant_streams_gain_nothing() {
        // Perfectly correlated (identical constant) streams have no
        // multiplexing gain: aggregate = n × single.
        let t = Trace::new(0.1, vec![2.0; 100]);
        let traces = vec![t.clone(), t.clone(), t];
        let cmp = compare_multiplexing(&traces, 1.0, 0.5);
        assert!((cmp.segregated_loss - cmp.shared_loss).abs() < 1e-12);
        assert!(cmp.segregated_loss > 0.0);
        assert!((cmp.gain() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "share the sampling interval")]
    fn mismatched_traces_rejected() {
        let a = Trace::new(0.1, vec![1.0; 10]);
        let b = Trace::new(0.2, vec![1.0; 10]);
        compare_multiplexing(&[a, b], 1.0, 1.0);
    }
}
