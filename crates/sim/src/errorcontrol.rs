//! ARQ vs FEC under correlated losses — the paper's concluding
//! example (Sec. V).
//!
//! The paper closes by arguing that the *relevant* time scales depend
//! on the performance question: comparing closed-loop (ARQ) and
//! open-loop (FEC) error control, "extending the time-scale of the
//! correlation structure ... amounts to increasing the advantage of
//! ARQ over FEC", so that problem needs correlation modeled over all
//! time scales. This module makes that argument executable:
//!
//! * a packet-loss process is derived from the fluid queue by slicing
//!   a trace into packet slots and marking a packet lost in proportion
//!   to the fluid lost in its slot;
//! * [`arq_overhead`] counts retransmissions until delivery (selective
//!   repeat, loss-burst aware);
//! * [`fec_residual_loss`] measures the post-recovery loss of an
//!   `(n, k)` block code that can repair up to `n − k` losses per
//!   block.
//!
//! Correlation (burstiness) barely affects ARQ — a burst costs one
//! retransmission round per lost packet regardless of clustering —
//! but it destroys FEC, which relies on losses being spread out.

use crate::queue::FluidQueue;
use lrd_traffic::Trace;

/// A packet-level loss indicator sequence derived from fluid loss.
#[derive(Debug, Clone)]
pub struct LossProcess {
    /// `true` at position `i` iff packet `i` was lost.
    pub lost: Vec<bool>,
}

impl LossProcess {
    /// Derives the loss sequence by replaying `trace` through a fluid
    /// queue and marking the packet of each trace slot as lost iff any
    /// fluid was dropped during that slot — at packet granularity, a
    /// clipped slot is a lost packet.
    pub fn from_trace(trace: &Trace, service_rate: f64, buffer: f64) -> Self {
        let mut q = FluidQueue::new(service_rate, buffer);
        let mut lost = Vec::with_capacity(trace.len());
        let mut prev_lost = 0.0;
        for &rate in trace.rates() {
            q.offer(rate, trace.dt());
            lost.push(q.lost() > prev_lost);
            prev_lost = q.lost();
        }
        LossProcess { lost }
    }

    /// Overall packet loss probability.
    pub fn loss_probability(&self) -> f64 {
        if self.lost.is_empty() {
            return 0.0;
        }
        self.lost.iter().filter(|&&l| l).count() as f64 / self.lost.len() as f64
    }

    /// Mean length of maximal loss bursts (consecutive losses);
    /// `None` when nothing was lost.
    pub fn mean_burst_length(&self) -> Option<f64> {
        let mut bursts = 0u64;
        let mut lost_total = 0u64;
        let mut in_burst = false;
        for &l in &self.lost {
            if l {
                lost_total += 1;
                if !in_burst {
                    bursts += 1;
                    in_burst = true;
                }
            } else {
                in_burst = false;
            }
        }
        if bursts == 0 {
            None
        } else {
            Some(lost_total as f64 / bursts as f64)
        }
    }

    /// Destroys the correlation structure by spreading the same number
    /// of losses uniformly (deterministic stride), keeping the loss
    /// probability while removing bursts — the "independent losses"
    /// comparison point.
    pub fn decorrelated(&self) -> LossProcess {
        let n = self.lost.len();
        let k = self.lost.iter().filter(|&&l| l).count();
        let mut lost = vec![false; n];
        for i in 0..k {
            lost[(i * n) / k] = true;
        }
        LossProcess { lost }
    }
}

/// ARQ (selective repeat) transmission overhead: expected total
/// transmissions per delivered packet, assuming every retransmission
/// round independently re-experiences the *stationary* loss
/// probability. Returns `1/(1 − p)` computed from the sequence — the
/// clustering of losses does not change it, which is exactly the
/// paper's point about ARQ accumulating burst losses into one
/// retransmission request.
pub fn arq_overhead(process: &LossProcess) -> f64 {
    let p = process.loss_probability();
    assert!(p < 1.0, "cannot deliver through a fully lossy channel");
    1.0 / (1.0 - p)
}

/// FEC residual loss for an `(n, k)` block code: the fraction of data
/// packets still lost after decoding, where a block of `n` packets
/// (carrying `k` data packets) recovers iff at most `n − k` of its
/// packets were lost.
///
/// # Panics
///
/// Panics unless `0 < k <= n`.
pub fn fec_residual_loss(process: &LossProcess, n: usize, k: usize) -> f64 {
    assert!(k >= 1 && k <= n, "need 1 <= k <= n");
    let mut data_lost = 0usize;
    let mut data_total = 0usize;
    for block in process.lost.chunks(n) {
        let losses = block.iter().filter(|&&l| l).count();
        // Count data packets in this (possibly partial) block.
        let data_here = block.len().min(k);
        data_total += data_here;
        if losses > n - k {
            // Decoding fails: data packets that were lost stay lost.
            let lost_data = losses.min(data_here);
            data_lost += lost_data;
        }
    }
    if data_total == 0 {
        0.0
    } else {
        data_lost as f64 / data_total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bursty() -> LossProcess {
        // 100 packets, 10 lost in one burst.
        let mut lost = vec![false; 100];
        lost[40..50].fill(true);
        LossProcess { lost }
    }

    #[test]
    fn loss_probability_and_bursts() {
        let p = bursty();
        assert!((p.loss_probability() - 0.1).abs() < 1e-12);
        assert_eq!(p.mean_burst_length(), Some(10.0));
        assert_eq!(LossProcess { lost: vec![false; 5] }.mean_burst_length(), None);
    }

    #[test]
    fn decorrelation_preserves_rate_kills_bursts() {
        let p = bursty();
        let d = p.decorrelated();
        assert_eq!(
            d.lost.iter().filter(|&&l| l).count(),
            p.lost.iter().filter(|&&l| l).count()
        );
        assert_eq!(d.mean_burst_length(), Some(1.0));
    }

    #[test]
    fn arq_indifferent_to_burstiness() {
        let p = bursty();
        let d = p.decorrelated();
        assert!((arq_overhead(&p) - arq_overhead(&d)).abs() < 1e-12);
        assert!((arq_overhead(&p) - 1.0 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn fec_hurt_by_burstiness() {
        // (10, 8) code: repairs up to 2 losses per 10-packet block.
        let p = bursty();
        let d = p.decorrelated();
        let bursty_residual = fec_residual_loss(&p, 10, 8);
        let spread_residual = fec_residual_loss(&d, 10, 8);
        // Spread: exactly one loss per block of 10 → fully repaired.
        assert_eq!(spread_residual, 0.0);
        // Bursty: the burst overwhelms its block(s).
        assert!(bursty_residual > 0.05, "residual {bursty_residual}");
    }

    #[test]
    fn fec_perfect_code_recovers_everything() {
        let p = bursty();
        // k = 1 in blocks of 20: tolerates 19 losses.
        assert_eq!(fec_residual_loss(&p, 20, 1), 0.0);
    }

    #[test]
    fn loss_process_from_trace() {
        // Constant overload: every slot after the buffer fills drops
        // fluid → packets marked lost.
        let t = Trace::new(1.0, vec![2.0; 10]);
        let p = LossProcess::from_trace(&t, 1.0, 1.5);
        assert!(!p.lost[0], "first slot only fills the buffer");
        assert!(p.lost[5..].iter().all(|&l| l), "steady overload loses");
        assert!(p.loss_probability() > 0.5);
    }

    #[test]
    #[should_panic(expected = "1 <= k <= n")]
    fn fec_validates_code() {
        fec_residual_loss(&bursty(), 4, 5);
    }
}
