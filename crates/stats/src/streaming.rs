//! Sliding-window statistics for live traffic: a fixed-capacity ring
//! of recent rate samples and block-aligned streaming Hurst estimates
//! over it.
//!
//! The online loss-bound service (`lrd-serve`) watches each flow
//! through these types: the window supplies the recent marginal, and
//! the streaming estimator keeps a Hurst estimate that is refreshed at
//! a configurable cadence rather than on every sample — `O(W log W)`
//! estimator work is amortized over `refresh_every` pushes, and the
//! staleness of the cached estimate is bounded by construction (the
//! property the daemon's bounded-staleness contract leans on).
//!
//! The estimators themselves are the batch [`rs_estimate`] and
//! [`variance_time_estimate`] applied to an ordered snapshot of the
//! window, so a streaming estimate over a full window equals the batch
//! estimate of the same `W` samples exactly — no separate numerical
//! path to validate.

use crate::descriptive::variance;
use crate::hurst::{rs_estimate, variance_time_estimate, HurstEstimate};

/// Fixed-capacity ring buffer over the most recent `capacity` samples.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    buf: Vec<f64>,
    /// Index the *next* push writes to.
    head: usize,
    len: usize,
}

impl SlidingWindow {
    /// An empty window holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            buf: vec![0.0; capacity],
            head: 0,
            len: 0,
        }
    }

    /// Appends a sample, evicting the oldest once full.
    pub fn push(&mut self, v: f64) {
        self.buf[self.head] = v;
        self.head = (self.head + 1) % self.buf.len();
        self.len = (self.len + 1).min(self.buf.len());
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window has wrapped at least once.
    pub fn is_full(&self) -> bool {
        self.len == self.buf.len()
    }

    /// The held samples, oldest first.
    pub fn snapshot(&self) -> Vec<f64> {
        let cap = self.buf.len();
        let start = (self.head + cap - self.len) % cap;
        (0..self.len).map(|i| self.buf[(start + i) % cap]).collect()
    }

    /// Mean of the held samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.iter().sum::<f64>() / self.len as f64
    }

    /// Iterates the held samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        let cap = self.buf.len();
        let start = (self.head + cap - self.len) % cap;
        (0..self.len).map(move |i| self.buf[(start + i) % cap])
    }
}

/// Both window Hurst estimates from one refresh.
#[derive(Debug, Clone)]
pub struct HurstPair {
    /// Rescaled-range (R/S) estimate of the window.
    pub rs: HurstEstimate,
    /// Variance–time estimate of the window.
    pub vt: HurstEstimate,
}

impl HurstPair {
    /// The two clamped point estimates averaged — the robust summary
    /// a consumer that wants one number should read.
    pub fn pooled(&self) -> f64 {
        0.5 * (self.rs.clamped() + self.vt.clamped())
    }
}

/// Minimum window the batch estimators accept.
pub const MIN_HURST_WINDOW: usize = 64;

/// A sliding-window Hurst estimator with bounded estimate staleness.
///
/// Samples stream in through [`push`](Self::push); once the window has
/// filled, the R/S and variance–time estimates are recomputed at most
/// every `refresh_every` pushes and served from cache in between. The
/// invariant tests pin: after any push sequence,
/// [`staleness`](Self::staleness) < `refresh_every` whenever an
/// estimate exists.
#[derive(Debug, Clone)]
pub struct StreamingHurst {
    window: SlidingWindow,
    refresh_every: usize,
    /// Pushes since the cached estimate was computed.
    since: usize,
    cached: Option<HurstPair>,
}

impl StreamingHurst {
    /// A streaming estimator over the last `window` samples,
    /// refreshing at most every `refresh_every` pushes.
    ///
    /// # Panics
    ///
    /// Panics if `window < `[`MIN_HURST_WINDOW`] or `refresh_every`
    /// is zero.
    pub fn new(window: usize, refresh_every: usize) -> Self {
        assert!(
            window >= MIN_HURST_WINDOW,
            "Hurst window must hold at least {MIN_HURST_WINDOW} samples"
        );
        assert!(refresh_every > 0, "refresh cadence must be positive");
        Self {
            window: SlidingWindow::new(window),
            refresh_every,
            since: 0,
            cached: None,
        }
    }

    /// Feeds one sample and refreshes the cached estimate if due.
    pub fn push(&mut self, v: f64) {
        self.window.push(v);
        self.since += 1;
        if self.window.is_full() && (self.cached.is_none() || self.since >= self.refresh_every) {
            let snap = self.window.snapshot();
            // A constant window has no scaling behaviour to estimate;
            // keep the previous estimate (and its staleness clock
            // running) until variability returns.
            if variance(&snap) > 0.0 {
                self.cached = Some(HurstPair {
                    rs: rs_estimate(&snap),
                    vt: variance_time_estimate(&snap),
                });
                self.since = 0;
            }
        }
    }

    /// The most recent estimate pair; `None` until the window first
    /// fills with non-constant data.
    pub fn current(&self) -> Option<&HurstPair> {
        self.cached.as_ref()
    }

    /// Pushes absorbed since the cached estimate was computed.
    pub fn staleness(&self) -> usize {
        self.since
    }

    /// The configured refresh cadence — the staleness bound.
    pub fn refresh_every(&self) -> usize {
        self.refresh_every
    }

    /// The underlying sample window.
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_evicts_oldest_first() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        for v in [1.0, 2.0] {
            w.push(v);
        }
        assert_eq!(w.snapshot(), vec![1.0, 2.0]);
        assert!(!w.is_full());
        for v in [3.0, 4.0, 5.0] {
            w.push(v);
        }
        assert!(w.is_full());
        assert_eq!(w.snapshot(), vec![3.0, 4.0, 5.0]);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![3.0, 4.0, 5.0]);
        assert!((w.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_equals_batch_on_the_same_window() {
        // Deterministic non-constant series: the streaming estimate
        // after the window fills must equal the batch estimate of the
        // identical snapshot bit for bit.
        let mut s = StreamingHurst::new(128, 1_000_000);
        let series: Vec<f64> = (0..128).map(|i| ((i * 37 + 11) % 97) as f64).collect();
        for &v in &series {
            s.push(v);
        }
        let pair = s.current().expect("full window yields an estimate");
        assert_eq!(pair.rs.h.to_bits(), rs_estimate(&series).h.to_bits());
        assert_eq!(
            pair.vt.h.to_bits(),
            variance_time_estimate(&series).h.to_bits()
        );
    }

    #[test]
    fn staleness_stays_below_the_cadence() {
        let mut s = StreamingHurst::new(64, 7);
        for i in 0..1000 {
            s.push(((i * 13 + 5) % 31) as f64);
            if s.current().is_some() {
                assert!(
                    s.staleness() < s.refresh_every(),
                    "staleness {} at push {i} breached cadence {}",
                    s.staleness(),
                    s.refresh_every()
                );
            }
        }
    }

    #[test]
    fn constant_stream_never_panics_and_yields_nothing() {
        let mut s = StreamingHurst::new(64, 4);
        for _ in 0..300 {
            s.push(2.5);
        }
        assert!(s.current().is_none());
        // Variability arriving later unlocks the estimate.
        for i in 0..64 {
            s.push((i % 9) as f64);
        }
        assert!(s.current().is_some());
    }
}
