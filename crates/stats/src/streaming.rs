//! Sliding-window statistics for live traffic: a fixed-capacity ring
//! of recent rate samples and incrementally maintained streaming Hurst
//! estimates over it.
//!
//! The online loss-bound service (`lrd-serve`) watches each flow
//! through these types: the window supplies the recent marginal, and
//! the streaming estimator keeps a Hurst estimate that is refreshed at
//! a configurable cadence rather than on every sample, so the staleness
//! of the cached estimate is bounded by construction (the property the
//! daemon's bounded-staleness contract leans on).
//!
//! # The incremental backend
//!
//! Estimates regress over **dyadic** block sizes (`8..=W/4` for R/S,
//! `1..=W/8` for variance–time) and are pinned bit-equal to the batch
//! [`try_rs_estimate_with_sizes`] / [`try_variance_time_estimate_with_sizes`]
//! of the same full window. Each size keeps a deque of per-block
//! statistics tiled from the window start; when the window has advanced
//! by a multiple of a block size since the last refresh, that size
//! drops the evicted blocks from the front and scores only the newly
//! arrived blocks — no `snapshot()` allocation and, at an aligned
//! cadence, no `O(W log W)` recompute. Sizes the advance doesn't align
//! with fall back to retiling that size from the ring.
//!
//! # Failure policy
//!
//! A refresh can fail with a typed [`EstimatorError`] — a constant
//! window, or the nastier "overall variance positive but every block
//! constant" window. [`StreamingHurst::push`] never panics on these:
//! it keeps the previous cached estimate (staleness clock still
//! running) and retries no sooner than one cadence later, which is what
//! lets a long-running daemon survive a pathological flow.

use std::collections::VecDeque;

use crate::descriptive::variance;
use crate::error::EstimatorError;
use crate::hurst::{
    dyadic_sizes, rescaled_range, rs_fit_points, vt_fit_points, HurstEstimate,
};

/// Fixed-capacity ring buffer over the most recent `capacity` samples.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    buf: Vec<f64>,
    /// Index the *next* push writes to.
    head: usize,
    len: usize,
}

impl SlidingWindow {
    /// An empty window holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            buf: vec![0.0; capacity],
            head: 0,
            len: 0,
        }
    }

    /// Appends a sample, evicting the oldest once full.
    pub fn push(&mut self, v: f64) {
        self.buf[self.head] = v;
        self.head = (self.head + 1) % self.buf.len();
        self.len = (self.len + 1).min(self.buf.len());
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window has wrapped at least once.
    pub fn is_full(&self) -> bool {
        self.len == self.buf.len()
    }

    /// The held sample at logical position `i` (0 = oldest).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.len, "window index {i} out of range {}", self.len);
        let cap = self.buf.len();
        let start = (self.head + cap - self.len) % cap;
        self.buf[(start + i) % cap]
    }

    /// The held samples, oldest first.
    pub fn snapshot(&self) -> Vec<f64> {
        self.iter().collect()
    }

    /// Mean of the held samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.iter().sum::<f64>() / self.len as f64
    }

    /// Iterates the held samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        let cap = self.buf.len();
        let start = (self.head + cap - self.len) % cap;
        (0..self.len).map(move |i| self.buf[(start + i) % cap])
    }
}

/// Both window Hurst estimates from one refresh.
#[derive(Debug, Clone)]
pub struct HurstPair {
    /// Rescaled-range (R/S) estimate of the window.
    pub rs: HurstEstimate,
    /// Variance–time estimate of the window.
    pub vt: HurstEstimate,
}

impl HurstPair {
    /// The two clamped point estimates averaged — the robust summary
    /// a consumer that wants one number should read.
    pub fn pooled(&self) -> f64 {
        0.5 * (self.rs.clamped() + self.vt.clamped())
    }
}

/// Minimum window the estimators accept.
pub const MIN_HURST_WINDOW: usize = 64;

/// Per-block-size tile row: block statistics for the current window,
/// tiled from the window start, oldest block first.
#[derive(Debug, Clone)]
struct TileRow {
    size: usize,
    /// R/S rows: `Some(rs)` per non-constant block, `None` sentinel for
    /// constant blocks (matching the batch path's skipped blocks).
    /// VT rows: block means wrapped in `Some` (never `None`).
    blocks: VecDeque<Option<f64>>,
}

/// A sliding-window Hurst estimator with bounded estimate staleness.
///
/// Samples stream in through [`push`](Self::push); once the window has
/// filled, the R/S and variance–time estimates are recomputed at most
/// every `refresh_every` pushes and served from cache in between. The
/// invariant tests pin: after any push sequence,
/// [`staleness`](Self::staleness) < `refresh_every` whenever an
/// estimate exists, and a refreshed estimate is bit-equal to the batch
/// dyadic-size estimators applied to a snapshot of the same window.
#[derive(Debug, Clone)]
pub struct StreamingHurst {
    window: SlidingWindow,
    refresh_every: usize,
    /// Pushes since the cached estimate was computed.
    since: usize,
    cached: Option<HurstPair>,
    /// Total pushes ever absorbed (the absolute index clock the tiling
    /// is anchored to).
    total: u64,
    /// Don't attempt another refresh before this push count — bounds
    /// the cost of repeated estimator failures on pathological streams.
    skip_until: u64,
    /// Absolute index of the window start the tiles describe, if they
    /// have been built.
    tiles_at: Option<u64>,
    rs_rows: Vec<TileRow>,
    vt_rows: Vec<TileRow>,
    scratch: Vec<f64>,
}

impl StreamingHurst {
    /// A streaming estimator over the last `window` samples,
    /// refreshing at most every `refresh_every` pushes.
    ///
    /// # Panics
    ///
    /// Panics if `window < `[`MIN_HURST_WINDOW`] or `refresh_every`
    /// is zero.
    pub fn new(window: usize, refresh_every: usize) -> Self {
        assert!(
            window >= MIN_HURST_WINDOW,
            "Hurst window must hold at least {MIN_HURST_WINDOW} samples"
        );
        assert!(refresh_every > 0, "refresh cadence must be positive");
        let row = |size: usize| TileRow {
            size,
            blocks: VecDeque::with_capacity(window / size),
        };
        Self {
            window: SlidingWindow::new(window),
            refresh_every,
            since: 0,
            cached: None,
            total: 0,
            skip_until: 0,
            tiles_at: None,
            rs_rows: dyadic_sizes(8, window / 4).into_iter().map(row).collect(),
            vt_rows: dyadic_sizes(1, window / 8).into_iter().map(row).collect(),
            scratch: Vec::with_capacity(window / 4),
        }
    }

    /// Feeds one sample and refreshes the cached estimate if due.
    ///
    /// Never panics: estimator failures on degenerate windows keep the
    /// previous cached estimate (its staleness clock still running) and
    /// back off one cadence before retrying.
    pub fn push(&mut self, v: f64) {
        self.window.push(v);
        self.total += 1;
        self.since += 1;
        let due = self.cached.is_none() || self.since >= self.refresh_every;
        if self.window.is_full() && due && self.total >= self.skip_until {
            match self.try_refresh() {
                Ok(pair) => {
                    self.cached = Some(pair);
                    self.since = 0;
                }
                Err(_) => {
                    self.skip_until = self.total + self.refresh_every as u64;
                }
            }
        }
    }

    /// Recomputes both estimates over the (full) window, maintaining
    /// the per-size tile rows incrementally.
    fn try_refresh(&mut self) -> Result<HurstPair, EstimatorError> {
        // A constant window has no scaling behaviour to estimate; the
        // gate is O(W) and mirrors the batch variance-time precondition
        // (left-to-right two-pass, same op order as `variance`).
        let w = self.window.capacity();
        let mean = self.window.iter().sum::<f64>() / w as f64;
        let var = self.window.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / w as f64;
        if var <= 0.0 {
            return Err(EstimatorError::ZeroVariance {
                estimator: "variance-time",
            });
        }

        let start = self.total - w as u64;
        let advance = self.tiles_at.map(|prev| start - prev);
        let StreamingHurst {
            window,
            rs_rows,
            vt_rows,
            scratch,
            ..
        } = self;
        for row in rs_rows.iter_mut() {
            let score = |off: usize, n: usize| {
                scratch.clear();
                scratch.extend((off..off + n).map(|i| window.get(i)));
                rescaled_range(scratch)
            };
            retile(row, w, advance, score);
        }
        for row in vt_rows.iter_mut() {
            let score = |off: usize, n: usize| {
                Some((off..off + n).map(|i| window.get(i)).sum::<f64>() / n as f64)
            };
            retile(row, w, advance, score);
        }
        self.tiles_at = Some(start);

        let mut rs_points = Vec::with_capacity(self.rs_rows.len());
        for row in &self.rs_rows {
            let mut acc = 0.0;
            let mut blocks = 0usize;
            for &rs in row.blocks.iter().flatten() {
                acc += rs;
                blocks += 1;
            }
            if blocks > 0 {
                rs_points.push(((row.size as f64).ln(), (acc / blocks as f64).ln()));
            }
        }
        let rs = rs_fit_points(rs_points)?;

        let mut vt_points = Vec::with_capacity(self.vt_rows.len());
        for row in self.vt_rows.iter() {
            if row.blocks.len() < 2 {
                continue;
            }
            // The deque holds plain means; unwrap into the contiguous
            // scratch so `variance` sees the exact slice the batch path
            // aggregates.
            self.scratch.clear();
            self.scratch.extend(row.blocks.iter().map(|m| m.unwrap()));
            let v = variance(&self.scratch);
            if v > 0.0 {
                vt_points.push(((row.size as f64).ln(), v.ln()));
            }
        }
        let vt = vt_fit_points(vt_points)?;

        Ok(HurstPair { rs, vt })
    }

    /// The most recent estimate pair; `None` until the window first
    /// fills with non-degenerate data.
    pub fn current(&self) -> Option<&HurstPair> {
        self.cached.as_ref()
    }

    /// Pushes absorbed since the cached estimate was computed.
    pub fn staleness(&self) -> usize {
        self.since
    }

    /// The configured refresh cadence — the staleness bound.
    pub fn refresh_every(&self) -> usize {
        self.refresh_every
    }

    /// The underlying sample window.
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }
}

/// Brings one tile row up to date with a window that advanced by
/// `advance` pushes since the row was last built (`None` = never
/// built). If the advance is a whole number of this row's blocks, the
/// evicted blocks are popped and only the new tail blocks are scored;
/// otherwise the row is retiled from scratch. `score(off, n)` scores
/// the block at logical window offset `off`.
fn retile(
    row: &mut TileRow,
    window_len: usize,
    advance: Option<u64>,
    mut score: impl FnMut(usize, usize) -> Option<f64>,
) {
    let n = row.size;
    let total_blocks = window_len / n;
    match advance {
        Some(d) if d % n as u64 == 0 && (d / n as u64) as usize <= row.blocks.len() => {
            for _ in 0..(d / n as u64) as usize {
                row.blocks.pop_front();
            }
        }
        _ => row.blocks.clear(),
    }
    for k in row.blocks.len()..total_blocks {
        row.blocks.push_back(score(k * n, n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hurst::{try_rs_estimate_with_sizes, try_variance_time_estimate_with_sizes};

    #[test]
    fn window_evicts_oldest_first() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        for v in [1.0, 2.0] {
            w.push(v);
        }
        assert_eq!(w.snapshot(), vec![1.0, 2.0]);
        assert!(!w.is_full());
        for v in [3.0, 4.0, 5.0] {
            w.push(v);
        }
        assert!(w.is_full());
        assert_eq!(w.snapshot(), vec![3.0, 4.0, 5.0]);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![3.0, 4.0, 5.0]);
        assert_eq!(w.get(0), 3.0);
        assert_eq!(w.get(2), 5.0);
        assert!((w.mean() - 4.0).abs() < 1e-12);
    }

    /// The batch reference the streaming backend is pinned to.
    fn batch_pair(window: &[f64]) -> HurstPair {
        let w = window.len();
        HurstPair {
            rs: try_rs_estimate_with_sizes(window, &dyadic_sizes(8, w / 4)).unwrap(),
            vt: try_variance_time_estimate_with_sizes(window, &dyadic_sizes(1, w / 8)).unwrap(),
        }
    }

    #[test]
    fn streaming_equals_batch_on_the_same_window() {
        // Deterministic non-constant series: the streaming estimate
        // after the window fills must equal the batch dyadic-size
        // estimate of the identical snapshot bit for bit.
        let mut s = StreamingHurst::new(128, 1_000_000);
        let series: Vec<f64> = (0..128).map(|i| ((i * 37 + 11) % 97) as f64).collect();
        for &v in &series {
            s.push(v);
        }
        let pair = s.current().expect("full window yields an estimate");
        let want = batch_pair(&series);
        assert_eq!(pair.rs.h.to_bits(), want.rs.h.to_bits());
        assert_eq!(pair.vt.h.to_bits(), want.vt.h.to_bits());
    }

    #[test]
    fn aligned_and_unaligned_cadences_both_match_batch() {
        // Cadence 32 divides every dyadic block size (pure pop/append
        // path); 24 divides only the small ones (mixed); 17 divides
        // none (full retile path). All must reproduce the batch
        // estimate of the trailing window at every refresh.
        let series: Vec<f64> = (0..2048).map(|i| ((i * 193 + 71) % 509) as f64).collect();
        for cadence in [32usize, 24, 17] {
            let mut s = StreamingHurst::new(128, cadence);
            let mut last_seen = 0;
            for (i, &v) in series.iter().enumerate() {
                s.push(v);
                if s.staleness() == 0 && i + 1 >= 128 {
                    last_seen = i + 1;
                    let tail = &series[i + 1 - 128..=i];
                    let want = batch_pair(tail);
                    let got = s.current().unwrap();
                    assert_eq!(
                        got.rs.h.to_bits(),
                        want.rs.h.to_bits(),
                        "R/S split at push {} cadence {cadence}",
                        i + 1
                    );
                    assert_eq!(
                        got.vt.h.to_bits(),
                        want.vt.h.to_bits(),
                        "VT split at push {} cadence {cadence}",
                        i + 1
                    );
                }
            }
            assert!(last_seen > 1024, "refreshes kept happening");
        }
    }

    #[test]
    fn staleness_stays_below_the_cadence() {
        let mut s = StreamingHurst::new(64, 7);
        for i in 0..1000 {
            s.push(((i * 13 + 5) % 31) as f64);
            if s.current().is_some() {
                assert!(
                    s.staleness() < s.refresh_every(),
                    "staleness {} at push {i} breached cadence {}",
                    s.staleness(),
                    s.refresh_every()
                );
            }
        }
    }

    #[test]
    fn constant_stream_never_panics_and_yields_nothing() {
        let mut s = StreamingHurst::new(64, 4);
        for _ in 0..300 {
            s.push(2.5);
        }
        assert!(s.current().is_none());
        // Variability arriving later unlocks the estimate.
        for i in 0..64 {
            s.push((i % 9) as f64);
        }
        assert!(s.current().is_some());
    }

    #[test]
    fn every_block_constant_window_degrades_instead_of_panicking() {
        // Two constant half-windows: overall variance is positive but
        // every dyadic R/S block is constant, so the R/S regression has
        // zero points. The legacy backend panicked here; the estimator
        // must stay up with no estimate, then recover.
        let mut s = StreamingHurst::new(64, 4);
        for i in 0..64 {
            s.push(if i < 32 { 1.0 } else { 2.0 });
        }
        assert!(s.current().is_none(), "degenerate window produced an estimate");
        for i in 0..64 {
            s.push(((i * 13 + 5) % 31) as f64);
        }
        assert!(s.current().is_some(), "estimator did not recover");
    }

    #[test]
    fn failures_keep_the_stale_estimate_and_its_clock_running() {
        let mut s = StreamingHurst::new(64, 8);
        for i in 0..64 {
            s.push(((i * 13 + 5) % 31) as f64);
        }
        assert!(s.current().is_some());
        // Flood with a constant: once the window is fully constant,
        // every refresh attempt fails, the last good estimate survives,
        // and staleness keeps growing past the cadence (the daemon
        // reads this as "stale").
        for _ in 0..100 {
            s.push(2.5);
        }
        let frozen = s.current().expect("stale estimate retained").pooled();
        let stale = s.staleness();
        assert!(stale > s.refresh_every(), "staleness {stale} not past cadence");
        for _ in 0..50 {
            s.push(2.5);
        }
        assert_eq!(s.current().unwrap().pooled().to_bits(), frozen.to_bits());
        assert_eq!(s.staleness(), stale + 50);
    }
}
