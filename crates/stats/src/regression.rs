//! Ordinary least squares on `(x, y)` pairs.
//!
//! All four Hurst estimators reduce to fitting a slope on a log-log or
//! log-linear plot; this module is that shared fitting step.

/// Result of a simple linear regression `y ≈ intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
}

/// Fits `y = intercept + slope·x` by ordinary least squares.
///
/// # Panics
///
/// Panics if the slices differ in length, contain fewer than two
/// points, or if all `x` are identical.
pub fn linear_fit(x: &[f64], y: &[f64]) -> LinearFit {
    assert_eq!(x.len(), y.len(), "x and y must have equal length");
    assert!(x.len() >= 2, "need at least two points to fit a line");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    assert!(sxx > 0.0, "x values are all identical; slope undefined");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0]; // y = 1 + 2x
        let f = linear_fit(&x, &y);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_recovers_slope() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        // Deterministic "noise" with zero empirical trend.
        let y: Vec<f64> = x
            .iter()
            .map(|&xi| 5.0 - 0.5 * xi + 0.3 * (xi * 12.9898).sin())
            .collect();
        let f = linear_fit(&x, &y);
        assert!((f.slope + 0.5).abs() < 0.01, "slope {}", f.slope);
        assert!(f.r_squared > 0.99);
    }

    #[test]
    fn horizontal_line() {
        let x = [0.0, 1.0, 2.0];
        let y = [4.0, 4.0, 4.0];
        let f = linear_fit(&x, &y);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 4.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths() {
        linear_fit(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn vertical_line_rejected() {
        linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
    }
}
