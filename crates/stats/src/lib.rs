//! Statistics for traffic-trace analysis.
//!
//! The paper characterizes its two input traces (the "MTV" JPEG video
//! trace and the Bellcore Ethernet trace) by
//!
//! * their marginal rate distribution, extracted as a constant-bin-size
//!   **histogram** with 50 bins (Sec. III, Fig. 3),
//! * their **Hurst parameter**, estimated with "a Whittle or wavelet
//!   based estimator" (`H ≈ 0.83` for MTV, `H ≈ 0.9` for Bellcore),
//! * the **mean epoch duration** — the average number of consecutive
//!   samples falling in the same histogram bin — used to calibrate the
//!   truncated-Pareto scale parameter `θ` via Eq. 25.
//!
//! This crate provides all of those building blocks plus the generic
//! machinery they rest on: descriptive statistics, FFT-accelerated
//! autocovariance, ordinary least squares on log-log plots, and four
//! independent Hurst estimators (rescaled-range, variance–time,
//! log-periodogram/GPH, and Haar-wavelet energy slopes) that can be
//! cross-checked against each other.

#![warn(missing_docs)]

pub mod descriptive;
pub mod error;
pub mod histogram;
pub mod hurst;
pub mod onepass;
pub mod regression;
pub mod runs;
pub mod streaming;

pub use descriptive::{autocorrelation, autocovariance, mean, std_dev, variance, Summary};
pub use error::{EstimatorError, HistogramError};
pub use histogram::Histogram;
pub use hurst::{
    dyadic_sizes, gph_estimate, gph_std_error, haar_energies, rs_estimate, try_rs_estimate,
    try_rs_estimate_with_sizes, try_variance_time_estimate, try_variance_time_estimate_with_sizes,
    try_wavelet_estimate, variance_time_estimate, wavelet_estimate, whittle_estimate,
    whittle_std_error, HurstEstimate,
};
pub use onepass::{OnePassHurst, OnePassRs, OnePassVt, OnePassWavelet};
pub use regression::{linear_fit, LinearFit};
pub use runs::{mean_run_length, RunLengths};
pub use streaming::{HurstPair, SlidingWindow, StreamingHurst, MIN_HURST_WINDOW};
