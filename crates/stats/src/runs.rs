//! Run-length analysis of quantized series.
//!
//! The paper calibrates the truncated-Pareto scale `θ` by "first
//! comput[ing] the average number of consecutive samples in the trace
//! that fall within the same histogram bin" (Sec. III) — the **mean
//! epoch duration** — and then matching the model's mean interval
//! length (Eq. 25) to it.

/// Mean length (in samples) of maximal runs of equal consecutive values.
///
/// Returns `NaN` for an empty input; a single sample counts as one run
/// of length 1.
pub fn mean_run_length(labels: &[usize]) -> f64 {
    if labels.is_empty() {
        return f64::NAN;
    }
    let mut runs = 1u64;
    for w in labels.windows(2) {
        if w[0] != w[1] {
            runs += 1;
        }
    }
    labels.len() as f64 / runs as f64
}

/// One-pass counterpart of [`mean_run_length`]: O(1) state, so
/// out-of-core ingestion can measure epoch durations while streaming a
/// quantized series it never materializes.
#[derive(Debug, Clone, Default)]
pub struct RunLengths {
    samples: u64,
    runs: u64,
    prev: Option<usize>,
}

impl RunLengths {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunLengths::default()
    }

    /// Absorbs the next quantized sample.
    pub fn push(&mut self, label: usize) {
        if self.prev != Some(label) {
            self.runs += 1;
        }
        self.prev = Some(label);
        self.samples += 1;
    }

    /// Samples absorbed so far.
    pub fn count(&self) -> u64 {
        self.samples
    }

    /// Mean run length so far; `NaN` before the first sample —
    /// identical to [`mean_run_length`] over the same sequence.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            return f64::NAN;
        }
        self.samples as f64 / self.runs as f64
    }
}

/// The lengths of every maximal run, in order of appearance.
pub fn run_lengths(labels: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut iter = labels.iter();
    let Some(&first) = iter.next() else {
        return out;
    };
    let mut current = first;
    let mut len = 1usize;
    for &l in iter {
        if l == current {
            len += 1;
        } else {
            out.push(len);
            current = l;
            len = 1;
        }
    }
    out.push(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_distinct() {
        assert_eq!(mean_run_length(&[1, 2, 3, 4]), 1.0);
        assert_eq!(run_lengths(&[1, 2, 3, 4]), vec![1, 1, 1, 1]);
    }

    #[test]
    fn all_equal() {
        assert_eq!(mean_run_length(&[7, 7, 7, 7, 7]), 5.0);
        assert_eq!(run_lengths(&[7, 7, 7]), vec![3]);
    }

    #[test]
    fn mixed_runs() {
        // runs: [0,0] [1] [1]? no: [0,0],[1,1,1],[0]  -> lengths 2,3,1
        let labels = [0, 0, 1, 1, 1, 0];
        assert_eq!(run_lengths(&labels), vec![2, 3, 1]);
        assert!((mean_run_length(&labels) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        assert!(mean_run_length(&[]).is_nan());
        assert!(run_lengths(&[]).is_empty());
    }

    #[test]
    fn online_accumulator_matches_the_batch_function() {
        let labels: Vec<usize> = (0..1000).map(|i| (i * i / 13) % 7).collect();
        let mut online = RunLengths::new();
        for &l in &labels {
            online.push(l);
        }
        assert_eq!(online.count(), labels.len() as u64);
        assert_eq!(online.mean().to_bits(), mean_run_length(&labels).to_bits());
        assert!(RunLengths::new().mean().is_nan());
    }

    #[test]
    fn run_lengths_sum_to_total() {
        let labels: Vec<usize> = (0..1000).map(|i| (i / 7) % 5).collect();
        let lens = run_lengths(&labels);
        assert_eq!(lens.iter().sum::<usize>(), labels.len());
    }
}
