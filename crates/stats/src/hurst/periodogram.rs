//! Geweke–Porter-Hudak (GPH) log-periodogram estimator.
//!
//! For a long-memory process with memory parameter `d = H - 1/2`, the
//! spectral density behaves as `f(ω) ~ c ω^{-2d}` near the origin.
//! Regressing `ln I(ω_j)` on `ln(4 sin²(ω_j/2))` over the lowest `m`
//! Fourier frequencies gives a slope of `-d`. This is the practical
//! frequency-domain estimator closest to the Whittle estimator the
//! paper cites for its trace analysis.

use super::HurstEstimate;
use crate::regression::linear_fit;
use lrd_fft::{Complex, Fft, next_pow2};

/// Periodogram `I(ω_j) = |Σ_t x_t e^{-iω_j t}|² / (2π n)` at the Fourier
/// frequencies `ω_j = 2π j / N`, `j = 1 .. N/2`, where `N` is `x.len()`
/// zero-padded to a power of two. The series is mean-centered first.
pub fn periodogram(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    assert!(n >= 2, "periodogram needs at least 2 samples");
    let m = x.iter().sum::<f64>() / n as f64;
    let size = next_pow2(n);
    let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::new(v - m, 0.0)).collect();
    buf.resize(size, Complex::ZERO);
    Fft::new(size).forward(&mut buf);
    let norm = 2.0 * std::f64::consts::PI * n as f64;
    (1..=size / 2).map(|j| buf[j].norm_sqr() / norm).collect()
}

/// GPH estimate of the Hurst parameter using the lowest
/// `⌊n^bandwidth_exp⌋` Fourier frequencies (the classical choice is
/// `bandwidth_exp = 0.5`).
///
/// # Panics
///
/// Panics if the series is shorter than 128 samples or the bandwidth
/// exponent is outside `(0, 1)`.
pub fn gph_estimate_with_bandwidth(x: &[f64], bandwidth_exp: f64) -> HurstEstimate {
    assert!(x.len() >= 128, "GPH needs at least 128 samples");
    assert!(
        bandwidth_exp > 0.0 && bandwidth_exp < 1.0,
        "bandwidth exponent must be in (0, 1)"
    );
    let pgram = periodogram(x);
    let size = next_pow2(x.len());
    let m = ((x.len() as f64).powf(bandwidth_exp) as usize)
        .clamp(8, pgram.len());
    let mut points = Vec::with_capacity(m);
    for j in 1..=m {
        let omega = 2.0 * std::f64::consts::PI * j as f64 / size as f64;
        let i_j = pgram[j - 1];
        if i_j > 0.0 {
            let reg = (4.0 * (omega / 2.0).sin().powi(2)).ln();
            points.push((reg, i_j.ln()));
        }
    }
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let fit = linear_fit(&xs, &ys);
    // slope = -d, H = d + 1/2.
    HurstEstimate {
        h: 0.5 - fit.slope,
        fit,
        points,
    }
}

/// GPH estimate with the classical `m = ⌊√n⌋` bandwidth.
pub fn gph_estimate(x: &[f64]) -> HurstEstimate {
    gph_estimate_with_bandwidth(x, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodogram_parseval_like() {
        // Sum of periodogram ordinates relates to the variance:
        // Σ_j I(ω_j) ≈ n·var/(2π·2) over half the spectrum (within
        // zero-padding distortion). We only check it is positive and
        // finite here; the GPH tests exercise the shape.
        let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.3).sin()).collect();
        let p = periodogram(&x);
        assert!(p.iter().all(|&v| v.is_finite() && v >= 0.0));
        // A pure sinusoid concentrates energy near its frequency.
        let peak = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        // ω = 0.3 rad/sample => j ≈ 0.3·256/(2π) ≈ 12 (zero-padded: same
        // fraction of the padded size).
        let expect = (0.3 * 256.0 / (2.0 * std::f64::consts::PI)).round() as usize;
        assert!(
            (peak + 1).abs_diff(expect) <= 2,
            "peak at j={} expected near {}",
            peak + 1,
            expect
        );
    }

    #[test]
    fn iid_like_series_near_half() {
        use lrd_rng::{Rng, SeedableRng};
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(42);
        let x: Vec<f64> = (0..32_768).map(|_| rng.gen::<f64>() - 0.5).collect();
        let e = gph_estimate(&x);
        assert!(
            (e.h - 0.5).abs() < 0.2,
            "expected H near 0.5 for iid-like input, got {}",
            e.h
        );
    }

    #[test]
    #[should_panic(expected = "128 samples")]
    fn short_series_rejected() {
        gph_estimate(&[0.0; 16]);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn bad_bandwidth_rejected() {
        gph_estimate_with_bandwidth(&vec![0.0; 256], 1.5);
    }
}
