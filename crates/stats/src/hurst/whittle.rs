//! Local Whittle (Gaussian semiparametric) estimator — the estimator
//! the paper names first for its trace analysis ("Using a Whittle or
//! wavelet based estimator [1], we obtained H_MTV ≈ 0.83 ...").
//!
//! For a long-memory process with spectral density `f(ω) ~ G ω^{-2d}`
//! near zero, Robinson's local Whittle estimator minimizes
//!
//! ```text
//! R(d) = ln( (1/m) Σ_j ω_j^{2d} I(ω_j) ) − (2d/m) Σ_j ln ω_j
//! ```
//!
//! over the lowest `m` Fourier frequencies. It is consistent and
//! asymptotically normal for `d ∈ (−1/2, 1/2)` with variance `1/(4m)`
//! — more efficient than the GPH log-periodogram regression. As
//! everywhere in this crate, `H = d + 1/2`.

use super::periodogram::periodogram;
use super::HurstEstimate;
use crate::regression::LinearFit;
use lrd_fft::next_pow2;

/// Local Whittle estimate with bandwidth `m = ⌊n^0.65⌋` (a standard
/// compromise between bias and variance).
pub fn whittle_estimate(x: &[f64]) -> HurstEstimate {
    whittle_estimate_with_bandwidth(x, 0.65)
}

/// Local Whittle estimate using the lowest `⌊n^bandwidth_exp⌋` Fourier
/// frequencies.
///
/// # Panics
///
/// Panics if the series is shorter than 128 samples or the bandwidth
/// exponent is outside `(0, 1)`.
pub fn whittle_estimate_with_bandwidth(x: &[f64], bandwidth_exp: f64) -> HurstEstimate {
    assert!(x.len() >= 128, "local Whittle needs at least 128 samples");
    assert!(
        bandwidth_exp > 0.0 && bandwidth_exp < 1.0,
        "bandwidth exponent must be in (0, 1)"
    );
    let pgram = periodogram(x);
    let size = next_pow2(x.len());
    let m = ((x.len() as f64).powf(bandwidth_exp) as usize).clamp(8, pgram.len());

    let omegas: Vec<f64> = (1..=m)
        .map(|j| 2.0 * std::f64::consts::PI * j as f64 / size as f64)
        .collect();
    let intensities: Vec<f64> = pgram[..m].to_vec();
    let mean_log_omega = omegas.iter().map(|w| w.ln()).sum::<f64>() / m as f64;

    let objective = |d: f64| -> f64 {
        let g: f64 = omegas
            .iter()
            .zip(&intensities)
            .map(|(&w, &i)| w.powf(2.0 * d) * i)
            .sum::<f64>()
            / m as f64;
        g.max(1e-300).ln() - 2.0 * d * mean_log_omega
    };

    // Golden-section search over d ∈ (−0.49, 0.99); R is unimodal in
    // practice on this range.
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (-0.49f64, 0.99f64);
    let mut c1 = b - phi * (b - a);
    let mut c2 = a + phi * (b - a);
    let mut f1 = objective(c1);
    let mut f2 = objective(c2);
    for _ in 0..80 {
        if f1 < f2 {
            b = c2;
            c2 = c1;
            f2 = f1;
            c1 = b - phi * (b - a);
            f1 = objective(c1);
        } else {
            a = c1;
            c1 = c2;
            f1 = f2;
            c2 = a + phi * (b - a);
            f2 = objective(c2);
        }
        if (b - a).abs() < 1e-10 {
            break;
        }
    }
    let d = 0.5 * (a + b);

    // Diagnostics: report the implied log-log points and a pseudo-fit
    // (slope −2d through the periodogram), mirroring the other
    // estimators' interface.
    let points: Vec<(f64, f64)> = omegas
        .iter()
        .zip(&intensities)
        .filter(|(_, &i)| i > 0.0)
        .map(|(&w, &i)| (w.ln(), i.ln()))
        .collect();
    let fit = LinearFit {
        slope: -2.0 * d,
        intercept: objective(d),
        r_squared: f64::NAN,
    };
    HurstEstimate {
        h: d + 0.5,
        fit,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_rng::{Rng, SeedableRng};

    #[test]
    fn white_noise_reads_half() {
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(71);
        let x: Vec<f64> = (0..32_768).map(|_| rng.gen::<f64>() - 0.5).collect();
        let e = whittle_estimate(&x);
        assert!((e.h - 0.5).abs() < 0.08, "whittle H {} for white noise", e.h);
    }

    #[test]
    fn ar1_is_not_mistaken_for_strong_lrd() {
        // An AR(1) with moderate coefficient has only short memory; the
        // local Whittle estimate should stay well below 0.9.
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(72);
        let mut x = Vec::with_capacity(32_768);
        let mut prev = 0.0;
        for _ in 0..32_768 {
            prev = 0.5 * prev + rng.gen::<f64>() - 0.5;
            x.push(prev);
        }
        let e = whittle_estimate(&x);
        assert!(e.h < 0.85, "AR(1) misread as strong LRD: H = {}", e.h);
    }

    #[test]
    #[should_panic(expected = "128 samples")]
    fn short_series_rejected() {
        whittle_estimate(&[0.0; 32]);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn bad_bandwidth_rejected() {
        whittle_estimate_with_bandwidth(&vec![0.0; 256], 0.0);
    }
}
