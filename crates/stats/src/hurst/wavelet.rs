//! Haar-wavelet energy-slope estimator (Abry–Veitch style).
//!
//! The discrete Haar wavelet transform produces detail coefficients
//! `d_{j,k}` at octave `j`. For fractional Gaussian noise with Hurst
//! parameter `H`, the per-octave energy `μ_j = E[d_{j,k}²]` scales as
//! `μ_j ~ c · 2^{j(2H-1)}`, so the slope `γ` of `log₂ μ_j` against `j`
//! gives `H = (γ + 1) / 2`. This is the wavelet estimator the paper
//! cites (Abry & Veitch, ref. [1]) restricted to the Haar wavelet,
//! which is exact enough for cross-checking synthetic traces.

use super::HurstEstimate;
use crate::error::EstimatorError;
use crate::regression::linear_fit;

const ESTIMATOR: &str = "wavelet estimator";

/// Per-octave Haar detail energies `μ_j` for `j = 1..=octaves`,
/// starting from the finest scale.
///
/// The input is truncated to the largest usable power-of-two prefix of
/// each level; levels with fewer than `min_coeffs` detail coefficients
/// are dropped.
pub fn haar_energies(x: &[f64], max_octaves: usize, min_coeffs: usize) -> Vec<(usize, f64)> {
    let mut approx: Vec<f64> = x.to_vec();
    let mut out = Vec::new();
    let sqrt2 = std::f64::consts::SQRT_2;
    for j in 1..=max_octaves {
        if approx.len() < 2 * min_coeffs.max(1) {
            break;
        }
        let pairs = approx.len() / 2;
        let mut next = Vec::with_capacity(pairs);
        let mut energy = 0.0;
        for k in 0..pairs {
            let a = approx[2 * k];
            let b = approx[2 * k + 1];
            next.push((a + b) / sqrt2);
            let d = (a - b) / sqrt2;
            energy += d * d;
        }
        out.push((j, energy / pairs as f64));
        approx = next;
    }
    out
}

/// Estimates the Hurst parameter from the Haar wavelet energy slope.
///
/// # Panics
///
/// Panics on any [`EstimatorError`]; see [`try_wavelet_estimate`] for
/// the fallible form.
pub fn wavelet_estimate(x: &[f64]) -> HurstEstimate {
    try_wavelet_estimate(x).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`wavelet_estimate`]: rejects series shorter than 128
/// samples, pyramids with fewer than three usable octaves, and inputs
/// where fewer than two octaves retain positive detail energy (a
/// constant series has zero energy at every octave).
pub fn try_wavelet_estimate(x: &[f64]) -> Result<HurstEstimate, EstimatorError> {
    if x.len() < 128 {
        return Err(EstimatorError::TooFewSamples {
            estimator: ESTIMATOR,
            needed: 128,
            got: x.len(),
        });
    }
    try_wavelet_estimate_from_energies(&haar_energies(x, 24, 8))
}

/// The regression stage of [`try_wavelet_estimate`], taking precomputed
/// per-octave energies. Exposed so the one-pass streaming pyramid can
/// go through the identical final fit.
pub(crate) fn try_wavelet_estimate_from_energies(
    energies: &[(usize, f64)],
) -> Result<HurstEstimate, EstimatorError> {
    if energies.len() < 3 {
        return Err(EstimatorError::TooFewOctaves {
            estimator: ESTIMATOR,
            needed: 3,
            got: energies.len(),
        });
    }
    let points: Vec<(f64, f64)> = energies
        .iter()
        .filter(|(_, e)| *e > 0.0)
        .map(|&(j, e)| (j as f64, e.log2()))
        .collect();
    if points.len() < 2 {
        return Err(EstimatorError::TooFewPoints {
            estimator: ESTIMATOR,
            got: points.len(),
        });
    }
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let fit = linear_fit(&xs, &ys);
    Ok(HurstEstimate {
        h: (fit.slope + 1.0) / 2.0,
        fit,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haar_preserves_energy() {
        // One level of Haar transform is orthonormal: detail + approx
        // energy equals input energy.
        let x = [3.0, 1.0, -2.0, 4.0];
        let sqrt2 = std::f64::consts::SQRT_2;
        let a = [(3.0 + 1.0) / sqrt2, (-2.0 + 4.0) / sqrt2];
        let d = [(3.0f64 - 1.0) / sqrt2, (-2.0f64 - 4.0) / sqrt2];
        let input_energy: f64 = x.iter().map(|v| v * v).sum();
        let out_energy: f64 =
            a.iter().map(|v| v * v).sum::<f64>() + d.iter().map(|v| v * v).sum::<f64>();
        assert!((input_energy - out_energy).abs() < 1e-12);
        // And our function reports mean detail energy at level 1:
        let e = haar_energies(&x, 1, 1);
        let want = d.iter().map(|v| v * v).sum::<f64>() / 2.0;
        assert!((e[0].1 - want).abs() < 1e-12);
    }

    #[test]
    fn octave_count_shrinks() {
        let x = vec![1.0; 1024];
        let e = haar_energies(&x, 24, 1);
        // Level j has 1024/2^j detail coefficients; with min_coeffs=1 we
        // iterate while the approximation still has >= 2 samples, giving
        // 10 usable octaves for a length-1024 input.
        assert_eq!(e.len(), 10);
    }

    #[test]
    fn iid_like_series_near_half() {
        use lrd_rng::{Rng, SeedableRng};
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(42);
        let x: Vec<f64> = (0..65_536).map(|_| rng.gen::<f64>() - 0.5).collect();
        let e = wavelet_estimate(&x);
        assert!(
            (e.h - 0.5).abs() < 0.2,
            "expected H near 0.5 for iid-like input, got {}",
            e.h
        );
    }

    #[test]
    #[should_panic(expected = "128 samples")]
    fn short_series_rejected() {
        wavelet_estimate(&[0.0; 64]);
    }

    #[test]
    fn constant_series_is_a_typed_error_not_a_panic() {
        // Zero detail energy at every octave: three octaves are usable
        // but no point survives the e > 0 filter; the legacy path
        // panicked inside `linear_fit`.
        match try_wavelet_estimate(&[1.0; 1024]) {
            Err(EstimatorError::TooFewPoints { got: 0, .. }) => {}
            other => panic!("expected TooFewPoints, got {other:?}"),
        }
        assert!(matches!(
            try_wavelet_estimate(&[0.0; 64]),
            Err(EstimatorError::TooFewSamples { needed: 128, .. })
        ));
    }
}
