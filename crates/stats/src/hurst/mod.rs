//! Hurst-parameter estimators.
//!
//! The paper reports `H ≈ 0.83` for the MTV trace and `H ≈ 0.9` for
//! the Bellcore trace, obtained with "a Whittle or wavelet based
//! estimator" (Sec. III, citing Abry & Veitch). Four independent
//! estimators are provided so results can be cross-checked, which is
//! standard practice in the LRD literature — individual estimators are
//! biased in different ways:
//!
//! * [`rs_estimate`] — Hurst's classical rescaled-range (R/S) analysis,
//! * [`variance_time_estimate`] — slope of the aggregated-series
//!   variance on a log-log ("variance–time") plot,
//! * [`gph_estimate`] — Geweke–Porter-Hudak log-periodogram regression
//!   (the practical frequency-domain cousin of Whittle estimation),
//! * [`wavelet_estimate`] — Haar-wavelet energy-slope estimator in the
//!   spirit of Abry–Veitch,
//! * [`whittle_estimate`] — Robinson's local Whittle (Gaussian
//!   semiparametric) estimator, the "Whittle" of the paper's quote.
//!
//! Each returns a [`HurstEstimate`] carrying the point estimate, the
//! regression behind it, and the `(x, y)` points of the diagnostic plot
//! so callers can render the classical figures.

mod periodogram;
mod rs;
mod whittle;
mod vt;
mod wavelet;

pub(crate) use rs::{fit_points as rs_fit_points, rescaled_range};
pub(crate) use vt::fit_points as vt_fit_points;
pub(crate) use wavelet::try_wavelet_estimate_from_energies;

pub use periodogram::gph_estimate;
pub use rs::{rs_estimate, try_rs_estimate, try_rs_estimate_with_sizes};
pub use vt::{
    aggregate, try_variance_time_estimate, try_variance_time_estimate_with_sizes,
    variance_time_estimate,
};
pub use wavelet::{haar_energies, try_wavelet_estimate, wavelet_estimate};
pub use whittle::{whittle_estimate, whittle_estimate_with_bandwidth};

use crate::regression::LinearFit;

/// A Hurst-parameter estimate together with its diagnostic regression.
#[derive(Debug, Clone)]
pub struct HurstEstimate {
    /// The estimated Hurst parameter.
    pub h: f64,
    /// The underlying least-squares fit.
    pub fit: LinearFit,
    /// The `(x, y)` points the fit was computed from (already in the
    /// transformed, usually logarithmic, coordinates).
    pub points: Vec<(f64, f64)>,
}

impl HurstEstimate {
    /// Clamps the estimate into the physically meaningful open interval
    /// `(0, 1)`; estimators can stray outside it on short or
    /// pathological inputs.
    pub fn clamped(&self) -> f64 {
        self.h.clamp(0.01, 0.99)
    }
}

/// Asymptotic standard error of the GPH log-periodogram estimator with
/// bandwidth `m`: `π / (√24 · √m)` (Geweke & Porter-Hudak, 1983).
pub fn gph_std_error(bandwidth: usize) -> f64 {
    assert!(bandwidth > 0, "bandwidth must be positive");
    std::f64::consts::PI / (24.0f64.sqrt() * (bandwidth as f64).sqrt())
}

/// Asymptotic standard error of the local Whittle estimator with
/// bandwidth `m`: `1 / (2√m)` (Robinson, 1995).
pub fn whittle_std_error(bandwidth: usize) -> f64 {
    assert!(bandwidth > 0, "bandwidth must be positive");
    0.5 / (bandwidth as f64).sqrt()
}

/// Powers of two in `[lo, hi]`, ascending. Both bounds should
/// themselves be powers of two; `lo` is rounded up and `hi` down to
/// the nearest power otherwise.
///
/// The streaming and one-pass estimators regress over dyadic scales:
/// dyadic blocks nest (every size-`2n` block is two size-`n` blocks),
/// which is what lets a hierarchical aggregator maintain every scale
/// in one pass, and lets the sliding-window backend reuse block state
/// across refreshes. The batch `*_with_sizes` estimators accept these
/// sizes directly, so the two paths stay bit-comparable.
pub fn dyadic_sizes(lo: usize, hi: usize) -> Vec<usize> {
    assert!(lo >= 1 && hi >= lo, "need 1 <= lo <= hi");
    let mut n = lo.next_power_of_two();
    let mut out = Vec::new();
    while n <= hi {
        out.push(n);
        n *= 2;
    }
    out
}

/// Logarithmically spaced block sizes in `[lo, hi]`, deduplicated.
pub(crate) fn log_spaced_sizes(lo: usize, hi: usize, count: usize) -> Vec<usize> {
    assert!(lo >= 1 && hi >= lo && count >= 2);
    let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
    let mut out: Vec<usize> = (0..count)
        .map(|i| {
            let t = i as f64 / (count - 1) as f64;
            (llo + t * (lhi - llo)).exp().round() as usize
        })
        .collect();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyadic_sizes_are_powers_of_two() {
        assert_eq!(dyadic_sizes(8, 64), vec![8, 16, 32, 64]);
        assert_eq!(dyadic_sizes(1, 4), vec![1, 2, 4]);
        // Non-power bounds round inward.
        assert_eq!(dyadic_sizes(5, 40), vec![8, 16, 32]);
        assert!(dyadic_sizes(9, 15).is_empty());
    }

    #[test]
    fn log_spacing_covers_range() {
        let s = log_spaced_sizes(10, 1000, 10);
        assert_eq!(*s.first().unwrap(), 10);
        assert_eq!(*s.last().unwrap(), 1000);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn standard_errors_shrink_with_bandwidth() {
        assert!(gph_std_error(400) < gph_std_error(100));
        assert!((gph_std_error(100) - std::f64::consts::PI / (24.0f64.sqrt() * 10.0)).abs() < 1e-12);
        assert!((whittle_std_error(100) - 0.05).abs() < 1e-12);
        // Whittle is asymptotically more efficient than GPH at equal
        // bandwidth.
        assert!(whittle_std_error(256) < gph_std_error(256));
    }

    #[test]
    fn clamping() {
        let e = HurstEstimate {
            h: 1.3,
            fit: crate::regression::linear_fit(&[0.0, 1.0], &[0.0, 1.0]),
            points: vec![],
        };
        assert_eq!(e.clamped(), 0.99);
    }
}
