//! Variance–time estimator.
//!
//! For an exactly or asymptotically second-order self-similar process,
//! the variance of the aggregated series
//! `X^{(m)}_k = (X_{km+1} + … + X_{(k+1)m}) / m`
//! decays as `Var[X^{(m)}] ~ σ² m^{2H-2}` (Leland et al., the paper's
//! ref. [23]). The slope `β` of the variance–time log-log plot
//! therefore gives `H = 1 + β/2`.

use super::{log_spaced_sizes, HurstEstimate};
use crate::descriptive::variance;
use crate::regression::linear_fit;

/// Estimates the Hurst parameter from the variance of aggregated
/// series at log-spaced aggregation levels.
///
/// # Panics
///
/// Panics if the series has fewer than 64 samples or zero variance.
pub fn variance_time_estimate(x: &[f64]) -> HurstEstimate {
    assert!(x.len() >= 64, "variance-time needs at least 64 samples");
    assert!(
        variance(x) > 0.0,
        "variance-time is undefined for a constant series"
    );
    // Keep at least ~8 aggregated points per level so the variance
    // estimate is meaningful.
    let sizes = log_spaced_sizes(1, x.len() / 8, 16);
    let mut points = Vec::with_capacity(sizes.len());
    for &m in &sizes {
        let agg = aggregate(x, m);
        if agg.len() < 2 {
            continue;
        }
        let v = variance(&agg);
        if v > 0.0 {
            points.push(((m as f64).ln(), v.ln()));
        }
    }
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let fit = linear_fit(&xs, &ys);
    HurstEstimate {
        h: 1.0 + fit.slope / 2.0,
        fit,
        points,
    }
}

/// Non-overlapping block means at aggregation level `m`.
pub fn aggregate(x: &[f64], m: usize) -> Vec<f64> {
    assert!(m >= 1);
    x.chunks_exact(m)
        .map(|c| c.iter().sum::<f64>() / m as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_means() {
        let x = [1.0, 3.0, 5.0, 7.0, 9.0];
        assert_eq!(aggregate(&x, 2), vec![2.0, 6.0]);
        assert_eq!(aggregate(&x, 1), x.to_vec());
        assert_eq!(aggregate(&x, 5), vec![5.0]);
    }

    #[test]
    fn iid_like_series_near_half() {
        use lrd_rng::{Rng, SeedableRng};
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(42);
        let x: Vec<f64> = (0..65_536).map(|_| rng.gen::<f64>() - 0.5).collect();
        let e = variance_time_estimate(&x);
        assert!(
            (e.h - 0.5).abs() < 0.1,
            "expected H near 0.5 for iid-like input, got {}",
            e.h
        );
    }

    #[test]
    fn strong_positive_dependence_raises_h() {
        // A slowly varying series (random walk increments smoothed) has
        // aggregated variance decaying slower than 1/m => H > 0.5.
        let mut x = Vec::with_capacity(32_768);
        let mut level = 0.0;
        for i in 0..32_768 {
            // Long deterministic cycles emulate slowly-decaying
            // correlations.
            level = 0.999 * level + ((i as f64 * 0.618_033_988_75) % 1.0 - 0.5);
            x.push(level);
        }
        let e = variance_time_estimate(&x);
        assert!(e.h > 0.7, "expected high H for smooth series, got {}", e.h);
    }

    #[test]
    #[should_panic(expected = "constant series")]
    fn constant_rejected() {
        variance_time_estimate(&[1.0; 128]);
    }
}
