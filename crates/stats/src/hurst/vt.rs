//! Variance–time estimator.
//!
//! For an exactly or asymptotically second-order self-similar process,
//! the variance of the aggregated series
//! `X^{(m)}_k = (X_{km+1} + … + X_{(k+1)m}) / m`
//! decays as `Var[X^{(m)}] ~ σ² m^{2H-2}` (Leland et al., the paper's
//! ref. [23]). The slope `β` of the variance–time log-log plot
//! therefore gives `H = 1 + β/2`.

use super::{log_spaced_sizes, HurstEstimate};
use crate::descriptive::variance;
use crate::error::EstimatorError;
use crate::regression::linear_fit;

const ESTIMATOR: &str = "variance-time";

/// Estimates the Hurst parameter from the variance of aggregated
/// series at log-spaced aggregation levels.
///
/// # Panics
///
/// Panics on any [`EstimatorError`]; see [`try_variance_time_estimate`]
/// for the fallible form.
pub fn variance_time_estimate(x: &[f64]) -> HurstEstimate {
    try_variance_time_estimate(x).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`variance_time_estimate`]: rejects series shorter than 64
/// samples, constant series, and windows where fewer than two
/// aggregation levels retain positive variance — reachable even when
/// the overall variance is positive (e.g. a prime-length window whose
/// only deviant sample is truncated away at every level `m ≥ 2`).
pub fn try_variance_time_estimate(x: &[f64]) -> Result<HurstEstimate, EstimatorError> {
    if x.len() < 64 {
        return Err(EstimatorError::TooFewSamples {
            estimator: ESTIMATOR,
            needed: 64,
            got: x.len(),
        });
    }
    if variance(x) <= 0.0 {
        return Err(EstimatorError::ZeroVariance { estimator: ESTIMATOR });
    }
    // Keep at least ~8 aggregated points per level so the variance
    // estimate is meaningful.
    try_variance_time_estimate_with_sizes(x, &log_spaced_sizes(1, x.len() / 8, 16))
}

/// [`try_variance_time_estimate`] over caller-chosen aggregation levels
/// (strictly increasing, each ≥ 1). The streaming backend uses this
/// with dyadic levels so its hierarchical block aggregators can be
/// pinned bit-equal to the batch path; levels leaving fewer than two
/// aggregated blocks drop out, exactly as in the log-spaced path.
pub fn try_variance_time_estimate_with_sizes(
    x: &[f64],
    sizes: &[usize],
) -> Result<HurstEstimate, EstimatorError> {
    if sizes.is_empty() {
        return Err(EstimatorError::NoUsableScales { estimator: ESTIMATOR });
    }
    let mut points = Vec::with_capacity(sizes.len());
    for &m in sizes {
        let agg = aggregate(x, m);
        if agg.len() < 2 {
            continue;
        }
        let v = variance(&agg);
        if v > 0.0 {
            points.push(((m as f64).ln(), v.ln()));
        }
    }
    fit_points(points)
}

/// Regresses pre-accumulated `(ln m, ln Var[X^{(m)}])` points. Exposed
/// to the streaming backend so its incrementally maintained per-level
/// variances go through the identical final fit.
pub(crate) fn fit_points(points: Vec<(f64, f64)>) -> Result<HurstEstimate, EstimatorError> {
    if points.len() < 2 {
        return Err(EstimatorError::TooFewPoints {
            estimator: ESTIMATOR,
            got: points.len(),
        });
    }
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let fit = linear_fit(&xs, &ys);
    Ok(HurstEstimate {
        h: 1.0 + fit.slope / 2.0,
        fit,
        points,
    })
}

/// Non-overlapping block means at aggregation level `m`.
pub fn aggregate(x: &[f64], m: usize) -> Vec<f64> {
    assert!(m >= 1);
    x.chunks_exact(m)
        .map(|c| c.iter().sum::<f64>() / m as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_means() {
        let x = [1.0, 3.0, 5.0, 7.0, 9.0];
        assert_eq!(aggregate(&x, 2), vec![2.0, 6.0]);
        assert_eq!(aggregate(&x, 1), x.to_vec());
        assert_eq!(aggregate(&x, 5), vec![5.0]);
    }

    #[test]
    fn iid_like_series_near_half() {
        use lrd_rng::{Rng, SeedableRng};
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(42);
        let x: Vec<f64> = (0..65_536).map(|_| rng.gen::<f64>() - 0.5).collect();
        let e = variance_time_estimate(&x);
        assert!(
            (e.h - 0.5).abs() < 0.1,
            "expected H near 0.5 for iid-like input, got {}",
            e.h
        );
    }

    #[test]
    fn strong_positive_dependence_raises_h() {
        // A slowly varying series (random walk increments smoothed) has
        // aggregated variance decaying slower than 1/m => H > 0.5.
        let mut x = Vec::with_capacity(32_768);
        let mut level = 0.0;
        for i in 0..32_768 {
            // Long deterministic cycles emulate slowly-decaying
            // correlations.
            level = 0.999 * level + ((i as f64 * 0.618_033_988_75) % 1.0 - 0.5);
            x.push(level);
        }
        let e = variance_time_estimate(&x);
        assert!(e.h > 0.7, "expected high H for smooth series, got {}", e.h);
    }

    #[test]
    #[should_panic(expected = "constant series")]
    fn constant_rejected() {
        variance_time_estimate(&[1.0; 128]);
    }

    #[test]
    fn with_sizes_default_spacing_matches_the_legacy_path() {
        use lrd_rng::{Rng, SeedableRng};
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(11);
        let x: Vec<f64> = (0..4096).map(|_| rng.gen::<f64>()).collect();
        let sizes = log_spaced_sizes(1, x.len() / 8, 16);
        let a = variance_time_estimate(&x);
        let b = try_variance_time_estimate_with_sizes(&x, &sizes).unwrap();
        assert_eq!(a.h.to_bits(), b.h.to_bits());
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn positive_variance_with_one_surviving_level_is_a_typed_error() {
        // A 127-sample (prime length) window whose only deviant value
        // sits at the last index: every level m ≥ 2 truncates it away,
        // leaving constant aggregates with zero variance, so only the
        // m = 1 point survives. The legacy path panicked inside
        // `linear_fit` despite variance(x) > 0.
        let mut w = vec![1.0; 126];
        w.push(2.0);
        assert!(variance(&w) > 0.0);
        match try_variance_time_estimate(&w) {
            Err(EstimatorError::TooFewPoints { got: 1, .. }) => {}
            other => panic!("expected TooFewPoints, got {other:?}"),
        }
    }

    #[test]
    fn typed_errors_cover_the_cheap_preconditions() {
        assert!(matches!(
            try_variance_time_estimate(&[1.0; 10]),
            Err(EstimatorError::TooFewSamples { needed: 64, got: 10, .. })
        ));
        assert!(matches!(
            try_variance_time_estimate(&[1.0; 128]),
            Err(EstimatorError::ZeroVariance { .. })
        ));
        assert!(matches!(
            try_variance_time_estimate_with_sizes(&[1.0; 128], &[]),
            Err(EstimatorError::NoUsableScales { .. })
        ));
    }
}
