//! Rescaled-range (R/S) analysis, the original Hurst estimator from
//! hydrology (Hurst 1950, cited as [19] in the paper).
//!
//! For a block `x_1..x_n`, let `y_k` be the cumulative deviations from
//! the block mean. The rescaled range is
//! `R/S = (max_k y_k − min_k y_k) / s` where `s` is the block standard
//! deviation. For an LRD process, `E[R/S] ~ c·n^H`, so the slope of
//! `log(R/S)` against `log n` estimates `H`.

use super::{log_spaced_sizes, HurstEstimate};
use crate::descriptive::{mean, std_dev};
use crate::error::EstimatorError;
use crate::regression::linear_fit;

const ESTIMATOR: &str = "R/S analysis";

/// Estimates the Hurst parameter of `x` by R/S analysis.
///
/// Block sizes are log-spaced between 8 and `n / 4`; each block size
/// averages the R/S statistic over all non-overlapping blocks.
///
/// # Panics
///
/// Panics on any [`EstimatorError`]; see [`try_rs_estimate`] for the
/// fallible form.
pub fn rs_estimate(x: &[f64]) -> HurstEstimate {
    try_rs_estimate(x).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`rs_estimate`]: rejects series shorter than 64 samples and
/// windows where fewer than two block sizes yield a usable (non-constant
/// block) R/S average — including the "overall variance positive but
/// every block constant" window that used to panic deep inside the
/// regression.
pub fn try_rs_estimate(x: &[f64]) -> Result<HurstEstimate, EstimatorError> {
    if x.len() < 64 {
        return Err(EstimatorError::TooFewSamples {
            estimator: ESTIMATOR,
            needed: 64,
            got: x.len(),
        });
    }
    try_rs_estimate_with_sizes(x, &log_spaced_sizes(8, x.len() / 4, 16))
}

/// [`try_rs_estimate`] over caller-chosen block sizes (strictly
/// increasing, each ≥ 2). The streaming backend uses this with dyadic
/// sizes so its tiled block state can be pinned bit-equal to the batch
/// path; sizes exceeding `x.len()` contribute no blocks and drop out,
/// exactly as in the log-spaced path.
pub fn try_rs_estimate_with_sizes(
    x: &[f64],
    sizes: &[usize],
) -> Result<HurstEstimate, EstimatorError> {
    if sizes.is_empty() {
        return Err(EstimatorError::NoUsableScales { estimator: ESTIMATOR });
    }
    let mut points = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let mut acc = 0.0;
        let mut blocks = 0usize;
        for chunk in x.chunks_exact(n) {
            if let Some(rs) = rescaled_range(chunk) {
                acc += rs;
                blocks += 1;
            }
        }
        if blocks > 0 {
            points.push(((n as f64).ln(), (acc / blocks as f64).ln()));
        }
    }
    fit_points(points)
}

/// Regresses pre-accumulated `(ln n, ln avg R/S)` points. Exposed to
/// the streaming backend so its incrementally maintained per-size block
/// averages go through the identical final fit.
pub(crate) fn fit_points(points: Vec<(f64, f64)>) -> Result<HurstEstimate, EstimatorError> {
    if points.len() < 2 {
        return Err(EstimatorError::TooFewPoints {
            estimator: ESTIMATOR,
            got: points.len(),
        });
    }
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let fit = linear_fit(&xs, &ys);
    Ok(HurstEstimate {
        h: fit.slope,
        fit,
        points,
    })
}

/// R/S statistic of one block; `None` if the block is constant.
pub(crate) fn rescaled_range(block: &[f64]) -> Option<f64> {
    let m = mean(block);
    let s = std_dev(block);
    if s == 0.0 {
        return None;
    }
    let mut cum = 0.0;
    let mut lo = 0.0f64;
    let mut hi = 0.0f64;
    for &v in block {
        cum += v - m;
        lo = lo.min(cum);
        hi = hi.max(cum);
    }
    Some((hi - lo) / s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rescaled_range_simple() {
        // Block [0, 1]: mean 0.5, cumdev [-0.5, 0.0]; R = 0.5, S = 0.5.
        let rs = rescaled_range(&[0.0, 1.0]).unwrap();
        assert!((rs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_block_is_none() {
        assert!(rescaled_range(&[2.0, 2.0, 2.0]).is_none());
    }

    #[test]
    fn iid_like_series_near_half() {


        use lrd_rng::{Rng, SeedableRng};
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(42);
        let x: Vec<f64> = (0..65_536).map(|_| rng.gen::<f64>() - 0.5).collect();
        let e = rs_estimate(&x);
        assert!(
            (e.h - 0.5).abs() < 0.15,
            "expected H near 0.5 for iid-like input, got {}",
            e.h
        );
    }

    #[test]
    #[should_panic(expected = "64 samples")]
    fn short_series_rejected() {
        rs_estimate(&[1.0; 10]);
    }

    #[test]
    fn with_sizes_default_spacing_matches_the_legacy_path() {
        use lrd_rng::{Rng, SeedableRng};
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(9);
        let x: Vec<f64> = (0..4096).map(|_| rng.gen::<f64>()).collect();
        let sizes = log_spaced_sizes(8, x.len() / 4, 16);
        let a = rs_estimate(&x);
        let b = try_rs_estimate_with_sizes(&x, &sizes).unwrap();
        assert_eq!(a.h.to_bits(), b.h.to_bits());
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn every_block_constant_is_a_typed_error_not_a_panic() {
        // Overall variance is positive (one deviant sample at the end)
        // but among the log-spaced sizes 8..=16 only 11 divides 66, so
        // every other size truncates the deviant away and sees only
        // constant blocks — a single regression point survives. The
        // legacy path panicked inside `linear_fit` on this window.
        let mut w = vec![1.0; 65];
        w.push(2.0);
        assert!(crate::descriptive::variance(&w) > 0.0);
        match try_rs_estimate(&w) {
            Err(EstimatorError::TooFewPoints { got, .. }) => assert_eq!(got, 1),
            other => panic!("expected TooFewPoints, got {other:?}"),
        }
    }

    #[test]
    fn dyadic_all_blocks_constant_is_a_typed_error() {
        // Two constant halves: every dyadic block of size 8..=16 sits
        // entirely inside one half, so zero points survive. This is the
        // window the streaming (dyadic-size) backend must survive.
        let mut w = vec![1.0; 32];
        w.extend_from_slice(&[2.0; 32]);
        match try_rs_estimate_with_sizes(&w, &[8, 16]) {
            Err(EstimatorError::TooFewPoints { got: 0, .. }) => {}
            other => panic!("expected TooFewPoints, got {other:?}"),
        }
    }

    #[test]
    fn short_series_is_a_typed_error() {
        match try_rs_estimate(&[1.0; 10]) {
            Err(EstimatorError::TooFewSamples { needed: 64, got: 10, .. }) => {}
            other => panic!("expected TooFewSamples, got {other:?}"),
        }
        assert!(matches!(
            try_rs_estimate_with_sizes(&[1.0; 128], &[]),
            Err(EstimatorError::NoUsableScales { .. })
        ));
    }
}
