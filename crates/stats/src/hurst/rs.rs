//! Rescaled-range (R/S) analysis, the original Hurst estimator from
//! hydrology (Hurst 1950, cited as [19] in the paper).
//!
//! For a block `x_1..x_n`, let `y_k` be the cumulative deviations from
//! the block mean. The rescaled range is
//! `R/S = (max_k y_k − min_k y_k) / s` where `s` is the block standard
//! deviation. For an LRD process, `E[R/S] ~ c·n^H`, so the slope of
//! `log(R/S)` against `log n` estimates `H`.

use super::{log_spaced_sizes, HurstEstimate};
use crate::descriptive::{mean, std_dev};
use crate::regression::linear_fit;

/// Estimates the Hurst parameter of `x` by R/S analysis.
///
/// Block sizes are log-spaced between 8 and `n / 4`; each block size
/// averages the R/S statistic over all non-overlapping blocks.
///
/// # Panics
///
/// Panics if the series has fewer than 64 samples.
pub fn rs_estimate(x: &[f64]) -> HurstEstimate {
    assert!(x.len() >= 64, "R/S analysis needs at least 64 samples");
    let sizes = log_spaced_sizes(8, x.len() / 4, 16);
    let mut points = Vec::with_capacity(sizes.len());
    for &n in &sizes {
        let mut acc = 0.0;
        let mut blocks = 0usize;
        for chunk in x.chunks_exact(n) {
            if let Some(rs) = rescaled_range(chunk) {
                acc += rs;
                blocks += 1;
            }
        }
        if blocks > 0 {
            points.push(((n as f64).ln(), (acc / blocks as f64).ln()));
        }
    }
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let fit = linear_fit(&xs, &ys);
    HurstEstimate {
        h: fit.slope,
        fit,
        points,
    }
}

/// R/S statistic of one block; `None` if the block is constant.
fn rescaled_range(block: &[f64]) -> Option<f64> {
    let m = mean(block);
    let s = std_dev(block);
    if s == 0.0 {
        return None;
    }
    let mut cum = 0.0;
    let mut lo = 0.0f64;
    let mut hi = 0.0f64;
    for &v in block {
        cum += v - m;
        lo = lo.min(cum);
        hi = hi.max(cum);
    }
    Some((hi - lo) / s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rescaled_range_simple() {
        // Block [0, 1]: mean 0.5, cumdev [-0.5, 0.0]; R = 0.5, S = 0.5.
        let rs = rescaled_range(&[0.0, 1.0]).unwrap();
        assert!((rs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_block_is_none() {
        assert!(rescaled_range(&[2.0, 2.0, 2.0]).is_none());
    }

    #[test]
    fn iid_like_series_near_half() {


        use lrd_rng::{Rng, SeedableRng};
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(42);
        let x: Vec<f64> = (0..65_536).map(|_| rng.gen::<f64>() - 0.5).collect();
        let e = rs_estimate(&x);
        assert!(
            (e.h - 0.5).abs() < 0.15,
            "expected H near 0.5 for iid-like input, got {}",
            e.h
        );
    }

    #[test]
    #[should_panic(expected = "64 samples")]
    fn short_series_rejected() {
        rs_estimate(&[1.0; 10]);
    }
}
