//! One-pass, grow-only Hurst estimators for out-of-core trace
//! ingestion.
//!
//! The batch estimators in [`crate::hurst`] need the whole series in
//! memory; the paper's empirical backbone is Hurst estimation over
//! multi-million-packet traces, which `lrd-trace` streams through in
//! fixed-size chunks. These accumulators absorb one sample at a time
//! and hold **bounded** state regardless of stream length:
//!
//! * [`OnePassRs`] — per-dyadic-block-size R/S averages. Block sizes
//!   are capped at [`MAX_ONEPASS_BLOCK`]; a shared ring of the most
//!   recent `MAX_ONEPASS_BLOCK` samples lets each completed block be
//!   rescored with the *identical* two-pass `rescaled_range` code the
//!   batch path uses, so the estimate is bit-equal to
//!   [`try_rs_estimate_with_sizes`](crate::hurst::try_rs_estimate_with_sizes)
//!   on the same prefix and the same (capped) dyadic sizes.
//! * [`OnePassVt`] — hierarchical block aggregators: each dyadic level
//!   keeps a left-to-right running block sum plus a Welford summary of
//!   completed block means. Block means are bit-equal to the batch
//!   aggregation; the per-level *variance* is Welford rather than
//!   two-pass, so the final estimate agrees with the batch path to
//!   floating-point accumulation error (pinned by test at `1e-6`),
//!   not bit-for-bit — the price of O(levels) state on an unbounded
//!   stream.
//! * [`OnePassWavelet`] — a Haar pyramid with one pending coefficient
//!   per octave (O(24) state). Every detail energy is accumulated in
//!   the same pair order as [`haar_energies`](crate::hurst::haar_energies),
//!   so the estimate is bit-equal to
//!   [`try_wavelet_estimate`](crate::hurst::try_wavelet_estimate) on
//!   the same prefix at **every** prefix length.
//!
//! [`OnePassHurst`] bundles all three with a running [`Summary`] for
//! the callers (the trace CLI, the trace-driven figures) that want one
//! object per stream.

use crate::descriptive::Summary;
use crate::error::EstimatorError;
use crate::hurst::{
    dyadic_sizes, rescaled_range, rs_fit_points, try_wavelet_estimate_from_energies,
    vt_fit_points, HurstEstimate,
};

/// Largest analysis block (samples) the one-pass estimators maintain.
///
/// This caps both the R/S ring and the deepest VT aggregation level:
/// state is ~`2 * MAX_ONEPASS_BLOCK` f64s (≈1 MiB) no matter how long
/// the stream runs. Scales beyond it contribute nothing — exactly as
/// if the batch estimators were called with the same capped size list.
pub const MAX_ONEPASS_BLOCK: usize = 1 << 16;

/// Dyadic R/S block sizes the one-pass estimator regresses over for a
/// series of `len` samples: powers of two in `[8, min(len/4, max_block)]`.
///
/// Feed these to
/// [`try_rs_estimate_with_sizes`](crate::hurst::try_rs_estimate_with_sizes)
/// to reproduce a [`OnePassRs`] estimate from the raw series.
pub fn onepass_rs_sizes(len: usize, max_block: usize) -> Vec<usize> {
    let hi = (len / 4).min(max_block);
    if hi < 8 {
        Vec::new()
    } else {
        dyadic_sizes(8, hi)
    }
}

/// Dyadic VT aggregation levels for a series of `len` samples: powers
/// of two in `[1, min(len/8, max_block)]`.
pub fn onepass_vt_sizes(len: usize, max_block: usize) -> Vec<usize> {
    let hi = (len / 8).min(max_block);
    if hi < 1 {
        Vec::new()
    } else {
        dyadic_sizes(1, hi)
    }
}

/// Per-size R/S accumulator state.
#[derive(Debug, Clone)]
struct RsLevel {
    size: u64,
    /// Sum of R/S statistics over completed non-constant blocks, in
    /// completion (= batch chunk) order.
    acc: f64,
    blocks: u64,
}

/// One-pass rescaled-range analysis over dyadic block sizes.
#[derive(Debug, Clone)]
pub struct OnePassRs {
    /// The most recent `max_block` samples; a block of size `s` is
    /// always fully resident when it completes because `s <= max_block`.
    ring: Vec<f64>,
    scratch: Vec<f64>,
    levels: Vec<RsLevel>,
    count: u64,
}

impl OnePassRs {
    /// An accumulator with the default [`MAX_ONEPASS_BLOCK`] cap.
    pub fn new() -> Self {
        OnePassRs::with_max_block(MAX_ONEPASS_BLOCK)
    }

    /// An accumulator whose largest block size is `max_block`
    /// (a power of two, at least 8).
    pub fn with_max_block(max_block: usize) -> Self {
        assert!(
            max_block.is_power_of_two() && max_block >= 8,
            "max block must be a power of two >= 8"
        );
        OnePassRs {
            ring: vec![0.0; max_block],
            scratch: Vec::with_capacity(max_block),
            levels: dyadic_sizes(8, max_block)
                .into_iter()
                .map(|size| RsLevel {
                    size: size as u64,
                    acc: 0.0,
                    blocks: 0,
                })
                .collect(),
            count: 0,
        }
    }

    /// Samples absorbed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Absorbs one sample, scoring every block it completes.
    pub fn push(&mut self, v: f64) {
        let cap = self.ring.len() as u64;
        self.ring[(self.count % cap) as usize] = v;
        self.count += 1;
        let OnePassRs {
            ring,
            scratch,
            levels,
            count,
        } = self;
        for lvl in levels.iter_mut() {
            if *count % lvl.size != 0 {
                continue;
            }
            // The completed block occupies absolute indices
            // [count - size, count), all within the ring's span
            // [count - cap, count). Copy it out in logical order so
            // `rescaled_range` runs over the exact sample sequence the
            // batch path would chunk.
            scratch.clear();
            scratch.extend((*count - lvl.size..*count).map(|i| ring[(i % cap) as usize]));
            if let Some(rs) = rescaled_range(scratch) {
                lvl.acc += rs;
                lvl.blocks += 1;
            }
        }
    }

    /// The R/S estimate over the full stream so far; bit-equal to
    /// `try_rs_estimate_with_sizes(prefix, onepass_rs_sizes(len, max_block))`.
    pub fn estimate(&self) -> Result<HurstEstimate, EstimatorError> {
        let len = self.count as usize;
        if len < 64 {
            return Err(EstimatorError::TooFewSamples {
                estimator: "R/S analysis",
                needed: 64,
                got: len,
            });
        }
        let hi = (self.count / 4).min(self.ring.len() as u64);
        let mut points = Vec::new();
        for lvl in &self.levels {
            if lvl.size > hi {
                break;
            }
            if lvl.blocks > 0 {
                points.push(((lvl.size as f64).ln(), (lvl.acc / lvl.blocks as f64).ln()));
            }
        }
        rs_fit_points(points)
    }
}

impl Default for OnePassRs {
    fn default() -> Self {
        OnePassRs::new()
    }
}

/// Per-level VT aggregator: the in-progress block sum plus a Welford
/// summary of completed block means.
#[derive(Debug, Clone)]
struct VtLevel {
    size: u64,
    cur_sum: f64,
    cur_n: u64,
    blocks: u64,
    mean: f64,
    m2: f64,
}

impl VtLevel {
    fn complete(&mut self) {
        let block_mean = self.cur_sum / self.size as f64;
        self.cur_sum = 0.0;
        self.cur_n = 0;
        self.blocks += 1;
        let delta = block_mean - self.mean;
        self.mean += delta / self.blocks as f64;
        self.m2 += delta * (block_mean - self.mean);
    }

    fn variance(&self) -> f64 {
        self.m2 / self.blocks as f64
    }
}

/// One-pass variance–time analysis over dyadic aggregation levels
/// (hierarchy of running block sums — O(levels) state).
#[derive(Debug, Clone)]
pub struct OnePassVt {
    levels: Vec<VtLevel>,
    count: u64,
}

impl OnePassVt {
    /// An accumulator with the default [`MAX_ONEPASS_BLOCK`] cap.
    pub fn new() -> Self {
        OnePassVt::with_max_block(MAX_ONEPASS_BLOCK)
    }

    /// An accumulator whose deepest aggregation level is `max_block`
    /// (a power of two).
    pub fn with_max_block(max_block: usize) -> Self {
        assert!(max_block.is_power_of_two(), "max block must be a power of two");
        OnePassVt {
            levels: dyadic_sizes(1, max_block)
                .into_iter()
                .map(|size| VtLevel {
                    size: size as u64,
                    cur_sum: 0.0,
                    cur_n: 0,
                    blocks: 0,
                    mean: 0.0,
                    m2: 0.0,
                })
                .collect(),
            count: 0,
        }
    }

    /// Samples absorbed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Absorbs one sample into every aggregation level.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        for lvl in &mut self.levels {
            lvl.cur_sum += v;
            lvl.cur_n += 1;
            if lvl.cur_n == lvl.size {
                lvl.complete();
            }
        }
    }

    /// The variance–time estimate over the full stream so far; agrees
    /// with `try_variance_time_estimate_with_sizes(prefix,
    /// onepass_vt_sizes(len, max_block))` to Welford-vs-two-pass
    /// accumulation error (block means are bit-equal; variances are
    /// not).
    pub fn estimate(&self) -> Result<HurstEstimate, EstimatorError> {
        let len = self.count as usize;
        if len < 64 {
            return Err(EstimatorError::TooFewSamples {
                estimator: "variance-time",
                needed: 64,
                got: len,
            });
        }
        if self.levels[0].variance() <= 0.0 {
            return Err(EstimatorError::ZeroVariance {
                estimator: "variance-time",
            });
        }
        let hi = self.count / 8;
        let mut points = Vec::new();
        for lvl in &self.levels {
            if lvl.size > hi {
                break;
            }
            if lvl.blocks < 2 {
                continue;
            }
            let v = lvl.variance();
            if v > 0.0 {
                points.push(((lvl.size as f64).ln(), v.ln()));
            }
        }
        vt_fit_points(points)
    }
}

impl Default for OnePassVt {
    fn default() -> Self {
        OnePassVt::new()
    }
}

/// Octave cap mirroring the batch `haar_energies(x, 24, 8)` call.
const MAX_OCTAVES: usize = 24;
/// Minimum detail coefficients per usable octave (batch `min_coeffs`).
const MIN_COEFFS: u64 = 8;

/// One octave of the streaming Haar pyramid.
#[derive(Debug, Clone, Default)]
struct WavLevel {
    /// The unpaired approximation coefficient, if any.
    pending: Option<f64>,
    /// Sum of squared detail coefficients, in pair order.
    energy: f64,
    pairs: u64,
    /// Approximation coefficients fed into this octave — the batch
    /// `approx.len()` when it reaches this level.
    received: u64,
}

/// One-pass Haar-wavelet energy accumulator, bit-equal to the batch
/// estimator at every prefix length.
#[derive(Debug, Clone, Default)]
pub struct OnePassWavelet {
    levels: Vec<WavLevel>,
    count: u64,
}

impl OnePassWavelet {
    /// An empty pyramid.
    pub fn new() -> Self {
        OnePassWavelet::default()
    }

    /// Samples absorbed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Absorbs one sample, cascading completed pairs up the pyramid.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let sqrt2 = std::f64::consts::SQRT_2;
        let mut carry = v;
        let mut j = 0;
        while j < MAX_OCTAVES {
            if self.levels.len() <= j {
                self.levels.push(WavLevel::default());
            }
            let lvl = &mut self.levels[j];
            lvl.received += 1;
            match lvl.pending.take() {
                None => {
                    lvl.pending = Some(carry);
                    return;
                }
                Some(a) => {
                    let d = (a - carry) / sqrt2;
                    lvl.energy += d * d;
                    lvl.pairs += 1;
                    carry = (a + carry) / sqrt2;
                    j += 1;
                }
            }
        }
    }

    /// Per-octave mean detail energies, identical to
    /// `haar_energies(prefix, 24, 8)`.
    pub fn energies(&self) -> Vec<(usize, f64)> {
        self.levels
            .iter()
            .enumerate()
            .take_while(|(_, l)| l.received >= 2 * MIN_COEFFS)
            .map(|(i, l)| (i + 1, l.energy / l.pairs as f64))
            .collect()
    }

    /// The wavelet estimate over the full stream so far; bit-equal to
    /// `try_wavelet_estimate(prefix)`.
    pub fn estimate(&self) -> Result<HurstEstimate, EstimatorError> {
        let len = self.count as usize;
        if len < 128 {
            return Err(EstimatorError::TooFewSamples {
                estimator: "wavelet estimator",
                needed: 128,
                got: len,
            });
        }
        try_wavelet_estimate_from_energies(&self.energies())
    }
}

/// All three one-pass Hurst estimators plus a running moment summary,
/// for callers that ingest a trace once and want everything.
#[derive(Debug, Clone)]
pub struct OnePassHurst {
    rs: OnePassRs,
    vt: OnePassVt,
    wavelet: OnePassWavelet,
    summary: Summary,
}

impl OnePassHurst {
    /// An empty bundle with the default block cap.
    pub fn new() -> Self {
        OnePassHurst {
            rs: OnePassRs::new(),
            vt: OnePassVt::new(),
            wavelet: OnePassWavelet::new(),
            summary: Summary::new(),
        }
    }

    /// Absorbs one sample into every estimator.
    pub fn push(&mut self, v: f64) {
        self.rs.push(v);
        self.vt.push(v);
        self.wavelet.push(v);
        self.summary.push(v);
    }

    /// Samples absorbed so far.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// The running moment summary (mean/variance/min/max).
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// The R/S estimate (see [`OnePassRs::estimate`]).
    pub fn rs_estimate(&self) -> Result<HurstEstimate, EstimatorError> {
        self.rs.estimate()
    }

    /// The variance–time estimate (see [`OnePassVt::estimate`]).
    pub fn variance_time_estimate(&self) -> Result<HurstEstimate, EstimatorError> {
        self.vt.estimate()
    }

    /// The wavelet estimate (see [`OnePassWavelet::estimate`]).
    pub fn wavelet_estimate(&self) -> Result<HurstEstimate, EstimatorError> {
        self.wavelet.estimate()
    }

    /// Mean of the clamped point estimates of whichever estimators
    /// currently succeed; `None` if all of them fail (short or
    /// degenerate stream).
    pub fn pooled(&self) -> Option<f64> {
        let estimates: Vec<f64> = [self.rs_estimate(), self.variance_time_estimate(), self.wavelet_estimate()]
            .into_iter()
            .flatten()
            .map(|e| e.clamped())
            .collect();
        if estimates.is_empty() {
            None
        } else {
            Some(estimates.iter().sum::<f64>() / estimates.len() as f64)
        }
    }
}

impl Default for OnePassHurst {
    fn default() -> Self {
        OnePassHurst::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hurst::{
        try_rs_estimate_with_sizes, try_variance_time_estimate_with_sizes, try_wavelet_estimate,
    };
    use lrd_rng::{Rng, SeedableRng};

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<f64>() - 0.5).collect()
    }

    #[test]
    fn rs_is_bit_equal_to_the_capped_batch_path() {
        // Including a cap small enough that the ring wraps many times.
        for &(n, max_block) in &[(5000, 64), (5000, 1 << 16), (70_000, 256)] {
            let x = noise(n, 100 + max_block as u64);
            let mut op = OnePassRs::with_max_block(max_block);
            for &v in &x {
                op.push(v);
            }
            let stream = op.estimate().unwrap();
            let batch =
                try_rs_estimate_with_sizes(&x, &onepass_rs_sizes(n, max_block)).unwrap();
            assert_eq!(stream.h.to_bits(), batch.h.to_bits());
            assert_eq!(stream.points, batch.points);
        }
    }

    #[test]
    fn vt_matches_the_batch_path_to_accumulation_error() {
        for &(n, max_block) in &[(5000, 64), (70_000, 1 << 16)] {
            let x = noise(n, 200 + max_block as u64);
            let mut op = OnePassVt::with_max_block(max_block);
            for &v in &x {
                op.push(v);
            }
            let stream = op.estimate().unwrap();
            let batch =
                try_variance_time_estimate_with_sizes(&x, &onepass_vt_sizes(n, max_block))
                    .unwrap();
            assert_eq!(stream.points.len(), batch.points.len());
            assert!(
                (stream.h - batch.h).abs() < 1e-6,
                "one-pass VT {} vs batch {}",
                stream.h,
                batch.h
            );
        }
    }

    #[test]
    fn wavelet_is_bit_equal_at_every_checkpoint() {
        let x = noise(20_000, 300);
        let mut op = OnePassWavelet::new();
        for (i, &v) in x.iter().enumerate() {
            op.push(v);
            let n = i + 1;
            // Odd lengths exercise pending coefficients at every level.
            if [128, 129, 1000, 4097, 16_384, 20_000].contains(&n) {
                let stream = op.estimate().unwrap();
                let batch = try_wavelet_estimate(&x[..n]).unwrap();
                assert_eq!(
                    stream.h.to_bits(),
                    batch.h.to_bits(),
                    "wavelet split from batch at prefix {n}"
                );
                assert_eq!(stream.points, batch.points);
            }
        }
    }

    #[test]
    fn degenerate_streams_are_typed_errors_not_panics() {
        let mut all = OnePassHurst::new();
        assert!(matches!(
            all.rs_estimate(),
            Err(EstimatorError::TooFewSamples { .. })
        ));
        for _ in 0..10_000 {
            all.push(3.25);
        }
        // Constant stream: every estimator fails, none panics.
        assert!(all.rs_estimate().is_err());
        assert!(matches!(
            all.variance_time_estimate(),
            Err(EstimatorError::ZeroVariance { .. })
        ));
        assert!(all.wavelet_estimate().is_err());
        assert!(all.pooled().is_none());
        // Variability arriving later unlocks the estimates.
        let x = noise(60_000, 400);
        for &v in &x {
            all.push(v);
        }
        assert!(all.rs_estimate().is_ok());
        assert!(all.variance_time_estimate().is_ok());
        assert!(all.wavelet_estimate().is_ok());
        let pooled = all.pooled().unwrap();
        assert!((0.0..=1.0).contains(&pooled));
        assert_eq!(all.count(), 70_000);
    }

    #[test]
    fn size_helpers_cap_and_empty_correctly() {
        assert_eq!(onepass_rs_sizes(256, 1 << 16), vec![8, 16, 32, 64]);
        assert_eq!(onepass_rs_sizes(256, 16), vec![8, 16]);
        assert!(onepass_rs_sizes(20, 1 << 16).is_empty());
        assert_eq!(onepass_vt_sizes(64, 1 << 16), vec![1, 2, 4, 8]);
        assert_eq!(onepass_vt_sizes(64, 4), vec![1, 2, 4]);
    }
}
