//! Descriptive statistics and serial-correlation estimators.

/// Arithmetic mean of a slice. Returns `NaN` for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return f64::NAN;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Population variance (denominator `n`). Returns `NaN` for an empty
/// slice.
///
/// Uses a two-pass algorithm for numerical stability; traces in this
/// workspace comfortably fit in memory, so the second pass is cheap.
pub fn variance(x: &[f64]) -> f64 {
    if x.is_empty() {
        return f64::NAN;
    }
    let m = mean(x);
    x.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// A one-pass summary accumulator (Welford) for streaming use, e.g. the
/// fluid-queue simulator's occupancy statistics.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Running population variance (`NaN` when empty).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Biased sample autocovariance `γ̂(k) = (1/n) Σ_{t} (x_t - x̄)(x_{t+k} - x̄)`
/// for `k = 0..max_lag` (inclusive), computed with one FFT-based
/// correlation, `O(n log n)`.
///
/// The biased (divide-by-`n`) normalization is standard for spectral
/// work: it guarantees a positive semi-definite sequence.
///
/// # Panics
///
/// Panics if `max_lag >= x.len()`.
pub fn autocovariance(x: &[f64], max_lag: usize) -> Vec<f64> {
    assert!(
        max_lag < x.len(),
        "max_lag {} must be < series length {}",
        max_lag,
        x.len()
    );
    let n = x.len();
    let m = mean(x);
    let centered: Vec<f64> = x.iter().map(|&v| v - m).collect();

    // Autocorrelation via convolution with the time-reversed sequence:
    // (x ⋆ x)(k) = Σ_t x_t x_{t+k} appears at output index n-1+k.
    let reversed: Vec<f64> = centered.iter().rev().copied().collect();
    let conv = lrd_fft::convolve(&centered, &reversed);
    (0..=max_lag)
        .map(|k| conv[n - 1 + k] / n as f64)
        .collect()
}

/// Sample autocorrelation `ρ̂(k) = γ̂(k) / γ̂(0)` for `k = 0..=max_lag`.
///
/// Returns all-`NaN` if the series has zero variance.
pub fn autocorrelation(x: &[f64], max_lag: usize) -> Vec<f64> {
    let acov = autocovariance(x, max_lag);
    let g0 = acov[0];
    acov.iter().map(|&g| g / g0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < 1e-12);
        assert!((variance(&x) - 4.0).abs() < 1e-12);
        assert!((std_dev(&x) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[]).is_nan());
    }

    #[test]
    fn summary_matches_two_pass() {
        let x: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.13).collect();
        let mut s = Summary::new();
        for &v in &x {
            s.push(v);
        }
        assert_eq!(s.count(), 1000);
        assert!((s.mean() - mean(&x)).abs() < 1e-10);
        assert!((s.variance() - variance(&x)).abs() < 1e-8);
        assert_eq!(s.min(), x.iter().cloned().fold(f64::INFINITY, f64::min));
        assert_eq!(s.max(), x.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Direct O(n·k) reference autocovariance.
    fn acov_naive(x: &[f64], max_lag: usize) -> Vec<f64> {
        let n = x.len();
        let m = mean(x);
        (0..=max_lag)
            .map(|k| {
                (0..n - k)
                    .map(|t| (x[t] - m) * (x[t + k] - m))
                    .sum::<f64>()
                    / n as f64
            })
            .collect()
    }

    #[test]
    fn autocovariance_matches_naive() {
        let x: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.1).sin() + ((i * 7) % 13) as f64 * 0.05)
            .collect();
        let want = acov_naive(&x, 40);
        let got = autocovariance(&x, 40);
        for (k, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-9, "lag {k}: {a} vs {b}");
        }
    }

    #[test]
    fn autocorrelation_lag0_is_one() {
        let x: Vec<f64> = (0..100).map(|i| (i % 17) as f64).collect();
        let rho = autocorrelation(&x, 10);
        assert!((rho[0] - 1.0).abs() < 1e-12);
        assert!(rho.iter().all(|&r| r.abs() <= 1.0 + 1e-9));
    }

    #[test]
    fn iid_series_has_small_correlation() {

        use lrd_rng::{Rng, SeedableRng};
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(42);
        let x: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>() - 0.5).collect();
        let rho = autocorrelation(&x, 20);
        for (k, &r) in rho.iter().enumerate().skip(1) {
            assert!(r.abs() < 0.05, "unexpected correlation {r} at lag {k}");
        }
    }

    #[test]
    #[should_panic(expected = "max_lag")]
    fn autocovariance_rejects_large_lag() {
        autocovariance(&[1.0, 2.0], 5);
    }
}
