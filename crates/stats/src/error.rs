//! Typed errors for the estimators and histograms.
//!
//! Mirrors the workspace error policy (DESIGN.md §8): every panicking
//! entry point has a fallible `try_*` sibling returning a typed error
//! whose `Display` form *is* the panic message, so matching on the
//! variant and printing the error are equally informative and the
//! legacy `#[should_panic]` tests keep working against the shims.
//!
//! The estimator errors exist because a Hurst estimator can fail on
//! inputs that pass every cheap precondition: a window whose overall
//! variance is positive but whose every analysis block is constant
//! leaves rescaled-range analysis with fewer than two regression
//! points. Before these types existed that window silently produced
//! `H = NaN` (or panicked inside the regression), and the streaming
//! path could take down the `lrd-serve` daemon; see
//! `crates/stats/src/streaming.rs` for how the service now degrades.

use std::fmt;

/// Why a Hurst estimator could not produce an estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorError {
    /// The series is shorter than the estimator's minimum.
    TooFewSamples {
        /// Which estimator rejected the series.
        estimator: &'static str,
        /// The minimum sample count.
        needed: usize,
        /// The offered sample count.
        got: usize,
    },
    /// The series is constant: there is no scaling behaviour to
    /// estimate.
    ZeroVariance {
        /// Which estimator rejected the series.
        estimator: &'static str,
    },
    /// After filtering degenerate blocks/levels, fewer than two
    /// regression points survived — the log-log slope is undefined.
    /// This is the "overall variance positive but every block
    /// constant" window.
    TooFewPoints {
        /// Which estimator ran out of points.
        estimator: &'static str,
        /// Surviving regression points.
        got: usize,
    },
    /// No admissible block sizes / octaves for this series length and
    /// configuration.
    NoUsableScales {
        /// Which estimator had no scales to regress over.
        estimator: &'static str,
    },
    /// The wavelet pyramid was too shallow to regress an energy slope.
    TooFewOctaves {
        /// Which estimator rejected the pyramid.
        estimator: &'static str,
        /// The minimum usable octave count.
        needed: usize,
        /// The achieved octave count.
        got: usize,
    },
}

impl fmt::Display for EstimatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EstimatorError::TooFewSamples {
                estimator,
                needed,
                got,
            } => write!(
                f,
                "{estimator} needs at least {needed} samples, got {got}"
            ),
            EstimatorError::ZeroVariance { estimator } => {
                write!(f, "{estimator} is undefined for a constant series")
            }
            EstimatorError::TooFewPoints { estimator, got } => write!(
                f,
                "{estimator} has {got} usable regression point(s); \
                 at least 2 are needed for a slope"
            ),
            EstimatorError::NoUsableScales { estimator } => {
                write!(f, "{estimator} has no usable block sizes for this series")
            }
            EstimatorError::TooFewOctaves {
                estimator,
                needed,
                got,
            } => write!(
                f,
                "{estimator} needs at least {needed} usable octaves, got {got}"
            ),
        }
    }
}

impl std::error::Error for EstimatorError {}

/// Why a histogram constructor rejected its input.
#[derive(Debug, Clone, PartialEq)]
pub enum HistogramError {
    /// `bins == 0`.
    NoBins,
    /// A range bound was NaN or infinite.
    NonFiniteBound {
        /// The offending lower bound.
        min: f64,
        /// The offending upper bound.
        max: f64,
    },
    /// `max <= min`: the range is empty, every bin would have zero
    /// width and `bin_index` would divide by zero.
    EmptyRange {
        /// The offered lower bound.
        min: f64,
        /// The offered upper bound.
        max: f64,
    },
    /// `from_data` was called with no data.
    NoData,
    /// `from_data` saw a NaN or infinite observation.
    NonFiniteDatum {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            HistogramError::NoBins => write!(f, "histogram needs at least one bin"),
            HistogramError::NonFiniteBound { min, max } => {
                write!(f, "bounds must be finite, got [{min}, {max}]")
            }
            HistogramError::EmptyRange { min, max } => {
                write!(f, "histogram range must be non-empty: [{min}, {max}]")
            }
            HistogramError::NoData => write!(f, "cannot build a histogram from no data"),
            HistogramError::NonFiniteDatum { value } => {
                write!(f, "histogram data must be finite, got {value}")
            }
        }
    }
}

impl std::error::Error for HistogramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_display_names_the_estimator() {
        let e = EstimatorError::TooFewSamples {
            estimator: "R/S analysis",
            needed: 64,
            got: 10,
        };
        assert_eq!(e.to_string(), "R/S analysis needs at least 64 samples, got 10");
        let e = EstimatorError::TooFewPoints {
            estimator: "R/S analysis",
            got: 0,
        };
        assert!(e.to_string().contains("0 usable regression point(s)"));
        let e = EstimatorError::ZeroVariance {
            estimator: "variance-time",
        };
        assert!(e.to_string().contains("constant series"));
    }

    #[test]
    fn histogram_display_matches_legacy_panics() {
        // The shims panic with these exact strings; the legacy
        // `#[should_panic(expected = ...)]` tests depend on them.
        assert_eq!(
            HistogramError::NoBins.to_string(),
            "histogram needs at least one bin"
        );
        assert_eq!(
            HistogramError::EmptyRange { min: 1.0, max: 1.0 }.to_string(),
            "histogram range must be non-empty: [1, 1]"
        );
        assert_eq!(
            HistogramError::NoData.to_string(),
            "cannot build a histogram from no data"
        );
        assert!(HistogramError::NonFiniteDatum { value: f64::NAN }
            .to_string()
            .contains("must be finite"));
    }
}
