//! Constant-bin-size histograms.
//!
//! The paper extracts the marginal distribution vector `Π` and the rate
//! matrix `Λ` "simply ... from a constant bin-size histogram of the
//! traces", with the number of bins "set to 50 in all experiments"
//! (Sec. III). [`Histogram`] is that object: fixed equal-width bins over
//! `[min, max]`, counts, normalized probabilities, and bin centers.
//!
//! Construction validates the range: a degenerate `min == max` range
//! would give zero-width bins, and `bin_index` would then compute
//! `(x − min) / 0 = NaN`, cast it to bin 0 and silently tally every
//! observation there. [`Histogram::try_new`] rejects that with a typed
//! [`HistogramError`]; the panicking constructors are shims over it.

use crate::error::HistogramError;

/// A fixed-range, equal-width histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    total: u64,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates an empty histogram over `[min, max]` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, if the range is empty, or if either bound
    /// is not finite.
    pub fn new(min: f64, max: f64, bins: usize) -> Self {
        Histogram::try_new(min, max, bins).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Histogram::new`]: rejects `bins == 0`, non-finite
    /// bounds, and the degenerate `max <= min` range (whose zero-width
    /// bins would make `bin_index` compute `NaN` and silently tally
    /// everything into bin 0).
    pub fn try_new(min: f64, max: f64, bins: usize) -> Result<Self, HistogramError> {
        if bins == 0 {
            return Err(HistogramError::NoBins);
        }
        if !(min.is_finite() && max.is_finite()) {
            return Err(HistogramError::NonFiniteBound { min, max });
        }
        if max <= min {
            return Err(HistogramError::EmptyRange { min, max });
        }
        Ok(Histogram {
            min,
            max,
            counts: vec![0; bins],
            total: 0,
            below: 0,
            above: 0,
        })
    }

    /// Builds a histogram spanning exactly the data range of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains non-finite values, or if
    /// all values are identical (the range would be empty).
    pub fn from_data(data: &[f64], bins: usize) -> Self {
        Histogram::try_from_data(data, bins).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Histogram::from_data`]. Constant data still succeeds:
    /// the range is widened symmetrically by a relative epsilon so the
    /// single value lands mid-range rather than tripping the
    /// empty-range check.
    pub fn try_from_data(data: &[f64], bins: usize) -> Result<Self, HistogramError> {
        if data.is_empty() {
            return Err(HistogramError::NoData);
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in data {
            if !v.is_finite() {
                return Err(HistogramError::NonFiniteDatum { value: v });
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi == lo {
            // Degenerate data: widen the range symmetrically so the
            // single value lands in the middle bin.
            let pad = lo.abs().max(1.0) * 1e-9;
            lo -= pad;
            hi += pad;
        }
        let mut h = Histogram::try_new(lo, hi, bins)?;
        for &v in data {
            h.add(v);
        }
        Ok(h)
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Lower bound of the histogram range.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound of the histogram range.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.max - self.min) / self.bins() as f64
    }

    /// Index of the bin containing `x`, or `None` if `x` lies outside
    /// the range. The top edge belongs to the last bin.
    pub fn bin_index(&self, x: f64) -> Option<usize> {
        if x < self.min || x > self.max || x.is_nan() {
            return None;
        }
        let idx = ((x - self.min) / self.bin_width()) as usize;
        Some(idx.min(self.bins() - 1))
    }

    /// Adds an observation; out-of-range values are tallied separately
    /// and excluded from [`Histogram::probabilities`].
    pub fn add(&mut self, x: f64) {
        match self.bin_index(x) {
            Some(i) => {
                self.counts[i] += 1;
                self.total += 1;
            }
            None if x < self.min => self.below += 1,
            None => self.above += 1,
        }
    }

    /// Raw in-range counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations that fell below/above the range.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// Normalized bin probabilities (sum to 1 over in-range mass).
    ///
    /// Returns all zeros if the histogram is empty.
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.bins()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Center value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.bins(), "bin index out of range");
        self.min + (i as f64 + 0.5) * self.bin_width()
    }

    /// All bin centers.
    pub fn bin_centers(&self) -> Vec<f64> {
        (0..self.bins()).map(|i| self.bin_center(i)).collect()
    }

    /// Mean of the binned distribution (mass at bin centers).
    pub fn binned_mean(&self) -> f64 {
        let p = self.probabilities();
        (0..self.bins()).map(|i| p[i] * self.bin_center(i)).sum()
    }

    /// Assigns each data point to its bin index; values outside the
    /// range clamp to the nearest bin. Used for epoch (same-bin run)
    /// analysis.
    pub fn quantize(&self, data: &[f64]) -> Vec<usize> {
        data.iter()
            .map(|&x| match self.bin_index(x) {
                Some(i) => i,
                None if x < self.min => 0,
                None => self.bins() - 1,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.6, 9.99, 10.0] {
            h.add(x);
        }
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 2); // 9.99 and the top edge 10.0
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-0.1);
        h.add(2.0);
        h.add(0.5);
        assert_eq!(h.out_of_range(), (1, 1));
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let data: Vec<f64> = (0..1000).map(|i| (i % 97) as f64).collect();
        let h = Histogram::from_data(&data, 50);
        let p = h.probabilities();
        assert_eq!(p.len(), 50);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_data_spans_range() {
        let data = [3.0, 7.0, 5.0];
        let h = Histogram::from_data(&data, 4);
        assert_eq!(h.min(), 3.0);
        assert_eq!(h.max(), 7.0);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn degenerate_constant_data() {
        let h = Histogram::from_data(&[5.0; 10], 3);
        assert_eq!(h.total(), 10);
        let p = h.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bin_centers_are_midpoints() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_centers(), vec![1.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn binned_mean_close_to_true_mean() {
        let data: Vec<f64> = (0..10_000).map(|i| (i % 100) as f64).collect();
        let h = Histogram::from_data(&data, 50);
        let true_mean = crate::descriptive::mean(&data);
        assert!(
            (h.binned_mean() - true_mean).abs() < 1.0,
            "binned mean {} vs true {}",
            h.binned_mean(),
            true_mean
        );
    }

    #[test]
    fn quantize_clamps() {
        let h = Histogram::new(0.0, 10.0, 10);
        assert_eq!(h.quantize(&[-5.0, 0.1, 9.9, 20.0]), vec![0, 0, 9, 9]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_rejected() {
        Histogram::new(1.0, 1.0, 3);
    }

    #[test]
    fn degenerate_ranges_are_typed_errors() {
        assert_eq!(
            Histogram::try_new(1.0, 1.0, 3).err(),
            Some(HistogramError::EmptyRange { min: 1.0, max: 1.0 })
        );
        assert_eq!(
            Histogram::try_new(2.0, 1.0, 3).err(),
            Some(HistogramError::EmptyRange { min: 2.0, max: 1.0 })
        );
        assert_eq!(Histogram::try_new(0.0, 1.0, 0).err(), Some(HistogramError::NoBins));
        assert!(matches!(
            Histogram::try_new(0.0, f64::INFINITY, 3),
            Err(HistogramError::NonFiniteBound { .. })
        ));
        assert_eq!(
            Histogram::try_from_data(&[], 3).err(),
            Some(HistogramError::NoData)
        );
        assert!(matches!(
            Histogram::try_from_data(&[1.0, f64::NAN], 3),
            Err(HistogramError::NonFiniteDatum { .. })
        ));
        assert!(Histogram::try_new(0.0, 1.0, 3).is_ok());
    }

    #[test]
    fn top_edge_lands_in_the_last_bin() {
        // x == max must not fall out of range or spill past the last
        // bin: the half-open bins close at the top edge.
        let h = Histogram::try_new(0.0, 10.0, 10).unwrap();
        assert_eq!(h.bin_index(10.0), Some(9));
        assert_eq!(h.bin_index(0.0), Some(0));
        assert_eq!(h.bin_index(10.0 + 1e-9), None);
        assert_eq!(h.bin_index(f64::NAN), None);
    }
}
