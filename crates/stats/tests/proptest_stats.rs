//! Property-based tests of the statistics crate.

use lrd_stats::*;
use proptest::prelude::*;

fn series() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e3f64..1e3, 2..400)
}

proptest! {
    #[test]
    fn variance_is_nonnegative_and_shift_invariant(x in series(), shift in -1e3f64..1e3) {
        let v = variance(&x);
        prop_assert!(v >= -1e-9);
        let shifted: Vec<f64> = x.iter().map(|&a| a + shift).collect();
        let vs = variance(&shifted);
        let scale = v.abs().max(1.0);
        prop_assert!((v - vs).abs() < 1e-6 * scale, "{} vs {}", v, vs);
    }

    #[test]
    fn summary_agrees_with_two_pass(x in series()) {
        let mut s = Summary::new();
        for &v in &x {
            s.push(v);
        }
        prop_assert!((s.mean() - mean(&x)).abs() < 1e-8 * mean(&x).abs().max(1.0));
        prop_assert!((s.variance() - variance(&x)).abs() < 1e-6 * variance(&x).max(1.0));
    }

    #[test]
    fn autocorrelation_bounded(x in series()) {
        prop_assume!(variance(&x) > 1e-9);
        let max_lag = (x.len() - 1).min(20);
        let rho = autocorrelation(&x, max_lag);
        prop_assert!((rho[0] - 1.0).abs() < 1e-9);
        for &r in &rho {
            prop_assert!(r.abs() <= 1.0 + 1e-6, "autocorrelation {r} out of range");
        }
    }

    #[test]
    fn histogram_conserves_counts(x in proptest::collection::vec(-100.0f64..100.0, 1..500), bins in 1usize..60) {
        let h = Histogram::from_data(&x, bins);
        prop_assert_eq!(h.total() as usize, x.len());
        let p = h.probabilities();
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantize_is_total(x in proptest::collection::vec(-100.0f64..100.0, 1..200), bins in 1usize..30) {
        let h = Histogram::from_data(&x, bins);
        let q = h.quantize(&x);
        prop_assert_eq!(q.len(), x.len());
        prop_assert!(q.iter().all(|&i| i < bins));
    }

    #[test]
    fn mean_run_length_bounds(labels in proptest::collection::vec(0usize..5, 1..300)) {
        let m = mean_run_length(&labels);
        prop_assert!(m >= 1.0 - 1e-12);
        prop_assert!(m <= labels.len() as f64 + 1e-12);
    }

    #[test]
    fn linear_fit_recovers_exact_lines(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        xs in proptest::collection::vec(-50.0f64..50.0, 2..50),
    ) {
        // Need at least two distinct x.
        let mut distinct = xs.clone();
        distinct.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        prop_assume!(distinct.len() >= 2);
        let mut xs = xs;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assume!((xs[0] - xs[xs.len() - 1]).abs() > 1e-6);
        let ys: Vec<f64> = xs.iter().map(|&x| intercept + slope * x).collect();
        let f = linear_fit(&xs, &ys);
        prop_assert!((f.slope - slope).abs() < 1e-6 * slope.abs().max(1.0));
        prop_assert!((f.intercept - intercept).abs() < 1e-5 * intercept.abs().max(1.0));
    }

    #[test]
    fn aggregation_preserves_grand_mean(x in proptest::collection::vec(-100.0f64..100.0, 8..256), m in 1usize..8) {
        let agg = lrd_stats::hurst::aggregate(&x, m);
        prop_assume!(!agg.is_empty());
        // Means agree on the truncated prefix.
        let used = agg.len() * m;
        let prefix_mean = mean(&x[..used]);
        prop_assert!((mean(&agg) - prefix_mean).abs() < 1e-9 * prefix_mean.abs().max(1.0));
    }
}
