//! Property-based tests of the statistics crate, run as seeded
//! hand-rolled case loops; each case's seed offset appears in the
//! assertion message so failures replay deterministically.

use lrd_rng::{rngs::SmallRng, Rng, SeedableRng};
use lrd_stats::*;

const CASES: u64 = 64;

fn series(rng: &mut SmallRng) -> Vec<f64> {
    let len = rng.gen_range(2usize..400);
    (0..len).map(|_| rng.gen_range(-1e3..1e3)).collect()
}

#[test]
fn variance_is_nonnegative_and_shift_invariant() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x57_0000 + case);
        let x = series(&mut rng);
        let shift = rng.gen_range(-1e3..1e3);
        let v = variance(&x);
        assert!(v >= -1e-9, "case {case}");
        let shifted: Vec<f64> = x.iter().map(|&a| a + shift).collect();
        let vs = variance(&shifted);
        let scale = v.abs().max(1.0);
        assert!((v - vs).abs() < 1e-6 * scale, "case {case}: {v} vs {vs}");
    }
}

#[test]
fn summary_agrees_with_two_pass() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x57_1000 + case);
        let x = series(&mut rng);
        let mut s = Summary::new();
        for &v in &x {
            s.push(v);
        }
        assert!(
            (s.mean() - mean(&x)).abs() < 1e-8 * mean(&x).abs().max(1.0),
            "case {case}"
        );
        assert!(
            (s.variance() - variance(&x)).abs() < 1e-6 * variance(&x).max(1.0),
            "case {case}"
        );
    }
}

#[test]
fn autocorrelation_bounded() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x57_2000 + case);
        let x = series(&mut rng);
        if variance(&x) <= 1e-9 {
            continue;
        }
        let max_lag = (x.len() - 1).min(20);
        let rho = autocorrelation(&x, max_lag);
        assert!((rho[0] - 1.0).abs() < 1e-9, "case {case}");
        for &r in &rho {
            assert!(r.abs() <= 1.0 + 1e-6, "case {case}: autocorrelation {r} out of range");
        }
    }
}

#[test]
fn histogram_conserves_counts() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x57_3000 + case);
        let len = rng.gen_range(1usize..500);
        let x: Vec<f64> = (0..len).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let bins = rng.gen_range(1usize..60);
        let h = Histogram::from_data(&x, bins);
        assert_eq!(h.total() as usize, x.len(), "case {case}");
        let p = h.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn histogram_quantize_is_total() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x57_4000 + case);
        let len = rng.gen_range(1usize..200);
        let x: Vec<f64> = (0..len).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let bins = rng.gen_range(1usize..30);
        let h = Histogram::from_data(&x, bins);
        let q = h.quantize(&x);
        assert_eq!(q.len(), x.len(), "case {case}");
        assert!(q.iter().all(|&i| i < bins), "case {case}");
    }
}

#[test]
fn mean_run_length_bounds() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x57_5000 + case);
        let len = rng.gen_range(1usize..300);
        let labels: Vec<usize> = (0..len).map(|_| rng.gen_range(0usize..5)).collect();
        let m = mean_run_length(&labels);
        assert!(m >= 1.0 - 1e-12, "case {case}");
        assert!(m <= labels.len() as f64 + 1e-12, "case {case}");
    }
}

#[test]
fn linear_fit_recovers_exact_lines() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x57_6000 + case);
        let slope = rng.gen_range(-100.0..100.0);
        let intercept = rng.gen_range(-100.0..100.0);
        let len = rng.gen_range(2usize..50);
        let mut xs: Vec<f64> = (0..len).map(|_| rng.gen_range(-50.0..50.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Need at least two well-separated abscissae.
        if (xs[0] - xs[xs.len() - 1]).abs() <= 1e-6 {
            continue;
        }
        let ys: Vec<f64> = xs.iter().map(|&x| intercept + slope * x).collect();
        let f = linear_fit(&xs, &ys);
        assert!(
            (f.slope - slope).abs() < 1e-6 * slope.abs().max(1.0),
            "case {case}: slope {} vs {slope}",
            f.slope
        );
        assert!(
            (f.intercept - intercept).abs() < 1e-5 * intercept.abs().max(1.0),
            "case {case}: intercept {} vs {intercept}",
            f.intercept
        );
    }
}

#[test]
fn aggregation_preserves_grand_mean() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x57_7000 + case);
        let len = rng.gen_range(8usize..256);
        let x: Vec<f64> = (0..len).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let m = rng.gen_range(1usize..8);
        let agg = lrd_stats::hurst::aggregate(&x, m);
        if agg.is_empty() {
            continue;
        }
        // Means agree on the truncated prefix.
        let used = agg.len() * m;
        let prefix_mean = mean(&x[..used]);
        assert!(
            (mean(&agg) - prefix_mean).abs() < 1e-9 * prefix_mean.abs().max(1.0),
            "case {case}"
        );
    }
}
