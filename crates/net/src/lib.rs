//! The shared JSON-line socket transport: endpoint addressing, listener
//! and connect plumbing, and newline framing.
//!
//! The framing is deliberately primitive — connection-per-request over
//! localhost TCP or a Unix socket, each side writing a single
//! newline-terminated JSON object. There is no pipelining, no session
//! state on the wire, and no partial-read protocol to get wrong: every
//! piece of durable state lives with the peers (lease logs,
//! checkpoints, in-memory engines), so a connection dying at ANY byte
//! loses nothing — the client simply retries.
//!
//! Message *types* stay with their owners (the sweep coordinator's
//! request/response enums live in `lrd-experiments`, the serving
//! daemon's in `lrd-serve`); this crate only owns the bytes-on-a-socket
//! layer they share.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Per-connection read/write timeout. Requests are tiny and local;
/// anything slower than this is a dead peer.
pub const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Hard cap on a protocol line. The largest legitimate message is a
/// few kilobytes, not megabytes.
pub const LINE_CAP: usize = 1 << 20;

/// Where a server listens: `host:port` TCP or `unix:<path>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7077` (or `:0` to let the OS
    /// pick; [`Listener::local_endpoint`] reports the resolved port).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `unix:<path>` or `host:port`.
    pub fn parse(s: &str) -> Option<Endpoint> {
        if let Some(path) = s.strip_prefix("unix:") {
            (!path.is_empty()).then(|| Endpoint::Unix(PathBuf::from(path)))
        } else {
            s.contains(':').then(|| Endpoint::Tcp(s.to_string()))
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A duplex protocol connection (TCP or Unix stream).
pub trait Conn: Read + Write + Send {}
impl Conn for TcpStream {}
#[cfg(unix)]
impl Conn for UnixStream {}

/// A server's listening socket, in nonblocking accept mode so a
/// single-threaded serve loop can interleave accepts with periodic
/// work (lease reclaim scans, model ticks).
pub enum Listener {
    /// TCP on localhost.
    Tcp(TcpListener),
    /// Unix-domain socket; the path is removed again on drop.
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds the endpoint. A stale Unix socket file from a killed
    /// server is removed first — the peers' durable state, not the
    /// socket, is authoritative. TCP rebinds the same port after a
    /// kill thanks to `SO_REUSEADDR` (set by the standard library on
    /// Unix).
    pub fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Tcp(listener))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Unix(listener, path.clone()))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-socket endpoints require a unix platform",
            )),
        }
    }

    /// The endpoint actually bound — resolves `:0` to the assigned
    /// port so orchestrators can advertise it to clients.
    pub fn local_endpoint(&self) -> Endpoint {
        match self {
            Listener::Tcp(l) => Endpoint::Tcp(
                l.local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "127.0.0.1:0".to_string()),
            ),
            #[cfg(unix)]
            Listener::Unix(_, path) => Endpoint::Unix(path.clone()),
        }
    }

    /// Accepts one pending connection, configured blocking with
    /// [`IO_TIMEOUT`] read/write deadlines. `WouldBlock` means no
    /// client is waiting — the serve loop sleeps briefly and does its
    /// periodic work.
    pub fn accept(&self) -> io::Result<Box<dyn Conn>> {
        fn configure<S>(stream: S) -> io::Result<S>
        where
            S: Conn + SetTimeouts,
        {
            stream.set_nonblocking(false)?;
            stream.set_read_timeout(Some(IO_TIMEOUT))?;
            stream.set_write_timeout(Some(IO_TIMEOUT))?;
            Ok(stream)
        }
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                Ok(Box::new(configure(stream)?))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (stream, _) = l.accept()?;
                Ok(Box::new(configure(stream)?))
            }
        }
    }
}

#[cfg(unix)]
impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// The socket-option subset shared by TCP and Unix streams.
pub trait SetTimeouts {
    /// See [`TcpStream::set_nonblocking`].
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;
    /// See [`TcpStream::set_read_timeout`].
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
    /// See [`TcpStream::set_write_timeout`].
    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
}

macro_rules! impl_set_timeouts {
    ($ty:ty) => {
        impl SetTimeouts for $ty {
            fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
                <$ty>::set_nonblocking(self, nonblocking)
            }
            fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
                <$ty>::set_read_timeout(self, dur)
            }
            fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
                <$ty>::set_write_timeout(self, dur)
            }
        }
    };
}
impl_set_timeouts!(TcpStream);
#[cfg(unix)]
impl_set_timeouts!(UnixStream);

/// Connects to a server with [`IO_TIMEOUT`] deadlines on connect,
/// read, and write.
pub fn connect(endpoint: &Endpoint) -> io::Result<Box<dyn Conn>> {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, format!("cannot resolve {addr}"))
            })?;
            let stream = TcpStream::connect_timeout(&resolved, IO_TIMEOUT)?;
            stream.set_read_timeout(Some(IO_TIMEOUT))?;
            stream.set_write_timeout(Some(IO_TIMEOUT))?;
            Ok(Box::new(stream))
        }
        #[cfg(unix)]
        Endpoint::Unix(path) => {
            let stream = UnixStream::connect(path)?;
            stream.set_read_timeout(Some(IO_TIMEOUT))?;
            stream.set_write_timeout(Some(IO_TIMEOUT))?;
            Ok(Box::new(stream))
        }
        #[cfg(not(unix))]
        Endpoint::Unix(_) => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "unix-socket endpoints require a unix platform",
        )),
    }
}

/// Writes one newline-terminated protocol line.
pub fn send_line(conn: &mut dyn Conn, line: &str) -> io::Result<()> {
    conn.write_all(line.as_bytes())?;
    conn.write_all(b"\n")?;
    conn.flush()
}

/// Reads one newline-terminated protocol line, capped at [`LINE_CAP`].
pub fn recv_line(conn: &mut dyn Conn) -> io::Result<String> {
    let mut reader = BufReader::new(conn).take(LINE_CAP as u64 + 1);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.len() > LINE_CAP {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "protocol line exceeds cap",
        ));
    }
    if line.ends_with('\n') {
        line.pop();
    }
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_round_trips() {
        let tcp = Endpoint::parse("127.0.0.1:7077").unwrap();
        assert_eq!(tcp, Endpoint::Tcp("127.0.0.1:7077".to_string()));
        assert_eq!(Endpoint::parse(&tcp.to_string()), Some(tcp));
        let unix = Endpoint::parse("unix:/tmp/coord.sock").unwrap();
        assert_eq!(unix, Endpoint::Unix(PathBuf::from("/tmp/coord.sock")));
        assert_eq!(Endpoint::parse(&unix.to_string()), Some(unix));
        assert_eq!(Endpoint::parse("no-port-here"), None);
        assert_eq!(Endpoint::parse("unix:"), None);
    }

    #[test]
    fn lines_cross_a_real_socket() {
        // One request-response exchange over loopback TCP, the framing
        // every protocol in the tree uses.
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).unwrap();
        let endpoint = listener.local_endpoint();

        let server = std::thread::spawn(move || {
            // Nonblocking accept: poll until the client connects.
            let mut conn = loop {
                match listener.accept() {
                    Ok(conn) => break conn,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => panic!("accept: {e}"),
                }
            };
            let line = recv_line(conn.as_mut()).unwrap();
            send_line(conn.as_mut(), "{\"kind\":\"pong\"}").unwrap();
            line
        });

        let mut conn = connect(&endpoint).unwrap();
        send_line(conn.as_mut(), "{\"kind\":\"ping\"}").unwrap();
        assert_eq!(recv_line(conn.as_mut()).unwrap(), "{\"kind\":\"pong\"}");
        assert_eq!(server.join().unwrap(), "{\"kind\":\"ping\"}");
    }

    #[test]
    fn oversized_line_is_rejected() {
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).unwrap();
        let endpoint = listener.local_endpoint();
        let server = std::thread::spawn(move || {
            let mut conn = loop {
                match listener.accept() {
                    Ok(conn) => break conn,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => panic!("accept: {e}"),
                }
            };
            recv_line(conn.as_mut())
        });
        let mut conn = connect(&endpoint).unwrap();
        let oversized = "x".repeat(LINE_CAP + 1);
        send_line(conn.as_mut(), &oversized).unwrap();
        let err = server.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_endpoint_works_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("lrd-net-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("net.sock");
        let endpoint = Endpoint::Unix(sock.clone());
        // Leave a stale socket file: bind must clear it.
        std::fs::write(&sock, b"").unwrap();
        let listener = Listener::bind(&endpoint).unwrap();
        let server = std::thread::spawn(move || {
            let mut conn = loop {
                match listener.accept() {
                    Ok(conn) => break conn,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => panic!("accept: {e}"),
                }
            };
            let line = recv_line(conn.as_mut()).unwrap();
            send_line(conn.as_mut(), "ok").unwrap();
            line
            // Listener dropped here: socket file removed.
        });
        let mut conn = connect(&endpoint).unwrap();
        send_line(conn.as_mut(), "hello").unwrap();
        assert_eq!(recv_line(conn.as_mut()).unwrap(), "ok");
        assert_eq!(server.join().unwrap(), "hello");
        assert!(!sock.exists(), "socket file must be removed on drop");
    }
}
