//! `lrd-pool` — a small fixed-size scoped thread pool.
//!
//! The solver advances two data-independent bounding chains per
//! iteration and the figure binaries solve many independent
//! `(model, buffer, cutoff)` points per sweep; both are embarrassingly
//! parallel, yet the workspace is hermetic by construction (DESIGN.md
//! §6) and carries no rayon. This crate supplies the minimal slice of
//! structured parallelism those two call sites need, on nothing but
//! `std::thread`:
//!
//! * [`Pool::scope`] — spawn borrowing tasks, wait for all of them,
//!   propagate the first panic;
//! * [`Pool::join`] — run two closures, one of them on the caller;
//! * [`Pool::par_map`] / [`par_map`] — map a slice to a `Vec` with the
//!   output in input order regardless of execution order.
//!
//! # Determinism
//!
//! The pool never changes *what* is computed, only *where*: every task
//! performs the same floating-point operations in the same order as the
//! serial path, so results are bit-for-bit identical for any thread
//! count (`tests/parallel_determinism.rs` pins this for the solver).
//! With one thread the pool spawns no workers at all and tasks run
//! inline at the `spawn` call site — exactly the serial execution
//! order.
//!
//! # Sizing
//!
//! The process-global pool ([`global`]/[`current`]) takes its size
//! from, in priority order: a [`set_global_threads`] call (the shared
//! CLI's `--threads N` flag), the `LRD_THREADS` environment variable,
//! and [`std::thread::available_parallelism`]. Tests and harnesses can
//! instead scope an explicitly sized pool over a region with
//! [`with_pool`]/[`with_threads`].
//!
//! # Blocking and progress
//!
//! A thread waiting for a scope to finish does not sleep while work is
//! queued: it pops and runs queued tasks itself (including tasks of
//! other scopes — cooperative helping). A thread therefore only blocks
//! when the queue is empty, which means every pending task is being
//! executed by some thread; nested scopes (a `par_map` point whose
//! solve itself calls `join`) cannot deadlock.

#![warn(missing_docs)]

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A queued unit of work: the erased task plus the scope it belongs
/// to (completion is signalled through the scope state).
struct Task {
    run: Box<dyn FnOnce() + Send + 'static>,
    scope: Arc<ScopeState>,
}

/// State shared by the workers and every scope: one queue, one
/// condvar. Scope completions notify the same condvar as work
/// arrivals so a waiter can never miss either signal.
struct Shared {
    queue: Mutex<QueueState>,
    signal: Condvar,
}

struct QueueState {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

/// Per-scope completion state. `pending` is only decremented while the
/// shared queue mutex is held, so a waiter that checks it under the
/// same mutex cannot miss the final notification.
struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fixed-size thread pool. `Pool::new(n)` provides `n`-way
/// parallelism: `n − 1` worker threads plus the calling thread, which
/// participates while waiting. Dropping the pool shuts the workers
/// down.
pub struct Pool {
    shared: Arc<Shared>,
    threads: usize,
    workers: Vec<JoinHandle<()>>,
    /// Reused by every serial (`threads == 1`) scope: inline tasks
    /// never touch the completion state, so sharing one keeps the
    /// serial hot path free of heap allocations.
    serial_state: Arc<ScopeState>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("threads", &self.threads).finish()
    }
}

impl Pool {
    /// Creates a pool providing `threads`-way parallelism.
    ///
    /// `threads == 1` spawns no workers: every task runs inline at its
    /// `spawn` call site, reproducing the serial execution order
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one thread");
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            signal: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lrd-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning pool worker thread")
            })
            .collect();
        Pool {
            shared,
            threads,
            workers,
            serial_state: Arc::new(ScopeState::new()),
        }
    }

    /// The parallelism this pool provides (workers + caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] on which borrowing tasks can be
    /// spawned, then waits for every spawned task before returning.
    /// The first task panic is re-raised on the caller once all tasks
    /// have finished.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            // Serial scopes run every task inline and never write the
            // completion state, so they can all share one allocation.
            state: if self.threads == 1 {
                Arc::clone(&self.serial_state)
            } else {
                Arc::new(ScopeState::new())
            },
            _env: PhantomData,
        };
        // The guard waits for all spawned tasks even if `f` itself
        // panics: tasks borrow data from the caller's frame, which
        // must not unwind while they are still running.
        let wait = WaitGuard { scope: &scope };
        let result = f(&scope);
        drop(wait);
        if let Some(payload) = lock(&scope.state.panic).take() {
            resume_unwind(payload);
        }
        result
    }

    /// Runs `a` and `b`, potentially in parallel (`b` on the calling
    /// thread), and returns both results. Panics from either closure
    /// propagate after both have finished.
    pub fn join<RA, RB, A, B>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        RA: Send,
        B: FnOnce() -> RB,
    {
        let mut ra = None;
        let rb = self.scope(|s| {
            s.spawn(|| ra = Some(a()));
            b()
        });
        (ra.expect("join task completed"), rb)
    }

    /// Maps `f` over `items`, potentially in parallel, collecting the
    /// results in input order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        self.scope(|s| {
            for (slot, item) in out.iter_mut().zip(items) {
                let f = &f;
                s.spawn(move || *slot = Some(f(item)));
            }
        });
        out.into_iter()
            .map(|r| r.expect("par_map task completed"))
            .collect()
    }

    /// Pops one queued task if any is available.
    fn try_pop(&self) -> Option<Task> {
        lock(&self.shared.queue).tasks.pop_front()
    }

    /// Waits until `state.pending` reaches zero, running queued tasks
    /// (of any scope) while there are some.
    fn wait_scope(&self, state: &ScopeState) {
        loop {
            if state.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            if let Some(task) = self.try_pop() {
                run_task(&self.shared, task);
                continue;
            }
            let guard = lock(&self.shared.queue);
            if state.pending.load(Ordering::Acquire) == 0 || !guard.tasks.is_empty() {
                continue; // re-check with the lock released
            }
            drop(self.shared.signal.wait(guard).unwrap_or_else(|e| e.into_inner()));
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        lock(&self.shared.queue).shutdown = true;
        self.shared.signal.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Executes one task, routing a panic into its scope state, and
/// signals completion under the shared queue mutex.
fn run_task(shared: &Shared, task: Task) {
    let Task { run, scope } = task;
    if let Err(payload) = catch_unwind(AssertUnwindSafe(run)) {
        lock(&scope.panic).get_or_insert(payload);
    }
    let _guard = lock(&shared.queue);
    scope.pending.fetch_sub(1, Ordering::Release);
    shared.signal.notify_all();
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let task = {
            let mut guard = lock(&shared.queue);
            loop {
                if let Some(task) = guard.tasks.pop_front() {
                    break task;
                }
                if guard.shutdown {
                    return;
                }
                guard = shared.signal.wait(guard).unwrap_or_else(|e| e.into_inner());
            }
        };
        run_task(shared, task);
    }
}

/// Handle for spawning borrowing tasks inside [`Pool::scope`].
pub struct Scope<'pool, 'env> {
    pool: &'pool Pool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`: tasks may borrow from the environment,
    /// so the lifetime must not shrink.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Spawns a task. With a single-thread pool the task runs inline,
    /// immediately; otherwise it is queued for any thread (worker or a
    /// waiting caller) to pick up before the scope ends.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        if self.pool.threads == 1 {
            // Serial path: run at the call site, panics propagate
            // directly — bit-for-bit the pre-pool behaviour.
            f();
            return;
        }
        let run: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: the scope (via `WaitGuard`) does not return until
        // `pending` reaches zero, so the task — and everything it
        // borrows from `'env` — is finished before any borrowed data
        // can be dropped or unwound past.
        let run: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(run) };
        self.state.pending.fetch_add(1, Ordering::Release);
        let task = Task {
            run,
            scope: Arc::clone(&self.state),
        };
        lock(&self.pool.shared.queue).tasks.push_back(task);
        self.pool.shared.signal.notify_all();
    }
}

struct WaitGuard<'a, 'pool, 'env> {
    scope: &'a Scope<'pool, 'env>,
}

impl Drop for WaitGuard<'_, '_, '_> {
    fn drop(&mut self) {
        self.scope.pool.wait_scope(&self.scope.state);
    }
}

// ------------------------------------------------------- global pool

static GLOBAL: OnceLock<Arc<Pool>> = OnceLock::new();
/// Thread count requested via [`set_global_threads`] before the global
/// pool was first used; 0 means "not requested".
static REQUESTED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static OVERRIDE: RefCell<Vec<Arc<Pool>>> = const { RefCell::new(Vec::new()) };
}

/// Default parallelism when nothing was configured: `LRD_THREADS` if
/// set to a positive integer, otherwise the machine's available
/// parallelism.
fn default_threads() -> usize {
    if let Ok(value) = std::env::var("LRD_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("lrd-pool: ignoring invalid LRD_THREADS={value:?} (want a positive integer)");
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Requests the size of the process-global pool (the shared CLI calls
/// this for `--threads N`). Returns `false` — and changes nothing —
/// when the global pool has already been built.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn set_global_threads(threads: usize) -> bool {
    assert!(threads >= 1, "thread count must be at least 1");
    if GLOBAL.get().is_some() {
        return false;
    }
    REQUESTED.store(threads, Ordering::SeqCst);
    GLOBAL.get().is_none()
}

/// The process-global pool, built on first use (see the crate docs for
/// how it is sized).
pub fn global() -> &'static Arc<Pool> {
    GLOBAL.get_or_init(|| {
        let requested = REQUESTED.load(Ordering::SeqCst);
        let threads = if requested >= 1 { requested } else { default_threads() };
        Arc::new(Pool::new(threads))
    })
}

/// The pool the current thread should use: the innermost
/// [`with_pool`] override, or the global pool.
pub fn current() -> Arc<Pool> {
    OVERRIDE.with(|stack| stack.borrow().last().cloned()).unwrap_or_else(|| Arc::clone(global()))
}

/// Runs `f` with `pool` as the calling thread's [`current`] pool.
/// Overrides nest; the previous pool is restored on exit (also on
/// panic).
pub fn with_pool<R>(pool: Arc<Pool>, f: impl FnOnce() -> R) -> R {
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            OVERRIDE.with(|stack| stack.borrow_mut().pop());
        }
    }
    OVERRIDE.with(|stack| stack.borrow_mut().push(pool));
    let _guard = PopGuard;
    f()
}

/// Runs `f` with a freshly built `threads`-sized pool as the calling
/// thread's [`current`] pool (the pool is torn down afterwards).
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    with_pool(Arc::new(Pool::new(threads)), f)
}

/// [`Pool::par_map`] on the [`current`] pool.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    current().par_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn join_returns_both_results() {
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            let (a, b) = pool.join(|| 6 * 7, || "ok".to_string());
            assert_eq!(a, 42);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn join_can_borrow_disjoint_mutable_state() {
        let mut x = vec![0u64; 64];
        let mut y = vec![0u64; 64];
        let pool = Pool::new(4);
        pool.join(
            || x.iter_mut().enumerate().for_each(|(i, v)| *v = i as u64),
            || y.iter_mut().enumerate().for_each(|(i, v)| *v = 2 * i as u64),
        );
        assert_eq!(x[63], 63);
        assert_eq!(y[63], 126);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..200).collect();
        for threads in [1, 3, 8] {
            let pool = Pool::new(threads);
            let out = pool.par_map(&items, |&i| i * i);
            assert_eq!(out, items.iter().map(|&i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scope_runs_every_task() {
        let counter = AtomicU64::new(0);
        let pool = Pool::new(4);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn panics_propagate_to_the_scope_caller() {
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            let err = catch_unwind(AssertUnwindSafe(|| {
                pool.scope(|s| {
                    s.spawn(|| panic!("worker exploded"));
                });
            }))
            .expect_err("scope must re-raise the task panic");
            let message = err
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| err.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            assert!(message.contains("worker exploded"), "payload was {message:?}");
        }
    }

    #[test]
    fn sibling_tasks_complete_even_when_one_panics() {
        let done = AtomicU64::new(0);
        let pool = Pool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("first"));
                for _ in 0..10 {
                    s.spawn(|| {
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        assert_eq!(done.load(Ordering::Relaxed), 10, "siblings must still run");
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = Pool::new(2);
        let items: Vec<u64> = (0..16).collect();
        let out = pool.par_map(&items, |&i| {
            let (a, b) = pool.join(|| i + 1, || i + 2);
            a * b
        });
        assert_eq!(out[3], 4 * 5);
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn single_thread_pool_spawns_no_workers_and_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.workers.len(), 0);
        let caller = std::thread::current().id();
        let mut task_thread = None;
        pool.scope(|s| {
            s.spawn(|| task_thread = Some(std::thread::current().id()));
        });
        assert_eq!(task_thread, Some(caller));
    }

    #[test]
    fn with_pool_overrides_current_and_restores() {
        let global_threads = current().threads();
        let seen = with_threads(3, || current().threads());
        assert_eq!(seen, 3);
        assert_eq!(current().threads(), global_threads);
    }

    #[test]
    fn telemetry_reaches_the_subscriber_from_worker_threads() {
        // The obs subscriber slot is process-global, so events emitted
        // by pool workers land in the same sink as the caller's — the
        // property the solver's per-chain telemetry relies on.
        let collector = Arc::new(lrd_obs::CollectingSubscriber::new());
        {
            let _guard = lrd_obs::install(collector.clone());
            let pool = Pool::new(4);
            pool.scope(|s| {
                for _ in 0..32 {
                    s.spawn(|| lrd_obs::counter("pool.test_ticks", 1));
                }
            });
        }
        assert_eq!(collector.snapshot().counter("pool.test_ticks"), Some(32));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = Pool::new(0);
    }
}
