//! Property-based tests of the FFT and convolution kernels, run as
//! seeded hand-rolled case loops (the workspace carries no external
//! property-testing framework). Every case derives from a fixed seed,
//! so failures reproduce exactly; the failing seed is in the message.

use lrd_fft::{convolve, convolve_direct, convolve_fft, fft, ifft, Complex, Convolver};
use lrd_rng::{rngs::SmallRng, Rng, SeedableRng};

const CASES: u64 = 64;

fn vec_in(rng: &mut SmallRng, lo: f64, hi: f64, max_len: usize) -> Vec<f64> {
    let len = rng.gen_range(1usize..max_len);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

fn small_vec(rng: &mut SmallRng) -> Vec<f64> {
    vec_in(rng, -100.0, 100.0, 80)
}

#[test]
fn fft_roundtrip_is_identity() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF0_0000 + case);
        let re = vec_in(&mut rng, -1e3, 1e3, 64);
        let n = re.len().next_power_of_two();
        let mut buf: Vec<Complex> = re.iter().map(|&x| Complex::new(x, 0.0)).collect();
        buf.resize(n, Complex::ZERO);
        let original = buf.clone();
        fft(&mut buf);
        ifft(&mut buf);
        for (a, b) in buf.iter().zip(&original) {
            assert!((*a - *b).abs() < 1e-8, "case {case}: roundtrip error");
        }
    }
}

#[test]
fn fft_matches_direct_convolution() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF1_0000 + case);
        let a = small_vec(&mut rng);
        let b = small_vec(&mut rng);
        let want = convolve_direct(&a, &b);
        let got = convolve_fft(&a, &b);
        assert_eq!(want.len(), got.len(), "case {case}");
        let scale: f64 = want.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (x, y) in want.iter().zip(&got) {
            assert!((x - y).abs() < 1e-9 * scale, "case {case}: {x} vs {y}");
        }
    }
}

#[test]
fn convolution_is_commutative() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF2_0000 + case);
        let a = small_vec(&mut rng);
        let b = small_vec(&mut rng);
        let ab = convolve(&a, &b);
        let ba = convolve(&b, &a);
        for (x, y) in ab.iter().zip(&ba) {
            assert!((x - y).abs() < 1e-9, "case {case}: {x} vs {y}");
        }
    }
}

#[test]
fn convolution_is_linear_in_first_argument() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF3_0000 + case);
        let a = small_vec(&mut rng);
        let b = small_vec(&mut rng);
        let k = rng.gen_range(-10.0..10.0);
        let scaled: Vec<f64> = a.iter().map(|&x| k * x).collect();
        let left = convolve(&scaled, &b);
        let right: Vec<f64> = convolve(&a, &b).iter().map(|&x| k * x).collect();
        let scale: f64 = right.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (x, y) in left.iter().zip(&right) {
            assert!((x - y).abs() < 1e-9 * scale, "case {case}: {x} vs {y}");
        }
    }
}

#[test]
fn mass_is_conserved_for_probability_vectors() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF4_0000 + case);
        let raw_a = vec_in(&mut rng, 0.0, 1.0, 50);
        let raw_b = vec_in(&mut rng, 0.0, 1.0, 50);
        let norm = |v: &[f64]| -> Option<Vec<f64>> {
            let s: f64 = v.iter().sum();
            if s <= 0.0 {
                None
            } else {
                Some(v.iter().map(|&x| x / s).collect())
            }
        };
        if let (Some(a), Some(b)) = (norm(&raw_a), norm(&raw_b)) {
            let c = convolve(&a, &b);
            let total: f64 = c.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "case {case}: mass {total}");
            assert!(c.iter().all(|&x| x >= -1e-12), "case {case}: negative mass");
        }
    }
}

#[test]
fn planned_convolver_is_consistent() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF5_0000 + case);
        let a = small_vec(&mut rng);
        let b = small_vec(&mut rng);
        let mut cv = Convolver::new(&a, b.len());
        let once = cv.conv(&b).to_vec();
        let twice = cv.conv(&b).to_vec();
        assert_eq!(once, twice, "case {case}: Convolver not reusable");
        let reference = convolve_direct(&a, &b);
        let scale: f64 = reference.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (x, y) in once.iter().zip(&reference) {
            assert!((x - y).abs() < 1e-9 * scale, "case {case}: {x} vs {y}");
        }
    }
}
