//! Property-based tests of the FFT and convolution kernels.

use lrd_fft::{convolve, convolve_direct, convolve_fft, fft, ifft, Complex, Convolver};
use proptest::prelude::*;

fn small_vec() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, 1..80)
}

proptest! {
    #[test]
    fn fft_roundtrip_is_identity(re in proptest::collection::vec(-1e3f64..1e3, 1..64)) {
        let n = re.len().next_power_of_two();
        let mut buf: Vec<Complex> = re.iter().map(|&x| Complex::new(x, 0.0)).collect();
        buf.resize(n, Complex::ZERO);
        let original = buf.clone();
        fft(&mut buf);
        ifft(&mut buf);
        for (a, b) in buf.iter().zip(&original) {
            prop_assert!((*a - *b).abs() < 1e-8, "roundtrip error");
        }
    }

    #[test]
    fn fft_matches_direct_convolution(a in small_vec(), b in small_vec()) {
        let want = convolve_direct(&a, &b);
        let got = convolve_fft(&a, &b);
        prop_assert_eq!(want.len(), got.len());
        let scale: f64 = want.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (x, y) in want.iter().zip(&got) {
            prop_assert!((x - y).abs() < 1e-9 * scale, "{} vs {}", x, y);
        }
    }

    #[test]
    fn convolution_is_commutative(a in small_vec(), b in small_vec()) {
        let ab = convolve(&a, &b);
        let ba = convolve(&b, &a);
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn convolution_is_linear_in_first_argument(
        a in small_vec(), b in small_vec(), k in -10.0f64..10.0
    ) {
        let scaled: Vec<f64> = a.iter().map(|&x| k * x).collect();
        let left = convolve(&scaled, &b);
        let right: Vec<f64> = convolve(&a, &b).iter().map(|&x| k * x).collect();
        let scale: f64 = right.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (x, y) in left.iter().zip(&right) {
            prop_assert!((x - y).abs() < 1e-9 * scale);
        }
    }

    #[test]
    fn mass_is_conserved_for_probability_vectors(
        raw_a in proptest::collection::vec(0.0f64..1.0, 1..50),
        raw_b in proptest::collection::vec(0.0f64..1.0, 1..50),
    ) {
        let norm = |v: &[f64]| -> Option<Vec<f64>> {
            let s: f64 = v.iter().sum();
            if s <= 0.0 { None } else { Some(v.iter().map(|&x| x / s).collect()) }
        };
        if let (Some(a), Some(b)) = (norm(&raw_a), (norm(&raw_b))) {
            let c = convolve(&a, &b);
            let total: f64 = c.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "mass {}", total);
            prop_assert!(c.iter().all(|&x| x >= -1e-12));
        }
    }

    #[test]
    fn planned_convolver_is_consistent(a in small_vec(), b in small_vec()) {
        let mut cv = Convolver::new(&a, b.len());
        let once = cv.conv(&b);
        let twice = cv.conv(&b);
        prop_assert_eq!(&once, &twice, "Convolver not reusable");
        let reference = convolve_direct(&a, &b);
        let scale: f64 = reference.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (x, y) in once.iter().zip(&reference) {
            prop_assert!((x - y).abs() < 1e-9 * scale);
        }
    }
}
