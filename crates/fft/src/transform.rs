//! Iterative radix-2 decimation-in-time FFT.
//!
//! [`Fft`] precomputes the bit-reversal permutation and twiddle factors
//! for a fixed power-of-two size so that repeated transforms (the loss
//! solver transforms the same-size vectors hundreds of times per solve)
//! pay the trigonometry cost once.

use crate::complex::Complex;

/// Returns the smallest power of two `>= n` (and `>= 1`).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// A planned FFT of fixed power-of-two length.
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    /// Twiddle factors `e^{-2πik/n}` for `k in 0..n/2`.
    twiddles: Vec<Complex>,
    /// Bit-reversal permutation of `0..n`.
    rev: Vec<u32>,
}

impl Fft {
    /// Plans a transform of length `n`, which must be a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
        assert!(n <= u32::MAX as usize, "FFT length too large");
        let twiddles = (0..n / 2)
            .map(|k| Complex::from_polar_unit(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        Fft { n, twiddles, rev }
    }

    /// The planned transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the planned length is zero (it never is; kept
    /// for API completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward transform: `X[k] = Σ_j x[j] e^{-2πijk/n}`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned length.
    pub fn forward(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        self.permute(data);
        self.butterflies(data);
    }

    /// In-place inverse transform, including the `1/n` normalization:
    /// `x[j] = (1/n) Σ_k X[k] e^{+2πijk/n}`.
    pub fn inverse(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        // ifft(x) = conj(fft(conj(x))) / n
        for z in data.iter_mut() {
            *z = z.conj();
        }
        self.permute(data);
        self.butterflies(data);
        let inv_n = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.conj().scale(inv_n);
        }
    }

    fn permute(&self, data: &mut [Complex]) {
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }

    fn butterflies(&self, data: &mut [Complex]) {
        crate::simd::butterflies(data, &self.twiddles);
    }
}

/// A planned FFT of real input of fixed power-of-two length `n >= 2`,
/// computed with the classic N/2 trick: the even/odd samples are
/// packed into one complex vector of length `n/2`, transformed with a
/// half-size complex FFT, and the spectrum is untangled from the
/// hermitian symmetry. Compared to a full complex transform of the
/// zero-padded real input this halves the butterfly work — the
/// dominant per-iteration cost of the loss solver's convolutions.
///
/// The spectrum is produced **unpacked** as `n/2 + 1` complex bins
/// (`X[0]` and `X[n/2]` real), so that pointwise products of two
/// spectra — the convolution theorem — are plain complex multiplies
/// with no special-cased Nyquist bin.
///
/// Both directions take caller-owned scratch and output buffers and
/// perform no allocation once those have reached capacity; the
/// [`Convolver`](crate::Convolver) holds them persistently.
#[derive(Debug, Clone)]
pub struct RealFft {
    n: usize,
    half: Fft,
    /// Untangling twiddles `e^{-2πik/n}` for `k in 0..=n/2`.
    twiddles: Vec<Complex>,
}

impl RealFft {
    /// Plans a real transform of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "real FFT length must be at least 2, got {n}");
        assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
        let half = Fft::new(n / 2);
        let twiddles = (0..=n / 2)
            .map(|k| Complex::from_polar_unit(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        RealFft { n, half, twiddles }
    }

    /// The planned real input length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the planned length is zero (it never is; kept
    /// for API completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of spectrum bins produced: `n/2 + 1`.
    pub fn spectrum_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Forward transform of `input`, implicitly zero-padded to the
    /// planned length; the first `spectrum_len()` bins of the full
    /// hermitian spectrum land in `spectrum`. `work` is scratch; both
    /// output buffers are resized as needed (no allocation once warm).
    ///
    /// # Panics
    ///
    /// Panics if `input` is longer than the planned length.
    pub fn forward(&self, input: &[f64], work: &mut Vec<Complex>, spectrum: &mut Vec<Complex>) {
        assert!(
            input.len() <= self.n,
            "real FFT input length {} exceeds planned length {}",
            input.len(),
            self.n
        );
        let h = self.n / 2;
        // Pack z[j] = x[2j] + i·x[2j+1] (absent samples are zero).
        work.clear();
        work.resize(h, Complex::ZERO);
        for (j, z) in work.iter_mut().enumerate() {
            let re = input.get(2 * j).copied().unwrap_or(0.0);
            let im = input.get(2 * j + 1).copied().unwrap_or(0.0);
            *z = Complex::new(re, im);
        }
        self.half.forward(work);
        // Untangle: with Z = fft(z) and Z[h] := Z[0],
        //   Xe[k] = (Z[k] + conj(Z[h−k]))/2        (spectrum of evens)
        //   Xo[k] = −i·(Z[k] − conj(Z[h−k]))/2     (spectrum of odds)
        //   X[k]  = Xe[k] + e^{−2πik/n}·Xo[k],  k = 0..=h.
        spectrum.clear();
        spectrum.resize(h + 1, Complex::ZERO);
        for k in 0..=h {
            let zk = work[k % h];
            let zr = work[(h - k) % h].conj();
            let even = (zk + zr).scale(0.5);
            let odd = Complex::new(0.0, -0.5) * (zk - zr);
            spectrum[k] = even + self.twiddles[k] * odd;
        }
    }

    /// Inverse transform: reconstructs the `n` real samples from the
    /// `spectrum_len()` hermitian spectrum bins into `output`. `work`
    /// is scratch; both output buffers are resized as needed.
    ///
    /// # Panics
    ///
    /// Panics if `spectrum.len()` differs from [`RealFft::spectrum_len`].
    pub fn inverse(&self, spectrum: &[Complex], work: &mut Vec<Complex>, output: &mut Vec<f64>) {
        assert_eq!(
            spectrum.len(),
            self.spectrum_len(),
            "real FFT spectrum length mismatch"
        );
        let h = self.n / 2;
        // Re-tangle: Z[k] = Xe[k] + i·Xo[k] with
        //   Xe[k] = (X[k] + conj(X[h−k]))/2
        //   Xo[k] = e^{+2πik/n}·(X[k] − conj(X[h−k]))/2,  k = 0..h−1.
        work.clear();
        work.resize(h, Complex::ZERO);
        for (k, z) in work.iter_mut().enumerate() {
            let xk = spectrum[k];
            let xr = spectrum[h - k].conj();
            let even = (xk + xr).scale(0.5);
            let odd = self.twiddles[k].conj() * (xk - xr).scale(0.5);
            *z = even + Complex::new(0.0, 1.0) * odd;
        }
        self.half.inverse(work);
        output.clear();
        output.resize(self.n, 0.0);
        for (j, z) in work.iter().enumerate() {
            output[2 * j] = z.re;
            output[2 * j + 1] = z.im;
        }
    }
}

/// One-shot forward FFT of a power-of-two-length buffer.
pub fn fft(data: &mut [Complex]) {
    Fft::new(data.len()).forward(data);
}

/// One-shot inverse FFT (normalized) of a power-of-two-length buffer.
pub fn ifft(data: &mut [Complex]) {
    Fft::new(data.len()).inverse(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(n²) DFT used as the reference implementation.
    fn dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    let theta = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                    acc += v * Complex::from_polar_unit(theta);
                }
                acc
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "mismatch at {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 16, 64, 256] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let want = dft(&x);
            let mut got = x.clone();
            fft(&mut got);
            assert_close(&got, &want, 1e-9 * n as f64);
        }
    }

    #[test]
    fn roundtrip() {
        for &n in &[1usize, 2, 8, 128, 1024] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new(i as f64, -(i as f64) * 0.5))
                .collect();
            let mut y = x.clone();
            fft(&mut y);
            ifft(&mut y);
            assert_close(&y, &x, 1e-9 * n as f64);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        fft(&mut x);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-12);
            assert!(z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn constant_has_dc_only() {
        let mut x = vec![Complex::ONE; 32];
        fft(&mut x);
        assert!((x[0].re - 32.0).abs() < 1e-10);
        for z in &x[1..] {
            assert!(z.abs() < 1e-10);
        }
    }

    #[test]
    fn parseval() {
        let n = 256;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.1).cos()))
            .collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x.clone();
        fft(&mut y);
        let freq_energy: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn linearity() {
        let n = 64;
        let a: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.0)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(0.0, (i * i) as f64)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();

        let plan = Fft::new(n);
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        plan.forward(&mut fs);
        for i in 0..n {
            assert!((fs[i] - (fa[i] + fb[i])).abs() < 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        Fft::new(12);
    }

    #[test]
    fn real_fft_matches_complex_fft() {
        for &n in &[2usize, 4, 8, 16, 64, 256, 1024] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).sin() + 0.3).collect();
            // Reference: full complex transform, first n/2+1 bins.
            let mut full: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
            fft(&mut full);
            let plan = RealFft::new(n);
            let (mut work, mut spectrum) = (Vec::new(), Vec::new());
            plan.forward(&x, &mut work, &mut spectrum);
            assert_eq!(spectrum.len(), n / 2 + 1);
            assert_close(&spectrum, &full[..=n / 2], 1e-9 * n as f64);
        }
    }

    #[test]
    fn real_fft_zero_pads_short_input() {
        let n = 32;
        let x: Vec<f64> = (0..13).map(|i| i as f64 - 6.0).collect();
        let mut padded: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        padded.resize(n, Complex::ZERO);
        fft(&mut padded);
        let plan = RealFft::new(n);
        let (mut work, mut spectrum) = (Vec::new(), Vec::new());
        plan.forward(&x, &mut work, &mut spectrum);
        assert_close(&spectrum, &padded[..=n / 2], 1e-10);
    }

    #[test]
    fn real_fft_roundtrip() {
        for &n in &[2usize, 8, 128, 2048] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 1.7).cos() * (i % 5) as f64).collect();
            let plan = RealFft::new(n);
            let (mut work, mut spectrum, mut out) = (Vec::new(), Vec::new(), Vec::new());
            plan.forward(&x, &mut work, &mut spectrum);
            plan.inverse(&spectrum, &mut work, &mut out);
            assert_eq!(out.len(), n);
            for (i, (a, b)) in x.iter().zip(&out).enumerate() {
                assert!((a - b).abs() < 1e-9 * n as f64, "mismatch at {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn real_fft_buffers_do_not_grow_on_reuse() {
        let plan = RealFft::new(64);
        let x = vec![1.0; 64];
        let (mut work, mut spectrum, mut out) = (Vec::new(), Vec::new(), Vec::new());
        plan.forward(&x, &mut work, &mut spectrum);
        plan.inverse(&spectrum, &mut work, &mut out);
        let caps = (work.capacity(), spectrum.capacity(), out.capacity());
        for _ in 0..10 {
            plan.forward(&x, &mut work, &mut spectrum);
            plan.inverse(&spectrum, &mut work, &mut out);
        }
        assert_eq!(caps, (work.capacity(), spectrum.capacity(), out.capacity()));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn real_fft_rejects_length_one() {
        RealFft::new(1);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1023), 1024);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(1025), 2048);
    }
}
