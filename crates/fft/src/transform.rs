//! Iterative radix-2 decimation-in-time FFT.
//!
//! [`Fft`] precomputes the bit-reversal permutation and twiddle factors
//! for a fixed power-of-two size so that repeated transforms (the loss
//! solver transforms the same-size vectors hundreds of times per solve)
//! pay the trigonometry cost once.

use crate::complex::Complex;

/// Returns the smallest power of two `>= n` (and `>= 1`).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// A planned FFT of fixed power-of-two length.
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    /// Twiddle factors `e^{-2πik/n}` for `k in 0..n/2`.
    twiddles: Vec<Complex>,
    /// Bit-reversal permutation of `0..n`.
    rev: Vec<u32>,
}

impl Fft {
    /// Plans a transform of length `n`, which must be a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
        assert!(n <= u32::MAX as usize, "FFT length too large");
        let twiddles = (0..n / 2)
            .map(|k| Complex::from_polar_unit(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        Fft { n, twiddles, rev }
    }

    /// The planned transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the planned length is zero (it never is; kept
    /// for API completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward transform: `X[k] = Σ_j x[j] e^{-2πijk/n}`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned length.
    pub fn forward(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        self.permute(data);
        self.butterflies(data);
    }

    /// In-place inverse transform, including the `1/n` normalization:
    /// `x[j] = (1/n) Σ_k X[k] e^{+2πijk/n}`.
    pub fn inverse(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        // ifft(x) = conj(fft(conj(x))) / n
        for z in data.iter_mut() {
            *z = z.conj();
        }
        self.permute(data);
        self.butterflies(data);
        let inv_n = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.conj().scale(inv_n);
        }
    }

    fn permute(&self, data: &mut [Complex]) {
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }

    fn butterflies(&self, data: &mut [Complex]) {
        let n = self.n;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let w = self.twiddles[k * step];
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }
}

/// One-shot forward FFT of a power-of-two-length buffer.
pub fn fft(data: &mut [Complex]) {
    Fft::new(data.len()).forward(data);
}

/// One-shot inverse FFT (normalized) of a power-of-two-length buffer.
pub fn ifft(data: &mut [Complex]) {
    Fft::new(data.len()).inverse(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(n²) DFT used as the reference implementation.
    fn dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    let theta = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                    acc += v * Complex::from_polar_unit(theta);
                }
                acc
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "mismatch at {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 16, 64, 256] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let want = dft(&x);
            let mut got = x.clone();
            fft(&mut got);
            assert_close(&got, &want, 1e-9 * n as f64);
        }
    }

    #[test]
    fn roundtrip() {
        for &n in &[1usize, 2, 8, 128, 1024] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new(i as f64, -(i as f64) * 0.5))
                .collect();
            let mut y = x.clone();
            fft(&mut y);
            ifft(&mut y);
            assert_close(&y, &x, 1e-9 * n as f64);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        fft(&mut x);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-12);
            assert!(z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn constant_has_dc_only() {
        let mut x = vec![Complex::ONE; 32];
        fft(&mut x);
        assert!((x[0].re - 32.0).abs() < 1e-10);
        for z in &x[1..] {
            assert!(z.abs() < 1e-10);
        }
    }

    #[test]
    fn parseval() {
        let n = 256;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.1).cos()))
            .collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x.clone();
        fft(&mut y);
        let freq_energy: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn linearity() {
        let n = 64;
        let a: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.0)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(0.0, (i * i) as f64)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();

        let plan = Fft::new(n);
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        plan.forward(&mut fs);
        for i in 0..n {
            assert!((fs[i] - (fa[i] + fb[i])).abs() < 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        Fft::new(12);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1023), 1024);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(1025), 2048);
    }
}
