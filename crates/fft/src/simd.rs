//! Runtime-dispatched SIMD kernels for the FFT hot loops.
//!
//! # Dispatch policy
//!
//! The level is detected **once per process** (cached in a
//! [`OnceLock`]) and every kernel in this module dispatches on it:
//!
//! * `LRD_SIMD=off` (also `0`, `none`, `scalar`) forces the scalar
//!   path — CI byte-diffs a forced-scalar figure run against the
//!   default path to pin the bit-identity claim below;
//! * otherwise, on `x86_64` with AVX available at runtime, the AVX
//!   path is used;
//! * anything else (non-x86_64, no AVX) falls back to scalar.
//!
//! # Bit-identity contract
//!
//! Every vectorized kernel produces **bit-identical** results to its
//! scalar counterpart, so SIMD on/off can never change a figure:
//!
//! * no FMA anywhere — each multiply and add rounds separately,
//!   exactly like the scalar code;
//! * the complex multiply computes the imaginary part as
//!   `b.im*w.re + b.re*w.im` where the scalar trait writes
//!   `b.re*w.im + b.im*w.re` — IEEE 754 addition is commutative
//!   (identical bits for swapped operands), so the results agree
//!   bit for bit;
//! * [`axpy`] lanes are elementwise independent: no reassociation.
//!
//! The scalar fallbacks live here too, so the traversal order of every
//! kernel is defined in exactly one place.

use crate::complex::Complex;
use std::sync::OnceLock;

/// The instruction set the FFT kernels run with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar code, used everywhere SIMD is unavailable or
    /// disabled via `LRD_SIMD=off`.
    Scalar,
    /// 256-bit AVX: two complex doubles per butterfly.
    Avx,
}

/// The process-wide SIMD level (detected once, see module docs).
pub fn level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if let Ok(v) = std::env::var("LRD_SIMD") {
            let v = v.to_ascii_lowercase();
            if v == "off" || v == "0" || v == "none" || v == "scalar" {
                return SimdLevel::Scalar;
            }
        }
        detect()
    })
}

#[cfg(target_arch = "x86_64")]
fn detect() -> SimdLevel {
    if std::arch::is_x86_feature_detected!("avx") {
        SimdLevel::Avx
    } else {
        SimdLevel::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> SimdLevel {
    SimdLevel::Scalar
}

/// The full radix-2 decimation-in-time butterfly cascade over
/// bit-reversal-permuted `data`. `twiddles[k]` must hold
/// `e^{-2πik/n}` for `k in 0..n/2`.
pub fn butterflies(data: &mut [Complex], twiddles: &[Complex]) {
    match level() {
        SimdLevel::Scalar => butterflies_scalar(data, twiddles),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx => unsafe { butterflies_avx(data, twiddles) },
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx => butterflies_scalar(data, twiddles),
    }
}

fn butterflies_scalar(data: &mut [Complex], twiddles: &[Complex]) {
    let n = data.len();
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let step = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let w = twiddles[k * step];
                let a = data[start + k];
                let b = data[start + k + half] * w;
                data[start + k] = a + b;
                data[start + k + half] = a - b;
            }
        }
        len <<= 1;
    }
}

/// AVX butterfly cascade: two adjacent `k` positions per iteration
/// (four doubles), scalar for the odd remainder (only the `len == 2`
/// stage, whose half-width is 1). See the module docs for why this is
/// bit-identical to [`butterflies_scalar`].
///
/// # Safety
///
/// Requires AVX (guaranteed by the [`level`] dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn butterflies_avx(data: &mut [Complex], twiddles: &[Complex]) {
    use std::arch::x86_64::*;
    let n = data.len();
    // `Complex` is `repr(C)`: the buffer is [re, im, re, im, ...].
    let ptr = data.as_mut_ptr() as *mut f64;
    let tw = twiddles.as_ptr() as *const f64;
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let step = n / len;
        let mut start = 0;
        while start < n {
            let mut k = 0;
            while k + 2 <= half {
                // W = [w0.re, w0.im, w1.re, w1.im]
                let w = _mm256_set_m128d(
                    _mm_loadu_pd(tw.add(2 * (k + 1) * step)),
                    _mm_loadu_pd(tw.add(2 * k * step)),
                );
                let a_ptr = ptr.add(2 * (start + k));
                let b_ptr = ptr.add(2 * (start + k + half));
                let a = _mm256_loadu_pd(a_ptr);
                let b = _mm256_loadu_pd(b_ptr);
                let bw = cmul_avx(b, w);
                _mm256_storeu_pd(a_ptr, _mm256_add_pd(a, bw));
                _mm256_storeu_pd(b_ptr, _mm256_sub_pd(a, bw));
                k += 2;
            }
            while k < half {
                let w = twiddles[k * step];
                let a = data[start + k];
                let b = data[start + k + half] * w;
                data[start + k] = a + b;
                data[start + k + half] = a - b;
                k += 1;
            }
            start += len;
        }
        len <<= 1;
    }
}

/// Two packed complex multiplies `b*w` without FMA:
/// `re = b.re*w.re - b.im*w.im`, `im = b.im*w.re + b.re*w.im`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
#[inline]
unsafe fn cmul_avx(
    b: std::arch::x86_64::__m256d,
    w: std::arch::x86_64::__m256d,
) -> std::arch::x86_64::__m256d {
    use std::arch::x86_64::*;
    let wr = _mm256_movedup_pd(w); // [w.re, w.re, ...]
    let wi = _mm256_permute_pd(w, 0b1111); // [w.im, w.im, ...]
    let t1 = _mm256_mul_pd(b, wr); // [b.re*w.re, b.im*w.re, ...]
    let bs = _mm256_permute_pd(b, 0b0101); // [b.im, b.re, ...]
    let t2 = _mm256_mul_pd(bs, wi); // [b.im*w.im, b.re*w.im, ...]
    // addsub: even lanes subtract, odd lanes add.
    _mm256_addsub_pd(t1, t2)
}

/// Pointwise spectrum product `dst[k] *= src[k]` (the convolution
/// theorem's frequency-domain multiply), bit-identical to the scalar
/// `Complex` multiply.
pub fn cmul_assign(dst: &mut [Complex], src: &[Complex]) {
    debug_assert_eq!(dst.len(), src.len());
    match level() {
        SimdLevel::Scalar => cmul_assign_scalar(dst, src),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx => unsafe { cmul_assign_avx(dst, src) },
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx => cmul_assign_scalar(dst, src),
    }
}

fn cmul_assign_scalar(dst: &mut [Complex], src: &[Complex]) {
    for (x, k) in dst.iter_mut().zip(src) {
        *x *= *k;
    }
}

/// # Safety
///
/// Requires AVX (guaranteed by the [`level`] dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn cmul_assign_avx(dst: &mut [Complex], src: &[Complex]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let d = dst.as_mut_ptr() as *mut f64;
    let s = src.as_ptr() as *const f64;
    let mut i = 0;
    while i + 2 <= n {
        let x = _mm256_loadu_pd(d.add(2 * i));
        let k = _mm256_loadu_pd(s.add(2 * i));
        _mm256_storeu_pd(d.add(2 * i), cmul_avx(x, k));
        i += 2;
    }
    while i < n {
        dst[i] *= src[i];
        i += 1;
    }
}

/// `out[j] += s * x[j]` — the blocked direct convolution's inner
/// kernel. Lanes are independent (one multiply and one add per output
/// element), so the vectorized path is trivially bit-identical.
pub fn axpy(out: &mut [f64], s: f64, x: &[f64]) {
    debug_assert_eq!(out.len(), x.len());
    match level() {
        SimdLevel::Scalar => axpy_scalar(out, s, x),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx => unsafe { axpy_avx(out, s, x) },
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx => axpy_scalar(out, s, x),
    }
}

fn axpy_scalar(out: &mut [f64], s: f64, x: &[f64]) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o += s * v;
    }
}

/// # Safety
///
/// Requires AVX (guaranteed by the [`level`] dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn axpy_avx(out: &mut [f64], s: f64, x: &[f64]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let o = out.as_mut_ptr();
    let v = x.as_ptr();
    let sv = _mm256_set1_pd(s);
    let mut i = 0;
    while i + 4 <= n {
        let prod = _mm256_mul_pd(sv, _mm256_loadu_pd(v.add(i)));
        _mm256_storeu_pd(o.add(i), _mm256_add_pd(_mm256_loadu_pd(o.add(i)), prod));
        i += 4;
    }
    while i < n {
        *o.add(i) += s * *v.add(i);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn twiddles(n: usize) -> Vec<Complex> {
        (0..n / 2)
            .map(|k| Complex::from_polar_unit(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect()
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.73).cos()))
            .collect()
    }

    #[test]
    fn butterfly_paths_bitwise_equal() {
        for &n in &[1usize, 2, 4, 8, 64, 512] {
            let tw = twiddles(n);
            let mut scalar = ramp(n);
            let mut simd = scalar.clone();
            butterflies_scalar(&mut scalar, &tw);
            // Exercises whichever path `level()` picks; on AVX hosts
            // this is the vector path, elsewhere it re-runs scalar.
            butterflies(&mut simd, &tw);
            for (a, b) in scalar.iter().zip(&simd) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn cmul_assign_paths_bitwise_equal() {
        for &n in &[0usize, 1, 2, 3, 7, 129] {
            let src = ramp(n);
            let mut scalar = ramp(n);
            let mut simd = scalar.clone();
            cmul_assign_scalar(&mut scalar, &src);
            cmul_assign(&mut simd, &src);
            for (a, b) in scalar.iter().zip(&simd) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn butterfly_paths_bitwise_equal_across_1k_seeded_inputs() {
        // The bit-identity contract, property-tested: 1000 seeded
        // random inputs across the solver's transform sizes, scalar
        // cascade vs the dispatched (SIMD on AVX hosts) cascade.
        use lrd_rng::{Rng, SeedableRng};
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(0x5eed_f00d);
        for case in 0..1000u32 {
            let n = 1usize << (1 + (case % 10)); // 2 .. 1024
            let tw = twiddles(n);
            let mut scalar: Vec<Complex> = (0..n)
                .map(|_| Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
                .collect();
            let mut simd = scalar.clone();
            butterflies_scalar(&mut scalar, &tw);
            butterflies(&mut simd, &tw);
            for (i, (a, b)) in scalar.iter().zip(&simd).enumerate() {
                assert_eq!(
                    (a.re.to_bits(), a.im.to_bits()),
                    (b.re.to_bits(), b.im.to_bits()),
                    "case {case}, n={n}, bin {i}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn axpy_paths_bitwise_equal() {
        for &n in &[0usize, 1, 3, 4, 5, 17, 1000] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).tan()).collect();
            let mut scalar: Vec<f64> = (0..n).map(|i| i as f64 - 3.5).collect();
            let mut simd = scalar.clone();
            axpy_scalar(&mut scalar, -1.37, &x);
            axpy(&mut simd, -1.37, &x);
            for (a, b) in scalar.iter().zip(&simd) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
