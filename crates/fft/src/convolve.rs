//! Linear convolution of real sequences.
//!
//! Three entry points:
//!
//! * [`convolve_direct`] — the `O(nm)` schoolbook algorithm,
//! * [`convolve_fft`] — zero-padded FFT convolution, `O(N log N)`,
//! * [`convolve`] — picks whichever is cheaper for the given sizes.
//!
//! The loss solver convolves the *same* work-increment kernel against
//! an evolving occupancy vector on every iteration; [`Convolver`] caches
//! the kernel's spectrum and the FFT plan so each iteration costs two
//! transforms instead of three.

use crate::complex::Complex;
use crate::transform::{next_pow2, Fft};

/// Size product above which the FFT path wins over the direct path.
/// Chosen empirically (see `lrd-bench`'s `conv_crossover` bench); the
/// exact value is not critical because both paths are exact.
const DIRECT_THRESHOLD: usize = 64 * 1024;

/// Schoolbook linear convolution. Output length is `a.len() + b.len() - 1`
/// (empty if either input is empty).
pub fn convolve_direct(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let n = a.len() + b.len() - 1;
    let mut out = vec![0.0; n];
    // Iterate the shorter sequence in the outer loop for better locality.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    for (i, &s) in short.iter().enumerate() {
        if s == 0.0 {
            continue;
        }
        for (j, &l) in long.iter().enumerate() {
            out[i + j] += s * l;
        }
    }
    out
}

/// FFT-based linear convolution with zero padding to the next power of
/// two `>= a.len() + b.len() - 1`.
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = next_pow2(out_len);
    let plan = Fft::new(n);
    let mut fa: Vec<Complex> = a.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fa.resize(n, Complex::ZERO);
    let mut fb: Vec<Complex> = b.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fb.resize(n, Complex::ZERO);
    plan.forward(&mut fa);
    plan.forward(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    plan.inverse(&mut fa);
    fa.truncate(out_len);
    fa.into_iter().map(|z| z.re).collect()
}

/// Linear convolution choosing the direct or FFT path by size.
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.len().saturating_mul(b.len()) <= DIRECT_THRESHOLD {
        convolve_direct(a, b)
    } else {
        convolve_fft(a, b)
    }
}

/// A convolution plan for repeatedly convolving different signals of a
/// fixed length against a fixed kernel.
#[derive(Debug, Clone)]
pub struct Convolver {
    kernel_len: usize,
    signal_len: usize,
    /// `None` when the direct path is cheaper; then `kernel` holds the
    /// time-domain kernel instead.
    plan: Option<(Fft, Vec<Complex>)>,
    kernel: Vec<f64>,
    /// Scratch buffer reused across calls (FFT path only).
    scratch: Vec<Complex>,
}

impl Convolver {
    /// Plans convolution of signals of length `signal_len` against
    /// `kernel`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is empty or `signal_len` is zero.
    pub fn new(kernel: &[f64], signal_len: usize) -> Self {
        assert!(!kernel.is_empty(), "Convolver kernel must be non-empty");
        assert!(signal_len > 0, "Convolver signal length must be positive");
        let use_fft = kernel.len().saturating_mul(signal_len) > DIRECT_THRESHOLD;
        let mut plan_span = lrd_obs::span!(
            "fft.plan",
            kernel_len = kernel.len(),
            signal_len = signal_len,
        );
        plan_span.record("fft", use_fft);
        let plan = if use_fft {
            let out_len = kernel.len() + signal_len - 1;
            let n = next_pow2(out_len);
            let plan = Fft::new(n);
            let mut fk: Vec<Complex> = kernel.iter().map(|&x| Complex::new(x, 0.0)).collect();
            fk.resize(n, Complex::ZERO);
            plan.forward(&mut fk);
            Some((plan, fk))
        } else {
            None
        };
        Convolver {
            kernel_len: kernel.len(),
            signal_len,
            plan,
            kernel: kernel.to_vec(),
            scratch: Vec::new(),
        }
    }

    /// Output length of each convolution.
    pub fn output_len(&self) -> usize {
        self.kernel_len + self.signal_len - 1
    }

    /// Convolves `signal` (which must have the planned length) against
    /// the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len()` differs from the planned signal length.
    pub fn conv(&mut self, signal: &[f64]) -> Vec<f64> {
        assert_eq!(
            signal.len(),
            self.signal_len,
            "Convolver signal length mismatch"
        );
        // Per-call timing goes to a histogram rather than a span: the
        // solver calls this hundreds of thousands of times and a
        // span record per call would swamp any JSONL sink.
        let start = if lrd_obs::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let out = match &self.plan {
            None => convolve_direct(&self.kernel, signal),
            Some((plan, fk)) => {
                let n = plan.len();
                self.scratch.clear();
                self.scratch
                    .extend(signal.iter().map(|&x| Complex::new(x, 0.0)));
                self.scratch.resize(n, Complex::ZERO);
                plan.forward(&mut self.scratch);
                for (x, k) in self.scratch.iter_mut().zip(fk) {
                    *x *= *k;
                }
                plan.inverse(&mut self.scratch);
                self.scratch[..self.output_len()]
                    .iter()
                    .map(|z| z.re)
                    .collect()
            }
        };
        if let Some(start) = start {
            lrd_obs::histogram("fft.conv_us", start.elapsed().as_secs_f64() * 1e6);
            lrd_obs::counter("fft.convs", 1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn direct_known_values() {
        // [1,2,3] * [4,5] = [4, 13, 22, 15]
        let c = convolve_direct(&[1.0, 2.0, 3.0], &[4.0, 5.0]);
        assert_close(&c, &[4.0, 13.0, 22.0, 15.0], 1e-12);
    }

    #[test]
    fn identity_kernel() {
        let x = [3.0, -1.0, 2.5, 0.0, 7.0];
        let c = convolve_direct(&x, &[1.0]);
        assert_close(&c, &x, 1e-12);
    }

    #[test]
    fn fft_matches_direct() {
        for (la, lb) in [(1, 1), (3, 7), (17, 5), (100, 201), (64, 64), (1000, 2001)] {
            let a: Vec<f64> = (0..la).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
            let b: Vec<f64> = (0..lb).map(|i| ((i * 5) % 11) as f64 * 0.25).collect();
            let want = convolve_direct(&a, &b);
            let got = convolve_fft(&a, &b);
            assert_close(&got, &want, 1e-8);
        }
    }

    #[test]
    fn auto_path_matches() {
        let a: Vec<f64> = (0..500).map(|i| (i as f64 * 0.01).sin()).collect();
        let b: Vec<f64> = (0..999).map(|i| (i as f64 * 0.02).cos()).collect();
        assert_close(&convolve(&a, &b), &convolve_direct(&a, &b), 1e-8);
    }

    #[test]
    fn convolver_matches_free_function() {
        for &(lk, ls) in &[(5usize, 9usize), (101, 257), (513, 1024)] {
            let k: Vec<f64> = (0..lk).map(|i| (i as f64).sqrt()).collect();
            let s: Vec<f64> = (0..ls).map(|i| 1.0 / (1.0 + i as f64)).collect();
            let mut cv = Convolver::new(&k, ls);
            assert_close(&cv.conv(&s), &convolve_direct(&k, &s), 1e-8);
            // Call again to verify the scratch buffer is reusable.
            assert_close(&cv.conv(&s), &convolve_direct(&k, &s), 1e-8);
        }
    }

    #[test]
    fn convolver_forced_fft_path() {
        // Sizes above the threshold: product 512*512 = 262144 > 65536.
        let k: Vec<f64> = (0..512).map(|i| ((i % 7) as f64) - 3.0).collect();
        let s: Vec<f64> = (0..512).map(|i| ((i % 5) as f64) * 0.5).collect();
        let mut cv = Convolver::new(&k, s.len());
        assert!(cv.plan.is_some(), "expected FFT path");
        assert_close(&cv.conv(&s), &convolve_direct(&k, &s), 1e-7);
    }

    #[test]
    fn probability_mass_preserved() {
        // Convolving two probability vectors yields a probability vector.
        let p = [0.2, 0.5, 0.3];
        let q = [0.1, 0.4, 0.4, 0.1];
        for c in [convolve_direct(&p, &q), convolve_fft(&p, &q)] {
            let total: f64 = c.iter().sum();
            assert!((total - 1.0).abs() < 1e-12);
            assert!(c.iter().all(|&x| x >= -1e-12));
        }
    }

    #[test]
    fn commutativity() {
        let a = [1.0, -2.0, 3.0, 0.5];
        let b = [0.25, 4.0];
        assert_close(&convolve_direct(&a, &b), &convolve_direct(&b, &a), 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert!(convolve_direct(&[], &[1.0]).is_empty());
        assert!(convolve_fft(&[1.0], &[]).is_empty());
    }
}
