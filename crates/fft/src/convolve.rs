//! Linear convolution of real sequences.
//!
//! Three entry points:
//!
//! * [`convolve_direct`] — the `O(nm)` schoolbook algorithm,
//! * [`convolve_fft`] — zero-padded real-FFT convolution, `O(N log N)`,
//! * [`convolve`] — picks whichever is cheaper for the given sizes.
//!
//! The loss solver convolves the *same* work-increment kernel against
//! an evolving occupancy vector on every iteration; [`Convolver`]
//! caches the kernel's spectrum, shares the FFT plan through a
//! process-wide plan cache, and keeps every intermediate buffer alive
//! across calls, so the steady-state per-iteration cost is two
//! half-size real transforms and **zero heap allocations**
//! (`tests/telemetry_overhead.rs` pins the allocation count).

use crate::complex::Complex;
use crate::transform::{next_pow2, RealFft};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Size product above which the FFT path wins over the direct path.
/// Chosen empirically (see `lrd-bench`'s `conv_crossover` bench); the
/// exact value is not critical because both paths are exact.
///
/// Re-measured 2026-08 after the real-FFT fast path landed: at the
/// solver's shapes (kernel `2M+1`, signal `M+1`) the planned real-FFT
/// path breaks even between `M = 128` and `M = 256` (direct 27.0 µs
/// vs planned 22.1 µs at `M = 256`, product ≈ 132k) and is ~8× faster
/// by `M = 1024`. The threshold is kept at 64k — near the measured
/// crossover and slightly conservative in favour of the
/// allocation-free direct path, whose small-size cache behaviour is
/// better than the midpoint suggests.
const DIRECT_THRESHOLD: usize = 64 * 1024;

/// Process-wide cache of real-FFT plans, keyed by transform length.
///
/// The solver builds two [`Convolver`]s per grid level (one per
/// bounding chain) with identical padded lengths, and doubles the
/// length on every refinement; sweeps repeat those lengths across
/// hundreds of `(model, buffer)` points. Sharing the plans means the
/// twiddle/bit-reversal tables are computed once per distinct size per
/// process. Lengths are powers of two, so the cache stays tiny (at
/// most ~60 entries on a 64-bit machine) and is never evicted.
fn cached_plan(n: usize) -> Arc<RealFft> {
    static PLANS: Mutex<BTreeMap<usize, Arc<RealFft>>> = Mutex::new(BTreeMap::new());
    let mut plans = PLANS.lock().unwrap_or_else(|e| e.into_inner());
    Arc::clone(
        plans
            .entry(n)
            .or_insert_with(|| Arc::new(RealFft::new(n))),
    )
}

/// Schoolbook linear convolution. Output length is `a.len() + b.len() - 1`
/// (empty if either input is empty).
pub fn convolve_direct(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    convolve_direct_into(a, b, &mut out);
    out
}

/// [`convolve_direct`] into a caller-owned output buffer of length
/// `a.len() + b.len() - 1` (allocation-free for warm buffers).
fn convolve_direct_into(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(out.len(), a.len() + b.len() - 1);
    out.fill(0.0);
    // Iterate the shorter sequence in the outer loop for better locality.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    for (i, &s) in short.iter().enumerate() {
        if s == 0.0 {
            continue;
        }
        for (j, &l) in long.iter().enumerate() {
            out[i + j] += s * l;
        }
    }
}

/// FFT-based linear convolution with zero padding to the next power of
/// two `>= a.len() + b.len() - 1`, computed with two half-size real
/// transforms through the shared plan cache.
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    if out_len == 1 {
        // Padded length 1 is below the real transform's minimum; the
        // product is a single multiply anyway.
        return vec![a[0] * b[0]];
    }
    let plan = cached_plan(next_pow2(out_len));
    let mut work = Vec::new();
    let mut fa = Vec::new();
    let mut fb = Vec::new();
    plan.forward(a, &mut work, &mut fa);
    plan.forward(b, &mut work, &mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    let mut out = Vec::new();
    plan.inverse(&fa, &mut work, &mut out);
    out.truncate(out_len);
    out
}

/// Linear convolution choosing the direct or FFT path by size.
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.len().saturating_mul(b.len()) <= DIRECT_THRESHOLD {
        convolve_direct(a, b)
    } else {
        convolve_fft(a, b)
    }
}

/// A convolution plan for repeatedly convolving different signals of a
/// fixed length against a fixed kernel.
///
/// On the FFT path the kernel spectrum is computed once and every
/// scratch buffer (packed transform input, signal spectrum, real
/// output) lives in the struct, so steady-state calls to
/// [`Convolver::conv`] perform two half-size real transforms, one
/// pointwise product, and **no heap allocation**.
#[derive(Debug, Clone)]
pub struct Convolver {
    kernel_len: usize,
    signal_len: usize,
    /// `None` when the direct path is cheaper; then `kernel` holds the
    /// time-domain kernel instead.
    plan: Option<FftPath>,
    kernel: Vec<f64>,
    /// Real output buffer reused across calls (both paths).
    out: Vec<f64>,
}

#[derive(Debug, Clone)]
struct FftPath {
    plan: Arc<RealFft>,
    /// Kernel spectrum, `n/2 + 1` unpacked hermitian bins.
    kernel_spectrum: Vec<Complex>,
    /// Half-size packed transform scratch.
    work: Vec<Complex>,
    /// Signal spectrum, overwritten by the pointwise product.
    signal_spectrum: Vec<Complex>,
}

impl Convolver {
    /// Plans convolution of signals of length `signal_len` against
    /// `kernel`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is empty or `signal_len` is zero.
    pub fn new(kernel: &[f64], signal_len: usize) -> Self {
        assert!(!kernel.is_empty(), "Convolver kernel must be non-empty");
        assert!(signal_len > 0, "Convolver signal length must be positive");
        let out_len = kernel.len() + signal_len - 1;
        let use_fft = kernel.len().saturating_mul(signal_len) > DIRECT_THRESHOLD && out_len >= 2;
        let mut plan_span = lrd_obs::span!(
            "fft.plan",
            kernel_len = kernel.len(),
            signal_len = signal_len,
        );
        plan_span.record("fft", use_fft);
        let plan = use_fft.then(|| {
            let plan = cached_plan(next_pow2(out_len));
            let mut work = Vec::new();
            let mut kernel_spectrum = Vec::new();
            plan.forward(kernel, &mut work, &mut kernel_spectrum);
            FftPath {
                plan,
                kernel_spectrum,
                work,
                signal_spectrum: Vec::new(),
            }
        });
        Convolver {
            kernel_len: kernel.len(),
            signal_len,
            plan,
            kernel: kernel.to_vec(),
            out: Vec::new(),
        }
    }

    /// Output length of each convolution.
    pub fn output_len(&self) -> usize {
        self.kernel_len + self.signal_len - 1
    }

    /// Convolves `signal` (which must have the planned length) against
    /// the kernel. The result slice, of length
    /// [`Convolver::output_len`], borrows an internal buffer that is
    /// overwritten by the next call.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len()` differs from the planned signal length.
    pub fn conv(&mut self, signal: &[f64]) -> &[f64] {
        assert_eq!(
            signal.len(),
            self.signal_len,
            "Convolver signal length mismatch"
        );
        // Per-call timing goes to a histogram rather than a span: the
        // solver calls this hundreds of thousands of times and a
        // span record per call would swamp any JSONL sink.
        let start = if lrd_obs::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let out_len = self.output_len();
        match &mut self.plan {
            None => {
                self.out.resize(out_len, 0.0);
                convolve_direct_into(&self.kernel, signal, &mut self.out);
            }
            Some(path) => {
                path.plan
                    .forward(signal, &mut path.work, &mut path.signal_spectrum);
                for (x, k) in path.signal_spectrum.iter_mut().zip(&path.kernel_spectrum) {
                    *x *= *k;
                }
                path.plan
                    .inverse(&path.signal_spectrum, &mut path.work, &mut self.out);
            }
        }
        if let Some(start) = start {
            lrd_obs::histogram("fft.conv_us", start.elapsed().as_secs_f64() * 1e6);
            lrd_obs::counter("fft.convs", 1);
        }
        &self.out[..out_len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn direct_known_values() {
        // [1,2,3] * [4,5] = [4, 13, 22, 15]
        let c = convolve_direct(&[1.0, 2.0, 3.0], &[4.0, 5.0]);
        assert_close(&c, &[4.0, 13.0, 22.0, 15.0], 1e-12);
    }

    #[test]
    fn identity_kernel() {
        let x = [3.0, -1.0, 2.5, 0.0, 7.0];
        let c = convolve_direct(&x, &[1.0]);
        assert_close(&c, &x, 1e-12);
    }

    #[test]
    fn fft_matches_direct() {
        for (la, lb) in [(1, 1), (3, 7), (17, 5), (100, 201), (64, 64), (1000, 2001)] {
            let a: Vec<f64> = (0..la).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
            let b: Vec<f64> = (0..lb).map(|i| ((i * 5) % 11) as f64 * 0.25).collect();
            let want = convolve_direct(&a, &b);
            let got = convolve_fft(&a, &b);
            assert_close(&got, &want, 1e-8);
        }
    }

    #[test]
    fn auto_path_matches() {
        let a: Vec<f64> = (0..500).map(|i| (i as f64 * 0.01).sin()).collect();
        let b: Vec<f64> = (0..999).map(|i| (i as f64 * 0.02).cos()).collect();
        assert_close(&convolve(&a, &b), &convolve_direct(&a, &b), 1e-8);
    }

    #[test]
    fn convolver_matches_free_function() {
        for &(lk, ls) in &[(5usize, 9usize), (101, 257), (513, 1024)] {
            let k: Vec<f64> = (0..lk).map(|i| (i as f64).sqrt()).collect();
            let s: Vec<f64> = (0..ls).map(|i| 1.0 / (1.0 + i as f64)).collect();
            let mut cv = Convolver::new(&k, ls);
            assert_close(cv.conv(&s), &convolve_direct(&k, &s), 1e-8);
            // Call again to verify the scratch buffers are reusable.
            assert_close(cv.conv(&s), &convolve_direct(&k, &s), 1e-8);
        }
    }

    #[test]
    fn convolver_forced_fft_path() {
        // Sizes above the threshold: product 512*512 = 262144 > 65536.
        let k: Vec<f64> = (0..512).map(|i| ((i % 7) as f64) - 3.0).collect();
        let s: Vec<f64> = (0..512).map(|i| ((i % 5) as f64) * 0.5).collect();
        let mut cv = Convolver::new(&k, s.len());
        assert!(cv.plan.is_some(), "expected FFT path");
        assert_close(cv.conv(&s), &convolve_direct(&k, &s), 1e-7);
    }

    #[test]
    fn convolver_fft_path_steady_state_does_not_grow_buffers() {
        let k: Vec<f64> = (0..700).map(|i| (i as f64 * 0.013).sin() + 1.1).collect();
        let s: Vec<f64> = (0..300).map(|i| (i as f64 * 0.07).cos() + 1.1).collect();
        let mut cv = Convolver::new(&k, s.len());
        assert!(cv.plan.is_some(), "expected FFT path");
        let _ = cv.conv(&s);
        let path = cv.plan.as_ref().unwrap();
        let caps = (
            cv.out.capacity(),
            path.work.capacity(),
            path.signal_spectrum.capacity(),
        );
        for _ in 0..20 {
            let _ = cv.conv(&s);
        }
        let path = cv.plan.as_ref().unwrap();
        assert_eq!(
            caps,
            (
                cv.out.capacity(),
                path.work.capacity(),
                path.signal_spectrum.capacity(),
            ),
            "steady-state conv must not grow any buffer"
        );
    }

    #[test]
    fn plan_cache_shares_plans_between_convolvers() {
        let k: Vec<f64> = vec![0.25; 600];
        let a = Convolver::new(&k, 600);
        let b = Convolver::new(&k, 600);
        let (pa, pb) = (a.plan.as_ref().unwrap(), b.plan.as_ref().unwrap());
        assert!(
            Arc::ptr_eq(&pa.plan, &pb.plan),
            "same padded length must reuse the cached plan"
        );
    }

    #[test]
    fn probability_mass_preserved() {
        // Convolving two probability vectors yields a probability vector.
        let p = [0.2, 0.5, 0.3];
        let q = [0.1, 0.4, 0.4, 0.1];
        for c in [convolve_direct(&p, &q), convolve_fft(&p, &q)] {
            let total: f64 = c.iter().sum();
            assert!((total - 1.0).abs() < 1e-12);
            assert!(c.iter().all(|&x| x >= -1e-12));
        }
    }

    #[test]
    fn commutativity() {
        let a = [1.0, -2.0, 3.0, 0.5];
        let b = [0.25, 4.0];
        assert_close(&convolve_direct(&a, &b), &convolve_direct(&b, &a), 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert!(convolve_direct(&[], &[1.0]).is_empty());
        assert!(convolve_fft(&[1.0], &[]).is_empty());
    }

    #[test]
    fn single_sample_inputs() {
        assert_close(&convolve_fft(&[3.0], &[0.5]), &[1.5], 1e-12);
    }
}
