//! Linear convolution of real sequences.
//!
//! Three entry points:
//!
//! * [`convolve_direct`] — the `O(nm)` schoolbook algorithm,
//! * [`convolve_fft`] — zero-padded real-FFT convolution, `O(N log N)`,
//! * [`convolve`] — picks whichever is cheaper for the given sizes.
//!
//! The loss solver convolves the *same* work-increment kernel against
//! an evolving occupancy vector on every iteration; [`Convolver`]
//! caches the kernel's spectrum, shares the FFT plan through a
//! process-wide plan cache, and keeps every intermediate buffer alive
//! across calls, so the steady-state per-iteration cost is two
//! half-size real transforms and **zero heap allocations**
//! (`tests/telemetry_overhead.rs` pins the allocation count).

use crate::complex::Complex;
use crate::transform::{next_pow2, Fft, RealFft};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Size product above which the FFT path wins over the direct path.
/// Chosen empirically (see `lrd-bench`'s `conv_crossover` bench); the
/// exact value is not critical because both paths are exact.
///
/// Re-measured 2026-08 after the SIMD butterflies and the blocked
/// direct path landed (both sides got faster): at the solver's shapes
/// (kernel `2M+1`, signal `M+1`) the planned real-FFT path still
/// breaks even between `M = 128` (direct 5.4 µs vs planned 6.1 µs,
/// product ≈ 33k) and `M = 256` (direct 23.4 µs vs planned 11.4 µs,
/// product ≈ 132k), and is ~8× faster by `M = 1024`. The threshold is
/// kept at 64k — it sits inside the measured crossover window and
/// slightly favours the allocation-free direct path, whose small-size
/// cache behaviour is better than the midpoint suggests. Full table in
/// EXPERIMENTS.md ("Direct/FFT crossover").
const DIRECT_THRESHOLD: usize = 64 * 1024;

/// Two-level cache of FFT plans, keyed by transform length.
///
/// The solver builds two [`Convolver`]s per grid level (one per
/// bounding chain) with identical padded lengths, and doubles the
/// length on every refinement; sweeps repeat those lengths across
/// hundreds of `(model, buffer)` points. Sharing the plans means the
/// twiddle/bit-reversal tables are computed once per distinct size per
/// process. Lengths are powers of two, so the cache stays tiny (at
/// most ~60 entries on a 64-bit machine) and is never evicted.
///
/// The **read path is thread-local**: each worker keeps its own
/// `BTreeMap` of `Arc` clones, so steady-state lookups (every
/// `Convolver::new` during a `par_map` sweep) never touch a lock. The
/// `Mutex`-guarded global map remains the single source of truth, so
/// two threads asking for the same length still receive the *same*
/// plan allocation (`Arc::ptr_eq` holds across threads — pinned by
/// test) and memory stays bounded by the distinct-length count, not
/// the thread count. `lrd-bench`'s `plan_cache_contention` micro-bench
/// measures the difference against the old always-locking path.
macro_rules! two_level_plan_cache {
    ($fn_name:ident, $plan_ty:ty, $build:expr) => {
        fn $fn_name(n: usize) -> Arc<$plan_ty> {
            static GLOBAL: Mutex<BTreeMap<usize, Arc<$plan_ty>>> = Mutex::new(BTreeMap::new());
            thread_local! {
                static LOCAL: RefCell<BTreeMap<usize, Arc<$plan_ty>>> =
                    const { RefCell::new(BTreeMap::new()) };
            }
            LOCAL.with(|local| {
                let mut local = local.borrow_mut();
                if let Some(plan) = local.get(&n) {
                    return Arc::clone(plan);
                }
                let plan = {
                    let mut global = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
                    #[allow(clippy::redundant_closure_call)]
                    Arc::clone(global.entry(n).or_insert_with(|| Arc::new($build(n))))
                };
                local.insert(n, Arc::clone(&plan));
                plan
            })
        }
    };
}

two_level_plan_cache!(cached_plan, RealFft, RealFft::new);
two_level_plan_cache!(cached_complex_plan, Fft, Fft::new);

/// The process-wide shared [`RealFft`] plan of length `n` (rounded up
/// to the next power of two by the caller if needed). Every
/// [`Convolver`] on the FFT path resolves its plan through this cache;
/// the accessor is public so callers (and the `plan_cache_contention`
/// micro-bench) can hit the exact read path the solver hits.
pub fn shared_real_plan(n: usize) -> Arc<RealFft> {
    cached_plan(n)
}

/// The process-wide shared complex [`Fft`] plan of length `n` — the
/// cache behind [`Convolver::conv_pair`]'s full-length transforms.
pub fn shared_complex_plan(n: usize) -> Arc<Fft> {
    cached_complex_plan(n)
}

/// Schoolbook linear convolution. Output length is `a.len() + b.len() - 1`
/// (empty if either input is empty).
pub fn convolve_direct(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    convolve_direct_into(a, b, &mut out);
    out
}

/// Tile width (in doubles) of the blocked direct path: a 4 KiB slice
/// of the long operand stays L1-resident while every short-side
/// element streams its output window over it.
const DIRECT_TILE: usize = 512;

/// [`convolve_direct`] into a caller-owned output buffer of length
/// `a.len() + b.len() - 1` (allocation-free for warm buffers).
///
/// Cache-blocked: the long operand is walked in [`DIRECT_TILE`]-sized
/// tiles with the full short operand applied per tile, so the touched
/// output window stays in L1 instead of being re-fetched for every
/// short-side element. The inner kernel is [`crate::simd::axpy`],
/// whose lanes are elementwise independent — the scalar and SIMD
/// variants produce bit-identical output.
fn convolve_direct_into(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(out.len(), a.len() + b.len() - 1);
    out.fill(0.0);
    // Iterate the shorter sequence per tile for better locality.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut tile_start = 0;
    while tile_start < long.len() {
        let tile = &long[tile_start..(tile_start + DIRECT_TILE).min(long.len())];
        for (i, &s) in short.iter().enumerate() {
            if s == 0.0 {
                continue;
            }
            let base = i + tile_start;
            crate::simd::axpy(&mut out[base..base + tile.len()], s, tile);
        }
        tile_start += DIRECT_TILE;
    }
}

/// FFT-based linear convolution with zero padding to the next power of
/// two `>= a.len() + b.len() - 1`, computed with two half-size real
/// transforms through the shared plan cache.
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    if out_len == 1 {
        // Padded length 1 is below the real transform's minimum; the
        // product is a single multiply anyway.
        return vec![a[0] * b[0]];
    }
    let plan = cached_plan(next_pow2(out_len));
    let mut work = Vec::new();
    let mut fa = Vec::new();
    let mut fb = Vec::new();
    plan.forward(a, &mut work, &mut fa);
    plan.forward(b, &mut work, &mut fb);
    crate::simd::cmul_assign(&mut fa, &fb);
    let mut out = Vec::new();
    plan.inverse(&fa, &mut work, &mut out);
    out.truncate(out_len);
    out
}

/// Linear convolution choosing the direct or FFT path by size.
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.len().saturating_mul(b.len()) <= DIRECT_THRESHOLD {
        convolve_direct(a, b)
    } else {
        convolve_fft(a, b)
    }
}

/// A convolution plan for repeatedly convolving different signals of a
/// fixed length against a fixed kernel.
///
/// On the FFT path the kernel spectrum is computed once and every
/// scratch buffer (packed transform input, signal spectrum, real
/// output) lives in the struct, so steady-state calls to
/// [`Convolver::conv`] perform two half-size real transforms, one
/// pointwise product, and **no heap allocation**.
#[derive(Debug, Clone)]
pub struct Convolver {
    kernel_len: usize,
    signal_len: usize,
    /// `None` when the direct path is cheaper; then `kernel` holds the
    /// time-domain kernel instead.
    plan: Option<FftPath>,
    /// Batched two-signal path, built by the first [`Convolver::conv_pair`]
    /// call naming this convolver first.
    pair: Option<PairPath>,
    kernel: Vec<f64>,
    /// Real output buffer reused across calls (both paths).
    out: Vec<f64>,
}

#[derive(Debug, Clone)]
struct FftPath {
    plan: Arc<RealFft>,
    /// Kernel spectrum, `n/2 + 1` unpacked hermitian bins.
    kernel_spectrum: Vec<Complex>,
    /// Half-size packed transform scratch.
    work: Vec<Complex>,
    /// Signal spectrum, overwritten by the pointwise product.
    signal_spectrum: Vec<Complex>,
}

/// The batched two-signal path of [`Convolver::conv_pair`]: one
/// full-length *complex* transform carries both real signals at once
/// (`z = sig_a + i·sig_b`), and the combined kernel spectra fold both
/// pointwise products into a single pass. Built lazily on the first
/// `conv_pair` call and owned by the first convolver of the pair.
#[derive(Debug, Clone)]
struct PairPath {
    plan: Arc<Fft>,
    /// `(KA[k] + KB[k])/2` over all `n` bins.
    sum_spec: Vec<Complex>,
    /// `(KA[k] − KB[k])/2` over all `n` bins.
    diff_spec: Vec<Complex>,
    /// Packed signal transform `Z`, reused across calls.
    z: Vec<Complex>,
    /// Product spectrum / inverse-transform buffer.
    y: Vec<Complex>,
}

impl PairPath {
    fn build(kernel_a: &[f64], kernel_b: &[f64], n: usize) -> PairPath {
        let plan = cached_complex_plan(n);
        let spectrum = |kernel: &[f64]| {
            let mut buf = vec![Complex::ZERO; n];
            for (slot, &v) in buf.iter_mut().zip(kernel) {
                *slot = Complex::new(v, 0.0);
            }
            plan.forward(&mut buf);
            buf
        };
        let ka = spectrum(kernel_a);
        let kb = spectrum(kernel_b);
        let sum_spec = ka.iter().zip(&kb).map(|(&a, &b)| (a + b).scale(0.5)).collect();
        let diff_spec = ka.iter().zip(&kb).map(|(&a, &b)| (a - b).scale(0.5)).collect();
        lrd_obs::counter("fft.pair_plans", 1);
        PairPath {
            plan,
            sum_spec,
            diff_spec,
            z: Vec::new(),
            y: Vec::new(),
        }
    }
}

impl Convolver {
    /// Plans convolution of signals of length `signal_len` against
    /// `kernel`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is empty or `signal_len` is zero.
    pub fn new(kernel: &[f64], signal_len: usize) -> Self {
        assert!(!kernel.is_empty(), "Convolver kernel must be non-empty");
        assert!(signal_len > 0, "Convolver signal length must be positive");
        let out_len = kernel.len() + signal_len - 1;
        let use_fft = kernel.len().saturating_mul(signal_len) > DIRECT_THRESHOLD && out_len >= 2;
        let mut plan_span = lrd_obs::span!(
            "fft.plan",
            kernel_len = kernel.len(),
            signal_len = signal_len,
        );
        plan_span.record("fft", use_fft);
        let plan = use_fft.then(|| {
            let plan = cached_plan(next_pow2(out_len));
            let mut work = Vec::new();
            let mut kernel_spectrum = Vec::new();
            plan.forward(kernel, &mut work, &mut kernel_spectrum);
            FftPath {
                plan,
                kernel_spectrum,
                work,
                signal_spectrum: Vec::new(),
            }
        });
        Convolver {
            kernel_len: kernel.len(),
            signal_len,
            plan,
            pair: None,
            kernel: kernel.to_vec(),
            out: Vec::new(),
        }
    }

    /// Output length of each convolution.
    pub fn output_len(&self) -> usize {
        self.kernel_len + self.signal_len - 1
    }

    /// Convolves `signal` (which must have the planned length) against
    /// the kernel. The result slice, of length
    /// [`Convolver::output_len`], borrows an internal buffer that is
    /// overwritten by the next call.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len()` differs from the planned signal length.
    pub fn conv(&mut self, signal: &[f64]) -> &[f64] {
        assert_eq!(
            signal.len(),
            self.signal_len,
            "Convolver signal length mismatch"
        );
        // Per-call timing goes to a histogram rather than a span: the
        // solver calls this hundreds of thousands of times and a
        // span record per call would swamp any JSONL sink.
        let start = if lrd_obs::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let out_len = self.output_len();
        match &mut self.plan {
            None => {
                self.out.resize(out_len, 0.0);
                convolve_direct_into(&self.kernel, signal, &mut self.out);
            }
            Some(path) => {
                path.plan
                    .forward(signal, &mut path.work, &mut path.signal_spectrum);
                crate::simd::cmul_assign(&mut path.signal_spectrum, &path.kernel_spectrum);
                path.plan
                    .inverse(&path.signal_spectrum, &mut path.work, &mut self.out);
            }
        }
        if let Some(start) = start {
            lrd_obs::histogram("fft.conv_us", start.elapsed().as_secs_f64() * 1e6);
            lrd_obs::counter("fft.convs", 1);
        }
        &self.out[..out_len]
    }

    /// Convolves two same-length signals against two convolvers'
    /// kernels in **one batched transform**: the signals are packed as
    /// the real and imaginary halves of a single complex vector
    /// (`z = sig_a + i·sig_b`), transformed with one full-length
    /// complex FFT, multiplied by the precomputed combined kernel
    /// spectra
    /// `Y[k] = Z[k]·(KA[k]+KB[k])/2 + conj(Z[(n−k) mod n])·(KA[k]−KB[k])/2`,
    /// and inverse-transformed once — the real output lands in `ca`'s
    /// buffer, the imaginary in `cb`'s. The loss solver advances both
    /// bounding chains this way every iteration, replacing four
    /// half-size real transforms plus two untangle passes with two
    /// full-length passes and a single product loop.
    ///
    /// Falls back to two sequential [`Convolver::conv`] calls when
    /// either convolver is on the direct path. The path choice depends
    /// only on the planned sizes, never on threads or environment, so
    /// results are deterministic; within the FFT path, scalar and SIMD
    /// butterflies are bit-identical (see [`crate::simd`]).
    ///
    /// One `fft.conv_us` histogram sample covers the whole batched
    /// call (two convolutions); `fft.convs` still counts 2.
    ///
    /// # Panics
    ///
    /// Panics if the convolvers' planned kernel/signal lengths differ
    /// from each other or the signals' lengths differ from the plan.
    pub fn conv_pair<'a, 'b>(
        ca: &'a mut Convolver,
        cb: &'b mut Convolver,
        sig_a: &[f64],
        sig_b: &[f64],
    ) -> (&'a [f64], &'b [f64]) {
        assert_eq!(ca.kernel_len, cb.kernel_len, "conv_pair kernel length mismatch");
        assert_eq!(ca.signal_len, cb.signal_len, "conv_pair signal length mismatch");
        assert_eq!(sig_a.len(), ca.signal_len, "conv_pair signal length mismatch");
        assert_eq!(sig_b.len(), cb.signal_len, "conv_pair signal length mismatch");
        if ca.plan.is_none() || cb.plan.is_none() {
            let out_len = ca.output_len();
            let _ = ca.conv(sig_a);
            let _ = cb.conv(sig_b);
            return (&ca.out[..out_len], &cb.out[..out_len]);
        }
        let start = if lrd_obs::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let out_len = ca.output_len();
        let n = next_pow2(out_len);
        if ca.pair.as_ref().is_none_or(|p| p.plan.len() != n) {
            ca.pair = Some(PairPath::build(&ca.kernel, &cb.kernel, n));
        }
        let pair = ca.pair.as_mut().expect("pair path just built");
        pair.z.clear();
        pair.z.resize(n, Complex::ZERO);
        for (slot, (&a, &b)) in pair.z.iter_mut().zip(sig_a.iter().zip(sig_b)) {
            *slot = Complex::new(a, b);
        }
        pair.plan.forward(&mut pair.z);
        pair.y.clear();
        pair.y.resize(n, Complex::ZERO);
        for k in 0..n {
            let zr = pair.z[(n - k) % n].conj();
            pair.y[k] = pair.z[k] * pair.sum_spec[k] + zr * pair.diff_spec[k];
        }
        pair.plan.inverse(&mut pair.y);
        ca.out.clear();
        ca.out.resize(out_len, 0.0);
        cb.out.clear();
        cb.out.resize(out_len, 0.0);
        for (j, y) in pair.y[..out_len].iter().enumerate() {
            ca.out[j] = y.re;
            cb.out[j] = y.im;
        }
        if let Some(start) = start {
            lrd_obs::histogram("fft.conv_us", start.elapsed().as_secs_f64() * 1e6);
            lrd_obs::counter("fft.convs", 2);
        }
        (&ca.out[..out_len], &cb.out[..out_len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn direct_known_values() {
        // [1,2,3] * [4,5] = [4, 13, 22, 15]
        let c = convolve_direct(&[1.0, 2.0, 3.0], &[4.0, 5.0]);
        assert_close(&c, &[4.0, 13.0, 22.0, 15.0], 1e-12);
    }

    #[test]
    fn identity_kernel() {
        let x = [3.0, -1.0, 2.5, 0.0, 7.0];
        let c = convolve_direct(&x, &[1.0]);
        assert_close(&c, &x, 1e-12);
    }

    #[test]
    fn fft_matches_direct() {
        for (la, lb) in [(1, 1), (3, 7), (17, 5), (100, 201), (64, 64), (1000, 2001)] {
            let a: Vec<f64> = (0..la).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
            let b: Vec<f64> = (0..lb).map(|i| ((i * 5) % 11) as f64 * 0.25).collect();
            let want = convolve_direct(&a, &b);
            let got = convolve_fft(&a, &b);
            assert_close(&got, &want, 1e-8);
        }
    }

    #[test]
    fn auto_path_matches() {
        let a: Vec<f64> = (0..500).map(|i| (i as f64 * 0.01).sin()).collect();
        let b: Vec<f64> = (0..999).map(|i| (i as f64 * 0.02).cos()).collect();
        assert_close(&convolve(&a, &b), &convolve_direct(&a, &b), 1e-8);
    }

    #[test]
    fn convolver_matches_free_function() {
        for &(lk, ls) in &[(5usize, 9usize), (101, 257), (513, 1024)] {
            let k: Vec<f64> = (0..lk).map(|i| (i as f64).sqrt()).collect();
            let s: Vec<f64> = (0..ls).map(|i| 1.0 / (1.0 + i as f64)).collect();
            let mut cv = Convolver::new(&k, ls);
            assert_close(cv.conv(&s), &convolve_direct(&k, &s), 1e-8);
            // Call again to verify the scratch buffers are reusable.
            assert_close(cv.conv(&s), &convolve_direct(&k, &s), 1e-8);
        }
    }

    #[test]
    fn convolver_forced_fft_path() {
        // Sizes above the threshold: product 512*512 = 262144 > 65536.
        let k: Vec<f64> = (0..512).map(|i| ((i % 7) as f64) - 3.0).collect();
        let s: Vec<f64> = (0..512).map(|i| ((i % 5) as f64) * 0.5).collect();
        let mut cv = Convolver::new(&k, s.len());
        assert!(cv.plan.is_some(), "expected FFT path");
        assert_close(cv.conv(&s), &convolve_direct(&k, &s), 1e-7);
    }

    #[test]
    fn convolver_fft_path_steady_state_does_not_grow_buffers() {
        let k: Vec<f64> = (0..700).map(|i| (i as f64 * 0.013).sin() + 1.1).collect();
        let s: Vec<f64> = (0..300).map(|i| (i as f64 * 0.07).cos() + 1.1).collect();
        let mut cv = Convolver::new(&k, s.len());
        assert!(cv.plan.is_some(), "expected FFT path");
        let _ = cv.conv(&s);
        let path = cv.plan.as_ref().unwrap();
        let caps = (
            cv.out.capacity(),
            path.work.capacity(),
            path.signal_spectrum.capacity(),
        );
        for _ in 0..20 {
            let _ = cv.conv(&s);
        }
        let path = cv.plan.as_ref().unwrap();
        assert_eq!(
            caps,
            (
                cv.out.capacity(),
                path.work.capacity(),
                path.signal_spectrum.capacity(),
            ),
            "steady-state conv must not grow any buffer"
        );
    }

    #[test]
    fn plan_cache_shares_plans_between_convolvers() {
        let k: Vec<f64> = vec![0.25; 600];
        let a = Convolver::new(&k, 600);
        let b = Convolver::new(&k, 600);
        let (pa, pb) = (a.plan.as_ref().unwrap(), b.plan.as_ref().unwrap());
        assert!(
            Arc::ptr_eq(&pa.plan, &pb.plan),
            "same padded length must reuse the cached plan"
        );
    }

    #[test]
    fn probability_mass_preserved() {
        // Convolving two probability vectors yields a probability vector.
        let p = [0.2, 0.5, 0.3];
        let q = [0.1, 0.4, 0.4, 0.1];
        for c in [convolve_direct(&p, &q), convolve_fft(&p, &q)] {
            let total: f64 = c.iter().sum();
            assert!((total - 1.0).abs() < 1e-12);
            assert!(c.iter().all(|&x| x >= -1e-12));
        }
    }

    #[test]
    fn commutativity() {
        let a = [1.0, -2.0, 3.0, 0.5];
        let b = [0.25, 4.0];
        assert_close(&convolve_direct(&a, &b), &convolve_direct(&b, &a), 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert!(convolve_direct(&[], &[1.0]).is_empty());
        assert!(convolve_fft(&[1.0], &[]).is_empty());
    }

    #[test]
    fn single_sample_inputs() {
        assert_close(&convolve_fft(&[3.0], &[0.5]), &[1.5], 1e-12);
    }

    #[test]
    fn edge_sizes_match_direct() {
        // M=2-style tiny grids, odd kernel lengths, and sizes that
        // straddle the padded spectrum-length boundaries (pow2-1,
        // pow2, pow2+1 outputs).
        let cases: &[(usize, usize)] = &[
            (2, 2),
            (5, 2),
            (2, 5),
            (3, 3),
            (7, 9),
            (31, 34),   // out 64 = pow2
            (31, 33),   // out 63
            (31, 35),   // out 65
            (257, 129), // solver shape at M=128: kernel 2M+1, signal M+1
            (513, 256),
        ];
        for &(lk, ls) in cases {
            let k: Vec<f64> = (0..lk).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
            let s: Vec<f64> = (0..ls).map(|i| ((i * 11) % 5) as f64 * 0.3).collect();
            let want = {
                // Reference: plain schoolbook sum, independent of the
                // blocked traversal under test.
                let mut out = vec![0.0; lk + ls - 1];
                for (i, &kv) in k.iter().enumerate() {
                    for (j, &sv) in s.iter().enumerate() {
                        out[i + j] += kv * sv;
                    }
                }
                out
            };
            assert_close(&convolve_direct(&k, &s), &want, 1e-9);
            assert_close(&convolve_fft(&k, &s), &want, 1e-8);
            let mut cv = Convolver::new(&k, ls);
            assert_close(cv.conv(&s), &want, 1e-8);
        }
    }

    #[test]
    fn conv_pair_matches_direct_reference() {
        // FFT-path pair: the batched packed-complex transform must
        // agree with the schoolbook result for both chains.
        let lk = 701;
        let ls = 350;
        let ka: Vec<f64> = (0..lk).map(|i| (i as f64 * 0.013).sin() + 0.2).collect();
        let kb: Vec<f64> = (0..lk).map(|i| (i as f64 * 0.029).cos() - 0.1).collect();
        let sa: Vec<f64> = (0..ls).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let sb: Vec<f64> = (0..ls).map(|i| ((i % 9) as f64) * 0.125).collect();
        let mut ca = Convolver::new(&ka, ls);
        let mut cb = Convolver::new(&kb, ls);
        assert!(ca.plan.is_some() && cb.plan.is_some(), "expected FFT path");
        let (ua, ub) = Convolver::conv_pair(&mut ca, &mut cb, &sa, &sb);
        let (wa, wb) = (convolve_direct(&ka, &sa), convolve_direct(&kb, &sb));
        assert_close(ua, &wa, 1e-7);
        assert_close(ub, &wb, 1e-7);
        // Repeat to exercise the cached pair path.
        let (ua, ub) = Convolver::conv_pair(&mut ca, &mut cb, &sa, &sb);
        assert_close(ua, &wa, 1e-7);
        assert_close(ub, &wb, 1e-7);
    }

    #[test]
    fn conv_pair_direct_fallback_matches_conv() {
        // Below the FFT threshold conv_pair must degrade to the exact
        // sequential per-chain direct path.
        let ka = [0.5, 0.25, 0.25];
        let kb = [0.1, 0.8, 0.1];
        let sa = [0.9, 0.1];
        let sb = [0.4, 0.6];
        let mut ca = Convolver::new(&ka, 2);
        let mut cb = Convolver::new(&kb, 2);
        assert!(ca.plan.is_none(), "expected direct path");
        let (ua, ub) = Convolver::conv_pair(&mut ca, &mut cb, &sa, &sb);
        let (ua, ub) = (ua.to_vec(), ub.to_vec());
        let mut ca2 = Convolver::new(&ka, 2);
        let mut cb2 = Convolver::new(&kb, 2);
        for (got, want) in ua.iter().zip(ca2.conv(&sa)) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        for (got, want) in ub.iter().zip(cb2.conv(&sb)) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn conv_pair_steady_state_does_not_grow_buffers() {
        let lk = 700;
        let ls = 300;
        let ka: Vec<f64> = (0..lk).map(|i| (i as f64 * 0.017).sin() + 1.1).collect();
        let kb: Vec<f64> = (0..lk).map(|i| (i as f64 * 0.011).cos() + 1.1).collect();
        let sa: Vec<f64> = (0..ls).map(|i| (i as f64 * 0.07).cos() + 1.1).collect();
        let sb: Vec<f64> = (0..ls).map(|i| (i as f64 * 0.05).sin() + 1.1).collect();
        let mut ca = Convolver::new(&ka, ls);
        let mut cb = Convolver::new(&kb, ls);
        let _ = Convolver::conv_pair(&mut ca, &mut cb, &sa, &sb);
        let pair = ca.pair.as_ref().unwrap();
        let caps = (
            ca.out.capacity(),
            cb.out.capacity(),
            pair.z.capacity(),
            pair.y.capacity(),
        );
        for _ in 0..20 {
            let _ = Convolver::conv_pair(&mut ca, &mut cb, &sa, &sb);
        }
        let pair = ca.pair.as_ref().unwrap();
        assert_eq!(
            caps,
            (
                ca.out.capacity(),
                cb.out.capacity(),
                pair.z.capacity(),
                pair.y.capacity(),
            ),
            "steady-state conv_pair must not grow any buffer"
        );
    }

    #[test]
    fn plan_cache_shares_plans_across_threads() {
        // The thread-local front must still hand out the *same* global
        // plan allocation on every thread.
        let k: Vec<f64> = vec![0.25; 600];
        let main_plan = Arc::clone(&Convolver::new(&k, 600).plan.as_ref().unwrap().plan);
        let other = std::thread::spawn(move || {
            let k: Vec<f64> = vec![0.25; 600];
            let cv = Convolver::new(&k, 600);
            let plan = cv.plan.as_ref().unwrap();
            Arc::ptr_eq(&main_plan, &plan.plan)
        })
        .join()
        .unwrap();
        assert!(other, "plan identity must hold across threads");
    }
}
