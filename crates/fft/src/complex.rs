//! A small double-precision complex number type.
//!
//! Only the operations the FFT needs are implemented; this is not a
//! general-purpose complex library.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// `repr(C)` so a `[Complex]` slice is a well-defined
/// `[re, im, re, im, ...]` double sequence — the SIMD kernels in
/// [`crate::simd`] reinterpret buffers this way.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from its rectangular parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn from_polar_unit(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert_eq!((-z) + z, Complex::ZERO);
    }

    #[test]
    fn multiplication() {
        // (1 + 2i)(3 + 4i) = 3 + 4i + 6i + 8i² = -5 + 10i
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, 4.0);
        assert_eq!(a * b, Complex::new(-5.0, 10.0));
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        // z * conj(z) = |z|²
        let p = z * z.conj();
        assert!((p.re - 25.0).abs() < 1e-12);
        assert!(p.im.abs() < 1e-12);
    }

    #[test]
    fn polar_unit_circle() {
        use std::f64::consts::PI;
        let z = Complex::from_polar_unit(PI / 2.0);
        assert!((z.re).abs() < 1e-15);
        assert!((z.im - 1.0).abs() < 1e-15);
        let w = Complex::from_polar_unit(PI);
        assert!((w.re + 1.0).abs() < 1e-15);
    }

    #[test]
    fn scale() {
        let z = Complex::new(1.5, -2.5).scale(2.0);
        assert_eq!(z, Complex::new(3.0, -5.0));
    }
}
