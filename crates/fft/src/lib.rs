//! Minimal fast Fourier transform and convolution kernels.
//!
//! The Grossglauser–Bolot loss solver iterates a discrete Lindley
//! recursion whose inner step is a linear convolution between the queue
//! occupancy vector (length `M + 1`) and the per-interval work increment
//! vector (length `2M + 1`). The paper notes that this convolution can
//! be computed "using a fast Fourier transform (FFT) with appropriate
//! zero-padding, which reduces the computational complexity from
//! `O(M²)` to `O(M log M)`" — this crate supplies exactly that, plus a
//! cache-friendly direct convolution used automatically for small sizes.
//!
//! The implementation is deliberately plain (iterative radix-2
//! decimation-in-time with precomputed twiddle tables); following the
//! smoltcp design ethos, simplicity and robustness beat cleverness, and
//! the solver's grids are always padded to powers of two anyway.

#![warn(missing_docs)]

mod complex;
mod convolve;
pub mod simd;
mod transform;

pub use complex::Complex;
pub use convolve::{
    convolve, convolve_direct, convolve_fft, shared_complex_plan, shared_real_plan, Convolver,
};
pub use simd::SimdLevel;
pub use transform::{fft, ifft, next_pow2, Fft, RealFft};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_smoke() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![4.0, 5.0];
        let c = convolve(&a, &b);
        assert_eq!(c.len(), 4);
        assert!((c[0] - 4.0).abs() < 1e-12);
        assert!((c[3] - 15.0).abs() < 1e-12);
    }
}
