//! Synthetic multi-gigabyte packet corpora.
//!
//! The paper's recordings are proprietary, so the out-of-core pipeline
//! is exercised against packetized versions of the workspace's
//! published-statistics stand-ins (`lrd_traffic::synth`): the binned
//! rate trace is generated once (a few MiB for millions of bins — the
//! fGn stage is the only in-memory state), then expanded bin by bin
//! into packet records streamed straight to disk. A corpus far larger
//! than memory therefore never exists as an in-memory object, on
//! either the write or the read side.
//!
//! Packetization inverts what [`RateBinner`](crate::binner::RateBinner)
//! does: each bin's byte budget `rate·dt/8` is split into MTU-bounded
//! packets spread evenly across the bin, so re-binning at the same
//! `dt` recovers the rate trace to within byte quantization — that
//! round-trip is what the ingestion tests and benches pin.

use std::path::Path;

use lrd_traffic::synth;

use crate::error::TraceError;
use crate::format::{PacketRecord, TraceWriter, HEADER_BYTES, RECORD_BYTES};

/// Which published-statistics trace family to packetize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusKind {
    /// JPEG-video-like: 33 ms frames, `H ≈ 0.83`, Gamma marginal.
    Mtv,
    /// Ethernet-like: 10 ms bins, `H ≈ 0.9`, lognormal marginal.
    Bellcore,
}

impl CorpusKind {
    /// Parses the CLI name (`mtv` | `bellcore`).
    pub fn parse(s: &str) -> Result<CorpusKind, TraceError> {
        match s {
            "mtv" => Ok(CorpusKind::Mtv),
            "bellcore" => Ok(CorpusKind::Bellcore),
            other => Err(TraceError::BadSpec(format!(
                "unknown corpus kind {other:?} (mtv|bellcore)"
            ))),
        }
    }
}

/// A deterministic corpus recipe.
#[derive(Debug, Clone, Copy)]
pub struct CorpusSpec {
    /// The trace family.
    pub kind: CorpusKind,
    /// Number of rate bins to packetize (sets the corpus size).
    pub bins: usize,
    /// RNG seed; the corpus is a pure function of the spec.
    pub seed: u64,
    /// Target mean packet size in bytes (packets are MTU-shaped, not
    /// all equal: the last packets of a bin absorb the remainder).
    pub mean_packet_bytes: u32,
}

impl CorpusSpec {
    /// The default recipe for a family: default seed, 1250-byte
    /// packets (a 10^4-bit packet keeps the arithmetic legible).
    pub fn new(kind: CorpusKind, bins: usize) -> CorpusSpec {
        CorpusSpec {
            kind,
            bins,
            seed: synth::DEFAULT_SEED,
            mean_packet_bytes: 1250,
        }
    }
}

/// What a corpus write produced.
#[derive(Debug, Clone, Copy)]
pub struct CorpusInfo {
    /// Packet records written.
    pub packets: u64,
    /// Total file size in bytes (header + records).
    pub file_bytes: u64,
    /// Rate bins packetized.
    pub bins: usize,
    /// Bin interval (seconds).
    pub dt: f64,
    /// Mean rate of the generated trace (Mb/s).
    pub mean_rate: f64,
    /// Nominal Hurst parameter of the family.
    pub hurst: f64,
}

/// Generates the rate trace for `spec` and streams its packetization
/// to `path`. Memory use is O(bins), independent of the packet count.
pub fn write_corpus(path: &Path, spec: &CorpusSpec) -> Result<CorpusInfo, TraceError> {
    if spec.bins == 0 {
        return Err(TraceError::BadSpec("corpus needs at least one bin".into()));
    }
    if spec.mean_packet_bytes < 40 {
        return Err(TraceError::BadSpec(format!(
            "mean packet size {} B is below any plausible header",
            spec.mean_packet_bytes
        )));
    }
    let _span = lrd_obs::span!("trace.synth_corpus", bins = spec.bins as f64);
    let (trace, hurst) = match spec.kind {
        CorpusKind::Mtv => (
            synth::mtv_like_with_len(spec.seed, spec.bins),
            synth::MTV_HURST,
        ),
        CorpusKind::Bellcore => (
            synth::bellcore_like_with_len(spec.seed, spec.bins),
            synth::BELLCORE_HURST,
        ),
    };
    let dt_ns = (trace.dt() * 1e9).round() as u64;
    let mut writer = TraceWriter::create(path)?;
    for (i, &rate) in trace.rates().iter().enumerate() {
        let bin_start = i as u64 * dt_ns;
        // Whole-byte budget for this bin; byte quantization is the
        // only loss the read-side round trip sees.
        let bytes = (rate * 1e6 * trace.dt() / 8.0).round() as u64;
        if bytes == 0 {
            continue;
        }
        let packets = bytes.div_ceil(spec.mean_packet_bytes as u64);
        let base = bytes / packets;
        let extra = bytes % packets; // first `extra` packets get +1
        let gap = dt_ns / packets;
        for k in 0..packets {
            writer.write(PacketRecord {
                timestamp_ns: bin_start + k * gap,
                size_bytes: (base + u64::from(k < extra)) as u32,
            })?;
        }
    }
    let packets = writer.finish()?;
    Ok(CorpusInfo {
        packets,
        file_bytes: HEADER_BYTES as u64 + packets * RECORD_BYTES as u64,
        bins: spec.bins,
        dt: trace.dt(),
        mean_rate: trace.mean_rate(),
        hurst,
    })
}

/// Reads `VmHWM` (peak resident set size, KiB) from
/// `/proc/self/status`. `None` off Linux or if the field is missing —
/// callers treat RSS reporting as best-effort.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Resets `VmHWM` to the *current* RSS by writing `5` to
/// `/proc/self/clear_refs`, so a subsequent [`peak_rss_kb`] reflects
/// only allocations made after the reset. The benches use this to
/// measure the ingestion passes' own memory ceiling rather than
/// whatever the in-process corpus generation peaked at. Returns
/// `false` (and changes nothing) where the kernel interface is
/// unavailable.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceReader;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lrd_synth_{}_{name}.lrdpkt", std::process::id()))
    }

    #[test]
    fn corpus_is_deterministic_and_sized_as_reported() {
        let path_a = temp("det_a");
        let path_b = temp("det_b");
        let spec = CorpusSpec::new(CorpusKind::Bellcore, 512);
        let a = write_corpus(&path_a, &spec).unwrap();
        let b = write_corpus(&path_b, &spec).unwrap();
        assert_eq!(a.packets, b.packets);
        assert_eq!(
            std::fs::read(&path_a).unwrap(),
            std::fs::read(&path_b).unwrap(),
            "same spec must produce identical bytes"
        );
        assert_eq!(std::fs::metadata(&path_a).unwrap().len(), a.file_bytes);
        // Reads back cleanly end to end.
        let reader = TraceReader::open(&path_a).unwrap();
        assert_eq!(reader.declared_count(), a.packets);
        let mut read_back = 0u64;
        for record in reader {
            record.unwrap();
            read_back += 1;
        }
        assert_eq!(read_back, a.packets);
        std::fs::remove_file(&path_a).ok();
        std::fs::remove_file(&path_b).ok();
    }

    #[test]
    fn packet_budget_matches_the_rate_trace() {
        // Summing packet bytes per bin must reproduce each bin's byte
        // budget exactly (the generator distributes remainders).
        let path = temp("budget");
        let spec = CorpusSpec {
            kind: CorpusKind::Mtv,
            bins: 64,
            seed: 5,
            mean_packet_bytes: 300,
        };
        let info = write_corpus(&path, &spec).unwrap();
        let trace = synth::mtv_like_with_len(5, 64);
        let dt_ns = (trace.dt() * 1e9).round() as u64;
        let mut per_bin = vec![0u64; 64];
        for record in TraceReader::open(&path).unwrap() {
            let r = record.unwrap();
            per_bin[(r.timestamp_ns / dt_ns) as usize] += r.size_bytes as u64;
            assert!(r.size_bytes <= 301, "packet above MTU+1: {}", r.size_bytes);
        }
        for (i, &rate) in trace.rates().iter().enumerate() {
            let want = (rate * 1e6 * trace.dt() / 8.0).round() as u64;
            assert_eq!(per_bin[i], want, "bin {i}");
        }
        assert_eq!(info.bins, 64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        let path = temp("badspec");
        assert!(matches!(
            write_corpus(&path, &CorpusSpec::new(CorpusKind::Mtv, 0)),
            Err(TraceError::BadSpec(_))
        ));
        let mut spec = CorpusSpec::new(CorpusKind::Mtv, 8);
        spec.mean_packet_bytes = 10;
        assert!(matches!(
            write_corpus(&path, &spec),
            Err(TraceError::BadSpec(_))
        ));
        assert!(CorpusKind::parse("mtv").is_ok());
        assert!(CorpusKind::parse("bellcore").is_ok());
        assert!(CorpusKind::parse("zipf").is_err());
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        // The bench records this; on Linux it must parse.
        if std::path::Path::new("/proc/self/status").exists() {
            let kb = peak_rss_kb().expect("VmHWM parse");
            assert!(kb > 0);
        }
    }
}
