//! Out-of-core packet-trace ingestion.
//!
//! The paper fits its queueing model from *measured traces* — the MTV
//! video trace and the Bellcore Ethernet trace — and real captures of
//! that kind run to gigabytes. This crate is the path from such a file
//! to the three statistics the solver consumes (50-bin marginal, Hurst
//! parameter, mean epoch duration), holding only O(chunk + estimator)
//! state however large the file:
//!
//! * [`format`] — the `LRDPKT01` binary record format with a
//!   back-patched record count, a buffered [`TraceWriter`], and a
//!   chunk-buffered validating [`TraceReader`];
//! * [`binner`] — online packet → fixed-`dt` rate reduction with
//!   zero-fill for idle gaps ([`RateBinner`]);
//! * [`ingest`] — the two-pass bounded-memory pipeline producing an
//!   [`IngestReport`] via the one-pass estimators in `lrd_stats`;
//! * [`synth`] — deterministic multi-gigabyte corpus generation from
//!   the published-statistics trace stand-ins, plus [`peak_rss_kb`]
//!   for the benches' memory-ceiling evidence.
//!
//! The `lrd-trace` binary fronts all of it: `gen` writes a corpus,
//! `info` validates a file, `hurst` runs the full ingestion report.

pub mod binner;
pub mod error;
pub mod format;
pub mod ingest;
pub mod synth;

pub use binner::RateBinner;
pub use error::TraceError;
pub use format::{PacketRecord, TraceReader, TraceWriter};
pub use ingest::{ingest_file, IngestReport};
pub use synth::{peak_rss_kb, reset_peak_rss, write_corpus, CorpusInfo, CorpusKind, CorpusSpec};
