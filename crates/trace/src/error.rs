//! Typed errors for the packet-trace toolkit.
//!
//! Real trace files arrive truncated, version-skewed, or corrupted;
//! every failure mode the reader can detect gets its own variant so
//! callers (the CLI, the ingestion benches, the figure pipeline) can
//! report exactly what is wrong with a multi-gigabyte file without
//! re-reading it.

use std::fmt;
use std::io;

/// Everything that can go wrong reading, writing, or ingesting a
/// packet trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the `LRDPKT01` magic.
    BadMagic {
        /// The eight bytes actually found.
        found: [u8; 8],
    },
    /// The header's format version is newer than this reader.
    UnsupportedVersion {
        /// The version actually found.
        found: u32,
    },
    /// The file ends in the middle of a record.
    TornRecord {
        /// Byte offset of the start of the torn record.
        offset: u64,
    },
    /// A record's timestamp runs backwards.
    NonMonotonicTimestamp {
        /// Zero-based index of the offending record.
        index: u64,
        /// The previous record's timestamp (ns).
        prev_ns: u64,
        /// The offending timestamp (ns).
        now_ns: u64,
    },
    /// The header's record count disagrees with the records present.
    CountMismatch {
        /// Count declared in the header.
        expected: u64,
        /// Records actually read.
        found: u64,
    },
    /// The trace holds no packets at all.
    EmptyTrace,
    /// A corpus/ingestion parameter is out of domain.
    BadSpec(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic { found } => write!(
                f,
                "not a packet trace: expected magic \"LRDPKT01\", found {:?}",
                String::from_utf8_lossy(found)
            ),
            TraceError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace format version {found}")
            }
            TraceError::TornRecord { offset } => write!(
                f,
                "torn record: file ends mid-record at byte offset {offset}"
            ),
            TraceError::NonMonotonicTimestamp {
                index,
                prev_ns,
                now_ns,
            } => write!(
                f,
                "record {index} runs backwards in time: {now_ns} ns after {prev_ns} ns"
            ),
            TraceError::CountMismatch { expected, found } => write!(
                f,
                "header declares {expected} record(s) but the file holds {found}"
            ),
            TraceError::EmptyTrace => write!(f, "trace holds no packets"),
            TraceError::BadSpec(why) => write!(f, "bad trace spec: {why}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings_identify_the_failure() {
        let cases: Vec<(TraceError, &str)> = vec![
            (TraceError::BadMagic { found: *b"GARBAGE!" }, "magic"),
            (TraceError::UnsupportedVersion { found: 9 }, "version 9"),
            (TraceError::TornRecord { offset: 24 }, "offset 24"),
            (
                TraceError::NonMonotonicTimestamp {
                    index: 3,
                    prev_ns: 10,
                    now_ns: 5,
                },
                "backwards",
            ),
            (
                TraceError::CountMismatch {
                    expected: 10,
                    found: 9,
                },
                "declares 10",
            ),
            (TraceError::EmptyTrace, "no packets"),
            (TraceError::BadSpec("x".into()), "bad trace spec"),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} should mention {needle:?}");
        }
    }
}
