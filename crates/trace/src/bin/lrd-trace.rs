//! `lrd-trace` — packet-corpus toolkit for the out-of-core pipeline.
//!
//! ```text
//! lrd-trace gen   --out FILE --kind mtv|bellcore --bins N [--seed N]
//!                 [--packet-bytes N]
//! lrd-trace info  --trace FILE
//! lrd-trace hurst --trace FILE --dt S [--bins N]
//! ```
//!
//! `gen` writes a deterministic synthetic packet corpus; `info`
//! validates a trace file end to end (header, record alignment,
//! monotonic timestamps, declared count) while streaming it in bounded
//! memory; `hurst` runs the full two-pass ingestion and prints the
//! model-fitting statistics. Argument parsing is hand-rolled
//! (`--key value` pairs) like the rest of the workspace.

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

use lrd_trace::{ingest_file, peak_rss_kb, write_corpus, CorpusKind, CorpusSpec, TraceReader};

const USAGE: &str = "\
lrd-trace — out-of-core packet-trace toolkit

USAGE:
  lrd-trace gen   --out FILE --kind mtv|bellcore --bins N [--seed N]
                  [--packet-bytes N]
  lrd-trace info  --trace FILE
  lrd-trace hurst --trace FILE --dt S [--bins N]

Corpora are binary LRDPKT01 files (16-byte packet records); `hurst`
bins them at --dt seconds and runs the one-pass estimators.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = parse_flags(rest).and_then(|opts| match command.as_str() {
        "gen" => cmd_gen(&opts),
        "info" => cmd_info(&opts),
        "hurst" => cmd_hurst(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --flag, got '{key}'"));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} needs a value"));
        };
        out.insert(name.to_string(), value.clone());
    }
    Ok(out)
}

fn req<'a>(opts: &'a Flags, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("could not parse {what} '{s}'"))
}

fn cmd_gen(opts: &Flags) -> Result<(), String> {
    let out = req(opts, "out")?;
    let mut spec = CorpusSpec::new(
        CorpusKind::parse(req(opts, "kind")?).map_err(|e| e.to_string())?,
        parse_num(req(opts, "bins")?, "--bins")?,
    );
    if let Some(s) = opts.get("seed") {
        spec.seed = parse_num(s, "--seed")?;
    }
    if let Some(s) = opts.get("packet-bytes") {
        spec.mean_packet_bytes = parse_num(s, "--packet-bytes")?;
    }
    let info = write_corpus(Path::new(out), &spec).map_err(|e| e.to_string())?;
    println!("corpus       : {out}");
    println!(
        "packets      : {} ({:.1} MiB on disk)",
        info.packets,
        info.file_bytes as f64 / (1 << 20) as f64
    );
    println!("bins         : {} at dt = {} s", info.bins, info.dt);
    println!("mean rate    : {:.4} Mb/s", info.mean_rate);
    println!("nominal H    : {}", info.hurst);
    Ok(())
}

fn cmd_info(opts: &Flags) -> Result<(), String> {
    let path = req(opts, "trace")?;
    let mut reader = TraceReader::open(Path::new(path)).map_err(|e| e.to_string())?;
    println!("trace        : {path}");
    println!("declared     : {} record(s)", reader.declared_count());
    let mut first: Option<u64> = None;
    let mut last: Option<u64> = None;
    let mut bytes = 0u64;
    while let Some(record) = reader.next_record().map_err(|e| e.to_string())? {
        first.get_or_insert(record.timestamp_ns);
        last = Some(record.timestamp_ns);
        bytes += record.size_bytes as u64;
    }
    println!("validated    : {} record(s), {} payload bytes", reader.records_read(), bytes);
    if let (Some(a), Some(b)) = (first, last) {
        let span = (b - a) as f64 / 1e9;
        println!("span         : {span:.3} s");
        if span > 0.0 {
            println!(
                "mean rate    : {:.4} Mb/s",
                bytes as f64 * 8.0 / span / 1e6
            );
        }
    }
    Ok(())
}

fn cmd_hurst(opts: &Flags) -> Result<(), String> {
    let path = req(opts, "trace")?;
    let dt: f64 = parse_num(req(opts, "dt")?, "--dt")?;
    let bins: usize = match opts.get("bins") {
        Some(s) => parse_num(s, "--bins")?,
        None => 50,
    };
    let report = ingest_file(Path::new(path), dt, bins).map_err(|e| e.to_string())?;
    let fmt = |h: Option<f64>| match h {
        Some(h) => format!("H = {h:.3}"),
        None => "unavailable (degenerate series)".to_string(),
    };
    println!("packets      : {}", report.packets);
    println!(
        "bins         : {} at dt = {} s ({:.2} s total)",
        report.bins, report.dt, report.duration
    );
    println!("mean rate    : {:.4} Mb/s", report.mean_rate);
    println!("R/S          : {}", fmt(report.hurst_rs));
    println!("variance-time: {}", fmt(report.hurst_vt));
    println!("wavelet      : {}", fmt(report.hurst_wavelet));
    println!("pooled       : {}", fmt(report.hurst));
    println!("mean epoch   : {:.4} s", report.mean_epoch);
    if let Some(kb) = peak_rss_kb() {
        println!("peak RSS     : {:.1} MiB", kb as f64 / 1024.0);
    }
    Ok(())
}
