//! Packet stream → fixed-interval rate trace.
//!
//! The paper's estimators and the solver both consume *binned rate
//! traces* (33 ms frames for MTV, 10 ms bins for Bellcore), not raw
//! packets. [`RateBinner`] performs that reduction online: packets go
//! in, and every completed `dt` interval comes out as one bin-average
//! rate in Mb/s — including zero bins for idle gaps, which matter
//! enormously for the marginal (idle mass) and must not be silently
//! skipped. State is O(1), so the reduction composes with the chunked
//! [`TraceReader`](crate::format::TraceReader) into a fully
//! out-of-core pipeline.

use crate::error::TraceError;
use crate::format::PacketRecord;

/// Online packet-to-rate binning with zero-fill for idle intervals.
///
/// Bin `k` covers `[origin + k·dt, origin + (k+1)·dt)` where `origin`
/// is the first packet's timestamp; a packet's whole size is credited
/// to the bin containing its timestamp.
#[derive(Debug, Clone)]
pub struct RateBinner {
    dt_ns: u64,
    origin_ns: Option<u64>,
    /// Index of the currently open bin.
    bin: u64,
    /// Bits accumulated in the open bin.
    bits: f64,
}

impl RateBinner {
    /// Creates a binner with interval `dt` seconds.
    pub fn new(dt: f64) -> Result<RateBinner, TraceError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(TraceError::BadSpec(format!(
                "bin interval must be positive and finite, got {dt}"
            )));
        }
        let dt_ns = (dt * 1e9).round() as u64;
        if dt_ns == 0 {
            return Err(TraceError::BadSpec(format!(
                "bin interval {dt} s is below 1 ns resolution"
            )));
        }
        Ok(RateBinner {
            dt_ns,
            origin_ns: None,
            bin: 0,
            bits: 0.0,
        })
    }

    /// The bin interval in seconds (after ns quantization).
    pub fn dt(&self) -> f64 {
        self.dt_ns as f64 / 1e9
    }

    /// Converts accumulated bits to a bin-average rate in Mb/s.
    fn rate(&self, bits: f64) -> f64 {
        bits / (self.dt_ns as f64 / 1e9) / 1e6
    }

    /// Absorbs one packet, emitting every bin that closes before it.
    /// Timestamps must be non-decreasing (the reader guarantees this).
    pub fn push(&mut self, record: &PacketRecord, mut emit: impl FnMut(f64)) {
        let origin = *self.origin_ns.get_or_insert(record.timestamp_ns);
        debug_assert!(record.timestamp_ns >= origin, "binner fed out of order");
        let k = (record.timestamp_ns - origin) / self.dt_ns;
        debug_assert!(k >= self.bin, "binner fed out of order");
        while self.bin < k {
            emit(self.rate(self.bits));
            self.bits = 0.0;
            self.bin += 1;
        }
        self.bits += record.size_bytes as f64 * 8.0;
    }

    /// Flushes the final (possibly partial) bin. A binner that never
    /// saw a packet emits nothing.
    pub fn finish(self, mut emit: impl FnMut(f64)) {
        if self.origin_ns.is_some() {
            emit(self.rate(self.bits));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(ts_ns: u64, size: u32) -> PacketRecord {
        PacketRecord {
            timestamp_ns: ts_ns,
            size_bytes: size,
        }
    }

    fn collect(dt: f64, packets: &[PacketRecord]) -> Vec<f64> {
        let mut binner = RateBinner::new(dt).unwrap();
        let mut out = Vec::new();
        for p in packets {
            binner.push(p, |r| out.push(r));
        }
        binner.finish(|r| out.push(r));
        out
    }

    #[test]
    fn bins_average_and_zero_fill() {
        // dt = 1 ms. Two packets in bin 0, silence through bins 1-2,
        // one packet in bin 3.
        let bins = collect(
            1e-3,
            &[pkt(0, 1250), pkt(500_000, 1250), pkt(3_200_000, 2500)],
        );
        // 2500 B = 20_000 bits over 1 ms → 20 Mb/s.
        assert_eq!(bins.len(), 4);
        assert!((bins[0] - 20.0).abs() < 1e-9);
        assert_eq!(bins[1], 0.0);
        assert_eq!(bins[2], 0.0);
        assert!((bins[3] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn work_is_conserved() {
        // Total bytes in = sum(rate · dt) out, whatever the packet
        // arrangement.
        let packets: Vec<PacketRecord> = (0..997u64)
            .map(|i| pkt(i * i * 137, 40 + (i % 1460) as u32))
            .collect();
        let total_bits: f64 = packets.iter().map(|p| p.size_bytes as f64 * 8.0).sum();
        let dt = 1e-4;
        let bins = collect(dt, &packets);
        let binned_bits: f64 = bins.iter().map(|r| r * 1e6 * dt).sum();
        assert!(
            (binned_bits - total_bits).abs() < 1e-6 * total_bits.max(1.0),
            "{binned_bits} vs {total_bits}"
        );
    }

    #[test]
    fn origin_is_the_first_packet() {
        // A capture starting late must not emit leading zero bins.
        let bins = collect(1e-3, &[pkt(5_000_000_000, 125), pkt(5_000_100_000, 125)]);
        assert_eq!(bins.len(), 1);
        assert!((bins[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_intervals_are_typed_errors() {
        assert!(matches!(RateBinner::new(0.0), Err(TraceError::BadSpec(_))));
        assert!(matches!(RateBinner::new(-1.0), Err(TraceError::BadSpec(_))));
        assert!(matches!(
            RateBinner::new(f64::NAN),
            Err(TraceError::BadSpec(_))
        ));
        assert!(matches!(RateBinner::new(1e-10), Err(TraceError::BadSpec(_))));
        assert!(RateBinner::new(0.01).is_ok());
    }

    #[test]
    fn empty_binner_emits_nothing() {
        let binner = RateBinner::new(0.01).unwrap();
        let mut n = 0;
        binner.finish(|_| n += 1);
        assert_eq!(n, 0);
    }
}
