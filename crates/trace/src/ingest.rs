//! Out-of-core trace ingestion: packet file → everything the solver
//! needs, in bounded memory.
//!
//! The solver consumes exactly three statistics of a trace (Sec. III
//! of the paper): the 50-bin marginal histogram, the Hurst parameter,
//! and the mean epoch duration that calibrates `θ`. This module
//! computes all three from an on-disk packet trace of any size without
//! materializing the rate series:
//!
//! * **Pass 1** streams packets through the [`RateBinner`] into the
//!   one-pass estimators ([`OnePassHurst`]) and a running
//!   [`Summary`](lrd_stats::Summary) — O(log n) state.
//! * **Pass 2** re-streams to fill the [`Histogram`] (whose range
//!   needs pass 1's min/max) and to measure same-bin run lengths
//!   online — O(bins) state.
//!
//! Two sequential scans of a file the OS can read at disk bandwidth
//! beat any scheme that buffers the rate series, and keep the memory
//! ceiling at the reader's chunk buffer plus the estimator state.

use std::path::Path;

use lrd_stats::{Histogram, OnePassHurst, RunLengths};
use lrd_traffic::Marginal;

use crate::binner::RateBinner;
use crate::error::TraceError;
use crate::format::TraceReader;

/// Everything the model-fitting recipe needs, computed out-of-core.
#[derive(Debug)]
pub struct IngestReport {
    /// Packets read from the trace.
    pub packets: u64,
    /// Rate bins the packets reduced to.
    pub bins: u64,
    /// Bin interval (seconds).
    pub dt: f64,
    /// Trace duration covered by the bins (seconds).
    pub duration: f64,
    /// Mean rate over all bins (Mb/s).
    pub mean_rate: f64,
    /// R/S Hurst estimate (clamped into `(0, 1)`), if estimable.
    pub hurst_rs: Option<f64>,
    /// Variance–time Hurst estimate (clamped), if estimable.
    pub hurst_vt: Option<f64>,
    /// Wavelet Hurst estimate (clamped), if estimable.
    pub hurst_wavelet: Option<f64>,
    /// Mean of the available clamped estimates.
    pub hurst: Option<f64>,
    /// The constant-bin-size histogram of bin rates.
    pub histogram: Histogram,
    /// Mean same-histogram-bin run duration (seconds) — the paper's
    /// epoch statistic for calibrating `θ`.
    pub mean_epoch: f64,
}

impl IngestReport {
    /// The paper's marginal extraction: histogram → `(Π, Λ)`.
    pub fn marginal(&self) -> Marginal {
        Marginal::from_histogram(&self.histogram)
    }
}

/// Streams the trace at `path` twice and reduces it to an
/// [`IngestReport`] with `dt`-second bins and a `bins`-bin histogram.
/// Memory use is bounded by the reader chunk buffer and the one-pass
/// estimator state regardless of the file size.
pub fn ingest_file(path: &Path, dt: f64, bins: usize) -> Result<IngestReport, TraceError> {
    if bins == 0 {
        return Err(TraceError::BadSpec(
            "histogram needs at least one bin".to_string(),
        ));
    }
    let _span = lrd_obs::span!("trace.ingest", bins = bins as f64);

    // Pass 1: packets → rate bins → one-pass estimators + running
    // min/max/mean.
    let mut reader = TraceReader::open(path)?;
    let mut binner = RateBinner::new(dt)?;
    let mut onepass = OnePassHurst::new();
    while let Some(record) = reader.next_record()? {
        binner.push(&record, |rate| onepass.push(rate));
    }
    let packets = reader.records_read();
    binner.finish(|rate| onepass.push(rate));
    if packets == 0 {
        return Err(TraceError::EmptyTrace);
    }
    lrd_obs::counter("trace.packets", packets);
    lrd_obs::counter("trace.bins", onepass.count());

    // Pass 2: the histogram needs the range from pass 1; runs of
    // same-bin samples are measured online with O(1) state.
    let summary = onepass.summary();
    let (mut lo, mut hi) = (summary.min(), summary.max());
    if hi <= lo {
        // Constant-rate trace: widen symmetrically like
        // `Histogram::try_from_data` so ingestion still succeeds.
        let pad = lo.abs().max(1.0) * 1e-9;
        lo -= pad;
        hi += pad;
    }
    let mut histogram = Histogram::try_new(lo, hi, bins)
        .map_err(|e| TraceError::BadSpec(e.to_string()))?;
    let mut runs = RunLengths::new();
    let mut reader = TraceReader::open(path)?;
    let mut binner = RateBinner::new(dt)?;
    {
        let mut absorb = |rate: f64| {
            histogram.add(rate);
            // Out-of-range cannot happen (the range came from pass 1),
            // but clamp like `Histogram::quantize` for robustness.
            let idx = match histogram.bin_index(rate) {
                Some(i) => i,
                None if rate < histogram.min() => 0,
                None => histogram.bins() - 1,
            };
            runs.push(idx);
        };
        while let Some(record) = reader.next_record()? {
            binner.push(&record, &mut absorb);
        }
        binner.finish(&mut absorb);
    }

    let count = onepass.count();
    let clamp = |r: Result<lrd_stats::HurstEstimate, _>| r.ok().map(|e| e.clamped());
    Ok(IngestReport {
        packets,
        bins: count,
        dt: binner_dt(dt),
        duration: binner_dt(dt) * count as f64,
        mean_rate: summary.mean(),
        hurst_rs: clamp(onepass.rs_estimate()),
        hurst_vt: clamp(onepass.variance_time_estimate()),
        hurst_wavelet: clamp(onepass.wavelet_estimate()),
        hurst: onepass.pooled(),
        histogram,
        mean_epoch: runs.mean() * binner_dt(dt),
    })
}

/// The ns-quantized bin interval actually used (matches
/// [`RateBinner::dt`]).
fn binner_dt(dt: f64) -> f64 {
    (dt * 1e9).round() / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{write_corpus, CorpusKind, CorpusSpec};
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lrd_ingest_{}_{name}.lrdpkt", std::process::id()))
    }

    #[test]
    fn ingestion_recovers_the_corpus_statistics() {
        let path = temp("mtv");
        let spec = CorpusSpec {
            kind: CorpusKind::Mtv,
            bins: 1 << 14,
            seed: 42,
            mean_packet_bytes: 1250,
        };
        let info = write_corpus(&path, &spec).unwrap();
        let report = ingest_file(&path, info.dt, 50).unwrap();
        assert_eq!(report.packets, info.packets);
        // The binner may lose trailing idle bins (no packet closes
        // them), never gain any.
        assert!(report.bins <= info.bins as u64);
        assert!(report.bins >= info.bins as u64 - 2);
        // Packetization quantizes each bin to whole bytes; the mean
        // must survive almost exactly …
        assert!(
            (report.mean_rate - info.mean_rate).abs() / info.mean_rate < 1e-3,
            "mean {} vs corpus {}",
            report.mean_rate,
            info.mean_rate
        );
        // … and the Hurst parameter within estimator tolerance.
        let h = report.hurst.expect("pooled estimate");
        assert!(
            (h - info.hurst).abs() < 0.15,
            "pooled H {h} vs nominal {}",
            info.hurst
        );
        let p: f64 = report.histogram.probabilities().iter().sum();
        assert!((p - 1.0).abs() < 1e-12);
        assert!(report.mean_epoch > 0.0);
        // The marginal keeps only occupied bins, so its support is at
        // most the bin count.
        let marginal = report.marginal();
        assert!(marginal.probs().len() >= 2 && marginal.probs().len() <= 50);
        assert!((marginal.mean() - report.histogram.binned_mean()).abs() < 1e-9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn degenerate_inputs_are_typed_errors() {
        let path = temp("bad");
        // Empty trace file (valid header, no records).
        let w = crate::format::TraceWriter::create(&path).unwrap();
        w.finish().unwrap();
        assert!(matches!(
            ingest_file(&path, 0.01, 50),
            Err(TraceError::EmptyTrace)
        ));
        assert!(matches!(
            ingest_file(&path, 0.0, 50),
            Err(TraceError::BadSpec(_))
        ));
        assert!(matches!(
            ingest_file(&path, 0.01, 0),
            Err(TraceError::BadSpec(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn constant_rate_trace_still_ingests() {
        // One packet of the same size per bin: every rate identical.
        // The histogram pads its range instead of erroring; the Hurst
        // estimates are typed failures surfaced as None.
        let path = temp("const");
        let mut w = crate::format::TraceWriter::create(&path).unwrap();
        for i in 0..256u64 {
            w.write(crate::format::PacketRecord {
                timestamp_ns: i * 10_000_000,
                size_bytes: 1250,
            })
            .unwrap();
        }
        w.finish().unwrap();
        let report = ingest_file(&path, 0.01, 50).unwrap();
        assert_eq!(report.packets, 256);
        assert!((report.mean_rate - 1.0).abs() < 1e-9);
        assert!(report.hurst.is_none(), "constant series has no H");
        assert_eq!(report.histogram.total(), report.bins);
        std::fs::remove_file(&path).ok();
    }
}
