//! The on-disk packet-trace format and its chunked writer/reader.
//!
//! Real packet captures (the paper's Bellcore Ethernet trace is the
//! canonical example) are far too large to hold in memory, so the
//! format is built for streaming: a fixed 24-byte header followed by
//! fixed-width 16-byte records, read back through a bounded reusable
//! chunk buffer — the reader's memory footprint is [`CHUNK_BYTES`]
//! regardless of file size.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! header:  magic "LRDPKT01" (8) | version u32 (4) | reserved u32 (4)
//!          | record count u64 (8)
//! record:  timestamp_ns u64 (8) | size_bytes u32 (4) | reserved u32 (4)
//! ```
//!
//! Timestamps are nanoseconds from an arbitrary capture origin and
//! must be non-decreasing; the record count in the header is
//! back-patched by [`TraceWriter::finish`], so a crashed writer leaves
//! a detectable [`TraceError::CountMismatch`] rather than a silently
//! short trace.

use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::error::TraceError;

/// File magic: format name + 2-digit generation.
pub const MAGIC: [u8; 8] = *b"LRDPKT01";
/// Current format version.
pub const VERSION: u32 = 1;
/// Header size in bytes.
pub const HEADER_BYTES: usize = 24;
/// Record size in bytes.
pub const RECORD_BYTES: usize = 16;
/// Reader chunk-buffer size: the whole out-of-core memory budget.
pub const CHUNK_BYTES: usize = 1 << 20;

/// Byte offset of the record count within the header.
const COUNT_OFFSET: u64 = 16;

/// One captured packet: arrival time and wire size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord {
    /// Arrival time in nanoseconds from the capture origin.
    pub timestamp_ns: u64,
    /// Packet size in bytes.
    pub size_bytes: u32,
}

impl PacketRecord {
    /// Serializes the record into its 16-byte wire form.
    pub fn encode(&self) -> [u8; RECORD_BYTES] {
        let mut out = [0u8; RECORD_BYTES];
        out[..8].copy_from_slice(&self.timestamp_ns.to_le_bytes());
        out[8..12].copy_from_slice(&self.size_bytes.to_le_bytes());
        out
    }

    /// Deserializes a record from its 16-byte wire form.
    pub fn decode(bytes: &[u8; RECORD_BYTES]) -> PacketRecord {
        PacketRecord {
            timestamp_ns: u64::from_le_bytes(bytes[..8].try_into().unwrap()),
            size_bytes: u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        }
    }
}

/// Streaming trace writer: header up front, records appended through a
/// buffered writer, count back-patched on [`TraceWriter::finish`].
#[derive(Debug)]
pub struct TraceWriter {
    out: BufWriter<File>,
    count: u64,
    last_ts: Option<u64>,
}

impl TraceWriter {
    /// Creates (truncating) a trace file and writes its header with a
    /// zero record count.
    pub fn create(path: &Path) -> Result<TraceWriter, TraceError> {
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        out.write_all(&MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&0u32.to_le_bytes())?;
        out.write_all(&0u64.to_le_bytes())?;
        Ok(TraceWriter {
            out,
            count: 0,
            last_ts: None,
        })
    }

    /// Appends one record; timestamps must be non-decreasing.
    pub fn write(&mut self, record: PacketRecord) -> Result<(), TraceError> {
        if let Some(prev) = self.last_ts {
            if record.timestamp_ns < prev {
                return Err(TraceError::NonMonotonicTimestamp {
                    index: self.count,
                    prev_ns: prev,
                    now_ns: record.timestamp_ns,
                });
            }
        }
        self.out.write_all(&record.encode())?;
        self.last_ts = Some(record.timestamp_ns);
        self.count += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Back-patches the header's record count and flushes. Returns the
    /// final record count.
    pub fn finish(mut self) -> Result<u64, TraceError> {
        self.out.flush()?;
        let file = self.out.get_mut();
        file.seek(SeekFrom::Start(COUNT_OFFSET))?;
        file.write_all(&self.count.to_le_bytes())?;
        file.flush()?;
        Ok(self.count)
    }
}

/// Chunk-buffered trace reader: validates the header eagerly and the
/// record stream (alignment, monotonicity, declared count) as it goes.
/// Memory use is one [`CHUNK_BYTES`] buffer, independent of file size.
#[derive(Debug)]
pub struct TraceReader {
    file: File,
    declared: u64,
    buf: Vec<u8>,
    /// Valid bytes in `buf`.
    filled: usize,
    /// Read cursor within `buf`.
    pos: usize,
    /// Records handed out so far.
    read: u64,
    last_ts: Option<u64>,
    /// Set once EOF has been validated (count check done).
    done: bool,
}

impl TraceReader {
    /// Opens a trace file and validates its header.
    pub fn open(path: &Path) -> Result<TraceReader, TraceError> {
        let mut file = File::open(path)?;
        let mut header = [0u8; HEADER_BYTES];
        file.read_exact(&mut header).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceError::TornRecord { offset: 0 }
            } else {
                TraceError::Io(e)
            }
        })?;
        if header[..8] != MAGIC {
            return Err(TraceError::BadMagic {
                found: header[..8].try_into().unwrap(),
            });
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion { found: version });
        }
        let declared = u64::from_le_bytes(header[16..24].try_into().unwrap());
        Ok(TraceReader {
            file,
            declared,
            buf: vec![0u8; CHUNK_BYTES],
            filled: 0,
            pos: 0,
            read: 0,
            last_ts: None,
            done: false,
        })
    }

    /// Record count declared in the header.
    pub fn declared_count(&self) -> u64 {
        self.declared
    }

    /// Records handed out so far.
    pub fn records_read(&self) -> u64 {
        self.read
    }

    /// Byte offset (from file start) of the next unread record.
    fn offset(&self) -> u64 {
        HEADER_BYTES as u64 + self.read * RECORD_BYTES as u64
    }

    /// Refills the chunk buffer, keeping any partial-record tail.
    fn refill(&mut self) -> Result<(), TraceError> {
        let leftover = self.filled - self.pos;
        self.buf.copy_within(self.pos..self.filled, 0);
        self.filled = leftover;
        self.pos = 0;
        loop {
            let n = self.file.read(&mut self.buf[self.filled..])?;
            if n == 0 {
                return Ok(());
            }
            self.filled += n;
            if self.filled == self.buf.len() {
                return Ok(());
            }
        }
    }

    /// Reads the next record, or `Ok(None)` at a clean end of trace.
    pub fn next_record(&mut self) -> Result<Option<PacketRecord>, TraceError> {
        if self.done {
            return Ok(None);
        }
        if self.filled - self.pos < RECORD_BYTES {
            self.refill()?;
        }
        let available = self.filled - self.pos;
        if available == 0 {
            self.done = true;
            if self.read != self.declared {
                return Err(TraceError::CountMismatch {
                    expected: self.declared,
                    found: self.read,
                });
            }
            return Ok(None);
        }
        if available < RECORD_BYTES {
            self.done = true;
            return Err(TraceError::TornRecord {
                offset: self.offset(),
            });
        }
        let bytes: [u8; RECORD_BYTES] =
            self.buf[self.pos..self.pos + RECORD_BYTES].try_into().unwrap();
        let record = PacketRecord::decode(&bytes);
        if let Some(prev) = self.last_ts {
            if record.timestamp_ns < prev {
                self.done = true;
                return Err(TraceError::NonMonotonicTimestamp {
                    index: self.read,
                    prev_ns: prev,
                    now_ns: record.timestamp_ns,
                });
            }
        }
        self.pos += RECORD_BYTES;
        self.read += 1;
        self.last_ts = Some(record.timestamp_ns);
        Ok(Some(record))
    }
}

impl Iterator for TraceReader {
    type Item = Result<PacketRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lrd_trace_{}_{name}.lrdpkt", std::process::id()))
    }

    fn toy_records(n: u64) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| PacketRecord {
                timestamp_ns: i * 1_000,
                size_bytes: 64 + (i % 1400) as u32,
            })
            .collect()
    }

    fn write_file(path: &Path, records: &[PacketRecord]) {
        let mut w = TraceWriter::create(path).unwrap();
        for &r in records {
            w.write(r).unwrap();
        }
        assert_eq!(w.finish().unwrap(), records.len() as u64);
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        let r = PacketRecord {
            timestamp_ns: u64::MAX - 7,
            size_bytes: 1514,
        };
        assert_eq!(PacketRecord::decode(&r.encode()), r);
    }

    #[test]
    fn write_then_read_spanning_many_chunks() {
        // More records than fit one chunk buffer, so refill() runs and
        // must stitch records across chunk boundaries correctly
        // (RECORD_BYTES divides CHUNK_BYTES, but the header offsets the
        // first chunk, exercising the partial-tail path).
        let path = temp("roundtrip");
        let records = toy_records(3 * (CHUNK_BYTES / RECORD_BYTES) as u64 / 2);
        write_file(&path, &records);
        let mut reader = TraceReader::open(&path).unwrap();
        assert_eq!(reader.declared_count(), records.len() as u64);
        for (i, want) in records.iter().enumerate() {
            let got = reader.next_record().unwrap().unwrap();
            assert_eq!(got, *want, "record {i}");
        }
        assert!(reader.next_record().unwrap().is_none());
        // Idempotent at EOF.
        assert!(reader.next_record().unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let path = temp("magic");
        std::fs::write(&path, b"NOTAPKT0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0").unwrap();
        assert!(matches!(
            TraceReader::open(&path),
            Err(TraceError::BadMagic { .. })
        ));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]);
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            TraceReader::open(&path),
            Err(TraceError::UnsupportedVersion { found: 99 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_record_is_detected_with_its_offset() {
        let path = temp("torn");
        let records = toy_records(10);
        write_file(&path, &records);
        // Chop 5 bytes off the tail: record 9 is torn.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);
        let mut reader = TraceReader::open(&path).unwrap();
        let mut seen = 0;
        let err = loop {
            match reader.next_record() {
                Ok(Some(_)) => seen += 1,
                Ok(None) => panic!("truncated file read cleanly"),
                Err(e) => break e,
            }
        };
        assert_eq!(seen, 9);
        match err {
            TraceError::TornRecord { offset } => {
                assert_eq!(offset, HEADER_BYTES as u64 + 9 * RECORD_BYTES as u64)
            }
            other => panic!("expected torn record, got {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unfinished_writer_leaves_a_count_mismatch() {
        // Simulating a writer crash: records on disk, header count
        // still zero (finish() never ran).
        let path = temp("crash");
        let mut w = TraceWriter::create(&path).unwrap();
        for r in toy_records(4) {
            w.write(r).unwrap();
        }
        drop(w); // BufWriter flushes on drop; header stays unpatched
        let mut reader = TraceReader::open(&path).unwrap();
        let mut last = None;
        for _ in 0..4 {
            last = Some(reader.next_record());
        }
        assert!(matches!(last, Some(Ok(Some(_)))));
        assert!(matches!(
            reader.next_record(),
            Err(TraceError::CountMismatch {
                expected: 0,
                found: 4
            })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn backwards_timestamps_are_rejected_on_both_sides() {
        let path = temp("mono");
        let mut w = TraceWriter::create(&path).unwrap();
        w.write(PacketRecord {
            timestamp_ns: 100,
            size_bytes: 60,
        })
        .unwrap();
        assert!(matches!(
            w.write(PacketRecord {
                timestamp_ns: 99,
                size_bytes: 60
            }),
            Err(TraceError::NonMonotonicTimestamp { index: 1, .. })
        ));
        drop(w);
        // Hand-craft a non-monotonic file to exercise the reader side.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(
            &PacketRecord {
                timestamp_ns: 50,
                size_bytes: 60,
            }
            .encode(),
        );
        bytes.extend_from_slice(
            &PacketRecord {
                timestamp_ns: 49,
                size_bytes: 60,
            }
            .encode(),
        );
        std::fs::write(&path, bytes).unwrap();
        let mut reader = TraceReader::open(&path).unwrap();
        assert!(reader.next_record().unwrap().is_some());
        assert!(matches!(
            reader.next_record(),
            Err(TraceError::NonMonotonicTimestamp { index: 1, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_reads_cleanly() {
        let path = temp("empty");
        write_file(&path, &[]);
        let mut reader = TraceReader::open(&path).unwrap();
        assert_eq!(reader.declared_count(), 0);
        assert!(reader.next_record().unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }
}
