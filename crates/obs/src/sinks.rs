//! The built-in [`Subscriber`] implementations.

use crate::json::{write_json_f64, write_json_string};
use crate::metrics::MetricsRegistry;
use crate::{fmt_us, EventRecord, Fields, SpanRecord, Subscriber, Value};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ------------------------------------------------------------------ null

/// The default sink: wants nothing, receives nothing. Installing it
/// reports `enabled() == false`, so the global fast path stays off and
/// instrumented code skips all telemetry work.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSubscriber;

impl Subscriber for NullSubscriber {
    fn enabled(&self) -> bool {
        false
    }
    fn event(&self, _: &EventRecord) {}
    fn span_end(&self, _: &SpanRecord) {}
    fn counter(&self, _: &'static str, _: u64) {}
    fn gauge(&self, _: &'static str, _: f64) {}
    fn histogram(&self, _: &'static str, _: f64) {}
}

// ----------------------------------------------------------------- jsonl

/// Writes one JSON object per line.
///
/// Inline lines (as they happen):
///
/// ```text
/// {"kind":"event","t_us":412,"name":"solver.gap","fields":{"iteration":7,"lower":0.01,"upper":0.03},"who":"pid-811"}
/// {"kind":"span","t_us":2,"dur_us":409.5,"name":"solver.level","fields":{"bins":128},"who":"pid-811"}
/// {"kind":"gauge","t_us":413,"name":"solver.mass_drift","value":2.2e-16,"who":"pid-811"}
/// ```
///
/// Counters and histograms are high-frequency, so they are aggregated
/// in an internal [`MetricsRegistry`] and drained as one line each on
/// [`flush`](Subscriber::flush) (and therefore on uninstall/drop):
///
/// ```text
/// {"kind":"counter","name":"solver.iterations","value":412,"who":"pid-811"}
/// {"kind":"histogram","name":"fft.conv_us","count":824,"sum":1.1e4,"min":9.1,"max":44.0,"buckets":[[8.0,16.0,700],[16.0,32.0,120],[32.0,64.0,4]],"who":"pid-811"}
/// ```
///
/// Draining clears the aggregates, so repeated flushes never duplicate
/// totals; aggregation after a flush restarts from zero.
///
/// Every record carries a `"who"` identity field (a worker id in
/// steal-mode sweeps, `pid-<n>` otherwise — see
/// [`with_identity`](Self::with_identity)), and the first line of the
/// stream is a `meta` record anchoring the process-relative `t_us`
/// clock to wall time:
///
/// ```text
/// {"kind":"meta","t_us":3,"unix_us":1754650000000000,"who":"w-1a2b-3c4d"}
/// ```
///
/// so cross-process tools (`sweep_trace`) can place records from
/// several captures on one absolute timeline without filename
/// heuristics.
pub struct JsonlSubscriber {
    out: Mutex<Box<dyn Write + Send>>,
    aggregates: Mutex<MetricsRegistry>,
    identity: String,
    meta_written: AtomicBool,
}

impl JsonlSubscriber {
    /// Writes to an arbitrary sink (a file, a pipe, an in-memory
    /// buffer in tests), stamped with the default `pid-<n>` identity.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSubscriber {
            out: Mutex::new(writer),
            aggregates: Mutex::new(MetricsRegistry::new()),
            identity: format!("pid-{}", std::process::id()),
            meta_written: AtomicBool::new(false),
        }
    }

    /// Creates (truncating) `path` and writes buffered JSONL to it.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(Box::new(BufWriter::new(file))))
    }

    /// Replaces the identity stamped on every record. Call before
    /// installing (the meta line is emitted lazily with the first
    /// record, so an identity set here is the one anchored).
    pub fn with_identity(mut self, identity: &str) -> Self {
        identity.clone_into(&mut self.identity);
        self
    }

    /// The identity stamped on this stream's records.
    pub fn identity(&self) -> &str {
        &self.identity
    }

    fn write_line(&self, line: &str) {
        let mut out = lock(&self.out);
        if !self.meta_written.swap(true, Ordering::SeqCst) {
            // Anchor the process-relative clock: `unix_us` and `t_us`
            // are sampled at the same instant, so readers recover the
            // offset as `unix_us - t_us`.
            let unix_us = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0);
            let mut meta = String::with_capacity(96);
            meta.push_str("{\"kind\":\"meta\",\"t_us\":");
            meta.push_str(&crate::now_us().to_string());
            meta.push_str(",\"unix_us\":");
            meta.push_str(&unix_us.to_string());
            meta.push_str(",\"who\":");
            write_json_string(&mut meta, &self.identity);
            meta.push('}');
            let _ = writeln!(out, "{meta}");
        }
        // Telemetry must never take the instrumented program down; a
        // full disk simply truncates the stream.
        let _ = writeln!(out, "{line}");
    }

    fn push_who(&self, line: &mut String) {
        line.push_str(",\"who\":");
        write_json_string(line, &self.identity);
    }
}

fn push_fields(out: &mut String, fields: &Fields) {
    out.push('{');
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(out, key);
        out.push(':');
        push_value(out, value);
    }
    out.push('}');
}

fn push_value(out: &mut String, value: &Value) {
    use std::fmt::Write as _;
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => write_json_f64(out, *v),
        Value::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Str(s) => write_json_string(out, s),
        Value::String(s) => write_json_string(out, s),
    }
}

impl Subscriber for JsonlSubscriber {
    fn event(&self, record: &EventRecord) {
        let mut line = String::with_capacity(96);
        line.push_str("{\"kind\":\"event\",\"t_us\":");
        line.push_str(&record.t_us.to_string());
        line.push_str(",\"name\":");
        write_json_string(&mut line, record.name);
        line.push_str(",\"fields\":");
        push_fields(&mut line, &record.fields);
        self.push_who(&mut line);
        line.push('}');
        self.write_line(&line);
    }

    fn span_end(&self, record: &SpanRecord) {
        let mut line = String::with_capacity(96);
        line.push_str("{\"kind\":\"span\",\"t_us\":");
        line.push_str(&record.t_us.to_string());
        line.push_str(",\"dur_us\":");
        write_json_f64(&mut line, record.dur_us);
        line.push_str(",\"name\":");
        write_json_string(&mut line, record.name);
        line.push_str(",\"fields\":");
        push_fields(&mut line, &record.fields);
        self.push_who(&mut line);
        line.push('}');
        self.write_line(&line);
    }

    fn counter(&self, name: &'static str, delta: u64) {
        lock(&self.aggregates).add_counter(name, delta);
    }

    fn gauge(&self, name: &'static str, value: f64) {
        lock(&self.aggregates).set_gauge(name, value);
        let mut line = String::with_capacity(64);
        line.push_str("{\"kind\":\"gauge\",\"t_us\":");
        line.push_str(&crate::now_us().to_string());
        line.push_str(",\"name\":");
        write_json_string(&mut line, name);
        line.push_str(",\"value\":");
        write_json_f64(&mut line, value);
        self.push_who(&mut line);
        line.push('}');
        self.write_line(&line);
    }

    fn histogram(&self, name: &'static str, value: f64) {
        lock(&self.aggregates).record_histogram(name, value);
    }

    fn flush(&self) {
        let drained = {
            let mut agg = lock(&self.aggregates);
            let snapshot = agg.clone();
            agg.clear();
            snapshot
        };
        for (name, value) in drained.counters() {
            let mut line = String::with_capacity(64);
            line.push_str("{\"kind\":\"counter\",\"name\":");
            write_json_string(&mut line, name);
            line.push_str(",\"value\":");
            line.push_str(&value.to_string());
            self.push_who(&mut line);
            line.push('}');
            self.write_line(&line);
        }
        for (name, h) in drained.histograms() {
            let mut line = String::with_capacity(128);
            line.push_str("{\"kind\":\"histogram\",\"name\":");
            write_json_string(&mut line, name);
            use std::fmt::Write as _;
            let _ = write!(line, ",\"count\":{}", h.count());
            line.push_str(",\"sum\":");
            write_json_f64(&mut line, h.sum());
            line.push_str(",\"min\":");
            write_json_f64(&mut line, h.min());
            line.push_str(",\"max\":");
            write_json_f64(&mut line, h.max());
            line.push_str(",\"buckets\":[");
            for (i, (lo, hi, count)) in h.nonzero_buckets().into_iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push('[');
                write_json_f64(&mut line, lo);
                line.push(',');
                write_json_f64(&mut line, hi);
                let _ = write!(line, ",{count}]");
            }
            line.push(']');
            self.push_who(&mut line);
            line.push('}');
            self.write_line(&line);
        }
        let _ = lock(&self.out).flush();
    }
}

impl Drop for JsonlSubscriber {
    fn drop(&mut self) {
        self.flush();
    }
}

// --------------------------------------------------------------- summary

#[derive(Debug, Clone, Copy, Default)]
struct SpanStat {
    count: u64,
    total_us: f64,
    max_us: f64,
}

/// Aggregates spans, events and metrics, and prints one human-readable
/// table when dropped (or on first flush) — the shared timing report
/// of the figure binaries (`--telemetry-summary`).
///
/// The table prints **once**: the first of flush/drop wins, so
/// installing behind an [`InstallGuard`](crate::InstallGuard) (whose
/// drop flushes) behaves the same as holding the subscriber directly.
pub struct SummarySubscriber {
    spans: Mutex<BTreeMap<&'static str, SpanStat>>,
    events: Mutex<BTreeMap<&'static str, u64>>,
    metrics: Mutex<MetricsRegistry>,
    out: Mutex<Box<dyn Write + Send>>,
    printed: AtomicBool,
}

impl SummarySubscriber {
    /// Prints the closing table to stderr.
    pub fn stderr() -> Self {
        Self::to_writer(Box::new(io::stderr()))
    }

    /// Prints the closing table to an arbitrary writer.
    pub fn to_writer(writer: Box<dyn Write + Send>) -> Self {
        SummarySubscriber {
            spans: Mutex::new(BTreeMap::new()),
            events: Mutex::new(BTreeMap::new()),
            metrics: Mutex::new(MetricsRegistry::new()),
            out: Mutex::new(writer),
            printed: AtomicBool::new(false),
        }
    }

    fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut t = String::new();
        let _ = writeln!(t, "── telemetry summary ─────────────────────────────────────────");
        let spans = lock(&self.spans);
        if !spans.is_empty() {
            let _ = writeln!(
                t,
                "{:<34} {:>8} {:>12} {:>12} {:>12}",
                "span", "count", "total", "mean", "max"
            );
            for (name, s) in spans.iter() {
                let _ = writeln!(
                    t,
                    "  {:<32} {:>8} {:>12} {:>12} {:>12}",
                    name,
                    s.count,
                    fmt_us(s.total_us),
                    fmt_us(s.total_us / s.count as f64),
                    fmt_us(s.max_us)
                );
            }
        }
        let events = lock(&self.events);
        if !events.is_empty() {
            let _ = writeln!(t, "{:<34} {:>8}", "event", "count");
            for (name, count) in events.iter() {
                let _ = writeln!(t, "  {:<32} {:>8}", name, count);
            }
        }
        let metrics = lock(&self.metrics);
        let mut any = false;
        for (name, value) in metrics.counters() {
            if !any {
                let _ = writeln!(t, "{:<34} {:>8}", "counter", "value");
                any = true;
            }
            let _ = writeln!(t, "  {:<32} {:>8}", name, value);
        }
        let mut any = false;
        for (name, value) in metrics.gauges() {
            if !any {
                let _ = writeln!(t, "{:<34} {:>12}", "gauge", "last");
                any = true;
            }
            let _ = writeln!(t, "  {:<32} {:>12.6e}", name, value);
        }
        let mut any = false;
        for (name, h) in metrics.histograms() {
            if !any {
                let _ = writeln!(
                    t,
                    "{:<34} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    "histogram", "count", "mean", "p50", "p95", "p99", "max"
                );
                any = true;
            }
            let _ = writeln!(
                t,
                "  {:<32} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                name,
                h.count(),
                fmt_us(h.mean()),
                fmt_us(h.quantile(0.50)),
                fmt_us(h.quantile(0.95)),
                fmt_us(h.quantile(0.99)),
                fmt_us(h.max())
            );
        }
        let _ = writeln!(t, "──────────────────────────────────────────────────────────────");
        t
    }
}

impl Subscriber for SummarySubscriber {
    fn event(&self, record: &EventRecord) {
        *lock(&self.events).entry(record.name).or_insert(0) += 1;
    }

    fn span_end(&self, record: &SpanRecord) {
        let mut spans = lock(&self.spans);
        let stat = spans.entry(record.name).or_default();
        stat.count += 1;
        stat.total_us += record.dur_us;
        stat.max_us = stat.max_us.max(record.dur_us);
    }

    fn counter(&self, name: &'static str, delta: u64) {
        lock(&self.metrics).add_counter(name, delta);
    }

    fn gauge(&self, name: &'static str, value: f64) {
        lock(&self.metrics).set_gauge(name, value);
    }

    fn histogram(&self, name: &'static str, value: f64) {
        lock(&self.metrics).record_histogram(name, value);
    }

    fn flush(&self) {
        if self.printed.swap(true, Ordering::SeqCst) {
            return;
        }
        let table = self.render();
        let mut out = lock(&self.out);
        let _ = out.write_all(table.as_bytes());
        let _ = out.flush();
    }
}

impl Drop for SummarySubscriber {
    fn drop(&mut self) {
        self.flush();
    }
}

// ------------------------------------------------------------ collecting

/// One captured signal, as stored by [`CollectingSubscriber`].
#[derive(Debug, Clone)]
pub enum Record {
    /// A point-in-time event.
    Event {
        /// Microseconds since the telemetry epoch.
        t_us: u64,
        /// Event name.
        name: &'static str,
        /// Typed fields.
        fields: Fields,
    },
    /// A completed span.
    Span {
        /// Start time in microseconds since the telemetry epoch.
        t_us: u64,
        /// Duration in microseconds.
        dur_us: f64,
        /// Span name.
        name: &'static str,
        /// Typed fields.
        fields: Fields,
    },
}

impl Record {
    /// The record's name.
    pub fn name(&self) -> &'static str {
        match self {
            Record::Event { name, .. } | Record::Span { name, .. } => name,
        }
    }

    /// The record's fields.
    pub fn fields(&self) -> &Fields {
        match self {
            Record::Event { fields, .. } | Record::Span { fields, .. } => fields,
        }
    }

    /// Field lookup by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        crate::field(self.fields(), key)
    }

    /// The span duration in microseconds (`None` for events).
    pub fn dur_us(&self) -> Option<f64> {
        match self {
            Record::Span { dur_us, .. } => Some(*dur_us),
            Record::Event { .. } => None,
        }
    }
}

/// Captures everything in memory: events and spans verbatim, metrics
/// aggregated. Built for tests ("assert the solver emitted a refine
/// event") and for harnesses that want a [`MetricsRegistry`] snapshot
/// per run.
#[derive(Default)]
pub struct CollectingSubscriber {
    records: Mutex<Vec<Record>>,
    metrics: Mutex<MetricsRegistry>,
}

impl CollectingSubscriber {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// All captured events and spans, in emission order.
    pub fn records(&self) -> Vec<Record> {
        lock(&self.records).clone()
    }

    /// The captured events with the given name.
    pub fn events(&self, name: &str) -> Vec<Record> {
        lock(&self.records)
            .iter()
            .filter(|r| matches!(r, Record::Event { .. }) && r.name() == name)
            .cloned()
            .collect()
    }

    /// The captured spans with the given name.
    pub fn spans(&self, name: &str) -> Vec<Record> {
        lock(&self.records)
            .iter()
            .filter(|r| matches!(r, Record::Span { .. }) && r.name() == name)
            .cloned()
            .collect()
    }

    /// A snapshot of the aggregated metrics.
    pub fn snapshot(&self) -> MetricsRegistry {
        lock(&self.metrics).clone()
    }

    /// Drops everything captured so far.
    pub fn clear(&self) {
        lock(&self.records).clear();
        lock(&self.metrics).clear();
    }
}

impl Subscriber for CollectingSubscriber {
    fn event(&self, record: &EventRecord) {
        lock(&self.records).push(Record::Event {
            t_us: record.t_us,
            name: record.name,
            fields: record.fields.clone(),
        });
    }

    fn span_end(&self, record: &SpanRecord) {
        lock(&self.records).push(Record::Span {
            t_us: record.t_us,
            dur_us: record.dur_us,
            name: record.name,
            fields: record.fields.clone(),
        });
    }

    fn counter(&self, name: &'static str, delta: u64) {
        lock(&self.metrics).add_counter(name, delta);
    }

    fn gauge(&self, name: &'static str, value: f64) {
        lock(&self.metrics).set_gauge(name, value);
    }

    fn histogram(&self, name: &'static str, value: f64) {
        lock(&self.metrics).record_histogram(name, value);
    }
}

// ---------------------------------------------------------------- fanout

/// Broadcasts every signal to several sinks (e.g. a JSONL file *and*
/// the closing summary table). Enabled iff any child is enabled.
pub struct Fanout {
    sinks: Vec<std::sync::Arc<dyn Subscriber>>,
}

impl Fanout {
    /// Wraps the given sinks.
    pub fn new(sinks: Vec<std::sync::Arc<dyn Subscriber>>) -> Self {
        Fanout { sinks }
    }
}

impl Subscriber for Fanout {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn event(&self, record: &EventRecord) {
        for s in &self.sinks {
            s.event(record);
        }
    }

    fn span_end(&self, record: &SpanRecord) {
        for s in &self.sinks {
            s.span_end(record);
        }
    }

    fn counter(&self, name: &'static str, delta: u64) {
        for s in &self.sinks {
            s.counter(name, delta);
        }
    }

    fn gauge(&self, name: &'static str, value: f64) {
        for s in &self.sinks {
            s.gauge(name, value);
        }
    }

    fn histogram(&self, name: &'static str, value: f64) {
        for s in &self.sinks {
            s.histogram(name, value);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_json, Json};
    use std::sync::Arc;

    /// A writer handing each byte to a shared buffer, so tests can
    /// read back what a subscriber wrote.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(lock(&self.0).clone()).expect("utf8")
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            lock(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn sample_event() -> EventRecord {
        EventRecord {
            t_us: 42,
            name: "solver.gap",
            fields: vec![
                ("iteration", Value::U64(7)),
                ("lower", Value::F64(0.01)),
                ("upper", Value::F64(0.03)),
                ("kind", Value::Str("te\"st")),
                ("ok", Value::Bool(true)),
            ],
        }
    }

    #[test]
    fn jsonl_round_trip_event_span_gauge() {
        let buf = SharedBuf::default();
        let sub = JsonlSubscriber::new(Box::new(buf.clone()));
        sub.event(&sample_event());
        sub.span_end(&SpanRecord {
            t_us: 1,
            dur_us: 123.5,
            name: "solver.level",
            fields: vec![("bins", Value::U64(128))],
        });
        sub.gauge("solver.mass_drift", 2.5e-16);
        sub.counter("solver.iterations", 412);
        sub.histogram("fft.conv_us", 10.0);
        sub.histogram("fft.conv_us", 20.0);
        sub.flush();

        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        // meta anchor first, then event + span + gauge inline, counter
        // + histogram drained on flush.
        assert_eq!(lines.len(), 6, "{text}");
        for line in &lines {
            parse_json(line).unwrap_or_else(|e| panic!("{e} in {line}"));
        }

        let meta = parse_json(lines[0]).unwrap();
        assert_eq!(meta.get("kind").unwrap().as_str(), Some("meta"));
        assert!(meta.get("unix_us").unwrap().as_u64().unwrap() > 0);

        let event = parse_json(lines[1]).unwrap();
        assert_eq!(event.get("kind").unwrap().as_str(), Some("event"));
        assert_eq!(event.get("name").unwrap().as_str(), Some("solver.gap"));
        let fields = event.get("fields").unwrap();
        assert_eq!(fields.get("iteration").unwrap().as_u64(), Some(7));
        assert_eq!(fields.get("lower").unwrap().as_f64(), Some(0.01));
        assert_eq!(fields.get("kind").unwrap().as_str(), Some("te\"st"));
        assert_eq!(fields.get("ok").unwrap().as_bool(), Some(true));

        let span = parse_json(lines[2]).unwrap();
        assert_eq!(span.get("kind").unwrap().as_str(), Some("span"));
        assert_eq!(span.get("dur_us").unwrap().as_f64(), Some(123.5));
        assert_eq!(
            span.get("fields").unwrap().get("bins").unwrap().as_u64(),
            Some(128)
        );

        let gauge = parse_json(lines[3]).unwrap();
        assert_eq!(gauge.get("kind").unwrap().as_str(), Some("gauge"));
        assert_eq!(gauge.get("value").unwrap().as_f64(), Some(2.5e-16));

        let counter = parse_json(lines[4]).unwrap();
        assert_eq!(counter.get("kind").unwrap().as_str(), Some("counter"));
        assert_eq!(counter.get("value").unwrap().as_u64(), Some(412));

        let hist = parse_json(lines[5]).unwrap();
        assert_eq!(hist.get("kind").unwrap().as_str(), Some("histogram"));
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(hist.get("sum").unwrap().as_f64(), Some(30.0));
        assert!(!hist.get("buckets").unwrap().as_array().unwrap().is_empty());

        // Every record (meta included) carries the same identity.
        let default_id = format!("pid-{}", std::process::id());
        for line in &lines {
            let who = parse_json(line).unwrap();
            assert_eq!(
                who.get("who").and_then(Json::as_str).map(String::from),
                Some(default_id.clone()),
                "{line}"
            );
        }
    }

    #[test]
    fn jsonl_identity_is_stamped_and_anchored() {
        let buf = SharedBuf::default();
        let sub =
            JsonlSubscriber::new(Box::new(buf.clone())).with_identity("w-dead-beef");
        assert_eq!(sub.identity(), "w-dead-beef");
        sub.event(&sample_event());
        drop(sub);
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        let meta = parse_json(lines[0]).unwrap();
        assert_eq!(meta.get("kind").unwrap().as_str(), Some("meta"));
        assert_eq!(meta.get("who").unwrap().as_str(), Some("w-dead-beef"));
        // The anchor pair samples both clocks at one instant.
        assert!(meta.get("t_us").unwrap().as_u64().is_some());
        assert!(meta.get("unix_us").unwrap().as_u64().unwrap() > 1_000_000_000_000_000);
        let event = parse_json(lines[1]).unwrap();
        assert_eq!(event.get("who").unwrap().as_str(), Some("w-dead-beef"));
    }

    #[test]
    fn jsonl_flush_drains_without_duplicating() {
        let buf = SharedBuf::default();
        let sub = JsonlSubscriber::new(Box::new(buf.clone()));
        sub.counter("c", 1);
        sub.flush();
        sub.flush(); // nothing new → no extra line
        drop(sub); // drop flushes again → still nothing new
        let text = buf.contents();
        // The meta anchor plus the one drained counter.
        assert_eq!(text.lines().count(), 2, "{text}");
    }

    #[test]
    fn summary_prints_once_with_all_sections() {
        let buf = SharedBuf::default();
        let sub = SummarySubscriber::to_writer(Box::new(buf.clone()));
        sub.span_end(&SpanRecord {
            t_us: 0,
            dur_us: 1000.0,
            name: "solver.solve",
            fields: vec![],
        });
        sub.event(&sample_event());
        sub.counter("solver.iterations", 3);
        sub.gauge("solver.mass_drift", 1e-12);
        sub.histogram("fft.conv_us", 5.0);
        sub.flush();
        sub.flush();
        drop(sub);
        let text = buf.contents();
        assert_eq!(
            text.matches("telemetry summary").count(),
            1,
            "must print exactly once:\n{text}"
        );
        for needle in [
            "solver.solve",
            "solver.gap",
            "solver.iterations",
            "solver.mass_drift",
            "fft.conv_us",
            "1.00 ms",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
    }

    #[test]
    fn collector_captures_and_clears() {
        let sub = CollectingSubscriber::new();
        sub.event(&sample_event());
        sub.counter("c", 2);
        assert_eq!(sub.events("solver.gap").len(), 1);
        assert_eq!(sub.records().len(), 1);
        assert_eq!(sub.snapshot().counter("c"), Some(2));
        sub.clear();
        assert!(sub.records().is_empty());
        assert!(sub.snapshot().is_empty());
    }

    #[test]
    fn fanout_broadcasts_and_reports_enabled() {
        let a = Arc::new(CollectingSubscriber::new());
        let b = Arc::new(CollectingSubscriber::new());
        let fan = Fanout::new(vec![a.clone(), b.clone()]);
        assert!(fan.enabled());
        fan.event(&sample_event());
        fan.gauge("g", 1.0);
        assert_eq!(a.events("solver.gap").len(), 1);
        assert_eq!(b.events("solver.gap").len(), 1);
        assert_eq!(b.snapshot().gauge("g"), Some(1.0));

        let null_only = Fanout::new(vec![Arc::new(NullSubscriber) as Arc<dyn Subscriber>]);
        assert!(!null_only.enabled());
    }
}
