//! `lrd-obs` — zero-dependency structured observability for the `lrd`
//! workspace.
//!
//! The solver, the traffic generators and the experiment binaries all
//! run long iterative numerical loops whose convergence behaviour
//! (gap per iteration, grid-refinement epochs, mass drift, degradation
//! causes) is invisible from their final return values alone. This
//! crate provides the telemetry layer that makes those trajectories
//! observable without pulling in `tracing`, `metrics` or `serde` — the
//! workspace is hermetic by construction (DESIGN.md §6).
//!
//! # Model
//!
//! Three signal kinds flow through one pluggable [`Subscriber`]:
//!
//! * **Spans** — a named region of work with monotonic start time and
//!   duration ([`Span`], created with the [`span!`] macro; the record
//!   is dispatched when the span drops).
//! * **Events** — a named point-in-time observation with typed fields
//!   ([`event!`]), e.g. one `solver.gap` event per solver iteration.
//! * **Metrics** — [`counter`], [`gauge`] and [`histogram`] updates,
//!   aggregated by sinks into a [`MetricsRegistry`] (histograms use
//!   fixed log-spaced buckets, see [`LogHistogram`]).
//!
//! # Subscribers
//!
//! * **none installed / [`NullSubscriber`]** — the default. Every
//!   entry point first checks one relaxed atomic ([`enabled`]); with
//!   no subscriber the instrumentation performs no allocation, no
//!   clock read and no dispatch — the hot paths pay a single
//!   predictable branch.
//! * [`JsonlSubscriber`] — one JSON object per line to any writer
//!   (events, span ends and gauge updates inline; counters and
//!   histograms aggregated and drained as snapshot lines on flush).
//! * [`SummarySubscriber`] — aggregates everything and prints one
//!   human-readable table (to stderr by default) when dropped.
//! * [`CollectingSubscriber`] — in-memory capture for tests and for
//!   harnesses that want [`MetricsRegistry`] snapshots.
//!
//! Install with [`install`] (or [`install_fanout`] for several sinks
//! at once); the returned [`InstallGuard`] restores the previous
//! subscriber on drop, so scoped installation composes.
//!
//! ```
//! use std::sync::Arc;
//!
//! let collector = Arc::new(lrd_obs::CollectingSubscriber::new());
//! {
//!     let _guard = lrd_obs::install(collector.clone());
//!     let mut span = lrd_obs::span!("demo.work", size = 3u64);
//!     lrd_obs::event!("demo.tick", step = 1u64, gap = 0.5);
//!     lrd_obs::counter("demo.ticks", 1);
//!     span.record("done", true);
//! }
//! assert_eq!(collector.events("demo.tick").len(), 1);
//! assert_eq!(collector.spans("demo.work").len(), 1);
//! assert_eq!(collector.snapshot().counter("demo.ticks"), Some(1));
//! ```
//!
//! # Contract for subscribers
//!
//! Callbacks run on the emitting thread while the global subscriber
//! slot is read-locked: they must not call [`install`]/[`uninstall`]
//! (deadlock) and should be fast — expensive sinks should buffer.
//! Implementations must be `Send + Sync`.

#![warn(missing_docs)]

mod json;
mod metrics;
mod sinks;

pub use json::{parse_json, write_json, write_json_f64, write_json_string, Json, JsonError};
pub use metrics::{HistogramSnapshot, LogHistogram, MetricsRegistry, MetricsSnapshot};
pub use sinks::{
    CollectingSubscriber, Fanout, JsonlSubscriber, NullSubscriber, Record, SummarySubscriber,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

// ---------------------------------------------------------------- values

/// A typed field value attached to spans and events.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (iteration counts, bin counts, sizes).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (bounds, gaps, drifts, durations).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Static string (variant names, kinds).
    Str(&'static str),
    /// Owned string.
    String(String),
}

impl Value {
    /// The value as `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `u64` if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:?}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::String(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

/// Field list attached to a span or event: insertion-ordered
/// `(key, value)` pairs.
pub type Fields = Vec<(&'static str, Value)>;

/// Looks up a field by key in a field list.
pub fn field<'a>(fields: &'a Fields, key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
}

// --------------------------------------------------------------- records

/// A point-in-time event dispatched to the subscriber.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Microseconds since the process telemetry epoch (monotonic).
    pub t_us: u64,
    /// Event name, dot-separated by convention (`solver.gap`).
    pub name: &'static str,
    /// Typed fields.
    pub fields: Fields,
}

/// A completed span dispatched to the subscriber when it drops.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Start time: microseconds since the process telemetry epoch.
    pub t_us: u64,
    /// Duration in microseconds (fractional; monotonic clock).
    pub dur_us: f64,
    /// Span name (`solver.level`).
    pub name: &'static str,
    /// Fields recorded at creation plus any added via
    /// [`Span::record`].
    pub fields: Fields,
}

// ------------------------------------------------------------ subscriber

/// A telemetry sink. See the crate docs for the callback contract.
pub trait Subscriber: Send + Sync {
    /// Whether this subscriber wants any signals at all. Returning
    /// `false` (as [`NullSubscriber`] does) keeps the global fast path
    /// disabled so instrumented code skips all work.
    fn enabled(&self) -> bool {
        true
    }
    /// A point-in-time event.
    fn event(&self, record: &EventRecord);
    /// A completed span.
    fn span_end(&self, record: &SpanRecord);
    /// A monotonic counter increment.
    fn counter(&self, name: &'static str, delta: u64);
    /// A gauge update (last-value-wins).
    fn gauge(&self, name: &'static str, value: f64);
    /// A histogram observation.
    fn histogram(&self, name: &'static str, value: f64);
    /// Flush buffered output / drain aggregates. Idempotent.
    fn flush(&self) {}
}

// ---------------------------------------------------------- global state

static ENABLED: AtomicBool = AtomicBool::new(false);
static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the process telemetry epoch (the first call to
/// any telemetry entry point). Monotonic.
pub fn now_us() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_micros() as u64
}

/// Whether a subscriber that wants signals is installed. One relaxed
/// atomic load — this is the fast path the hot loops pay when
/// telemetry is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn with_subscriber(f: impl FnOnce(&dyn Subscriber)) {
    let guard = SUBSCRIBER.read().unwrap_or_else(|e| e.into_inner());
    if let Some(sub) = guard.as_ref() {
        f(sub.as_ref());
    }
}

/// Installs `subscriber` as the process-global sink, returning a guard
/// that restores the previously installed subscriber (flushing the new
/// one) when dropped.
pub fn install(subscriber: Arc<dyn Subscriber>) -> InstallGuard {
    let mut slot = SUBSCRIBER.write().unwrap_or_else(|e| e.into_inner());
    let previous = slot.take();
    ENABLED.store(subscriber.enabled(), Ordering::SeqCst);
    *slot = Some(subscriber);
    InstallGuard { previous }
}

/// Installs several sinks at once: zero sinks is a no-op guard, one
/// sink installs directly, more are wrapped in a [`Fanout`].
pub fn install_fanout(mut sinks: Vec<Arc<dyn Subscriber>>) -> InstallGuard {
    match sinks.len() {
        0 => InstallGuard { previous: None },
        1 => install(sinks.pop().expect("len checked")),
        _ => install(Arc::new(Fanout::new(sinks))),
    }
}

/// Flushes the installed subscriber in place without uninstalling it.
///
/// Long-running processes (the `lrd-serve` daemon) call this
/// periodically so that buffered sinks — notably the `BufWriter` inside
/// a file-backed [`JsonlSubscriber`] — have durable output even if the
/// process is later killed without unwinding (SIGKILL). No-op when no
/// subscriber is installed.
pub fn flush_current() {
    with_subscriber(|s| s.flush());
}

/// Removes the installed subscriber (if any), flushing it first.
pub fn uninstall() {
    let mut slot = SUBSCRIBER.write().unwrap_or_else(|e| e.into_inner());
    if let Some(sub) = slot.take() {
        sub.flush();
    }
    ENABLED.store(false, Ordering::SeqCst);
}

/// Restores the previously installed subscriber on drop, flushing the
/// one installed by the matching [`install`] call first.
#[must_use = "dropping the guard immediately uninstalls the subscriber"]
pub struct InstallGuard {
    previous: Option<Arc<dyn Subscriber>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let mut slot = SUBSCRIBER.write().unwrap_or_else(|e| e.into_inner());
        if let Some(current) = slot.take() {
            current.flush();
        }
        *slot = self.previous.take();
        let on = matches!(&*slot, Some(s) if s.enabled());
        ENABLED.store(on, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for InstallGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstallGuard").finish_non_exhaustive()
    }
}

// ------------------------------------------------------------- emitters

/// Dispatches a pre-built event. Prefer the [`event!`] macro, which
/// skips field construction entirely when telemetry is disabled.
pub fn dispatch_event(name: &'static str, fields: Fields) {
    if !enabled() {
        return;
    }
    let record = EventRecord {
        t_us: now_us(),
        name,
        fields,
    };
    with_subscriber(|s| s.event(&record));
}

/// Increments the named counter by `delta`.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_subscriber(|s| s.counter(name, delta));
}

/// Sets the named gauge to `value` (last-value-wins).
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    with_subscriber(|s| s.gauge(name, value));
}

/// Records one observation into the named histogram.
#[inline]
pub fn histogram(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    with_subscriber(|s| s.histogram(name, value));
}

// ----------------------------------------------------------------- span

/// A timed region of work. Created via the [`span!`] macro; the
/// [`SpanRecord`] is dispatched when the span drops. When telemetry is
/// disabled the span is an empty shell: no clock read, no allocation,
/// no dispatch.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    name: &'static str,
    t_us: u64,
    start: Instant,
    fields: Fields,
}

impl Span {
    /// Starts a recording span. Call sites should use [`span!`], which
    /// only builds the field list when telemetry is enabled.
    pub fn new(name: &'static str, fields: Fields) -> Span {
        Span {
            inner: Some(SpanInner {
                name,
                t_us: now_us(),
                start: Instant::now(),
                fields,
            }),
        }
    }

    /// A span that records nothing and dispatches nothing.
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// Whether this span will dispatch a record on drop.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches a field to the span's end record. No-op when the span
    /// is not recording.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let record = SpanRecord {
                t_us: inner.t_us,
                dur_us: inner.start.elapsed().as_secs_f64() * 1e6,
                name: inner.name,
                fields: inner.fields,
            };
            feed_span_watch(&record);
            with_subscriber(|s| s.span_end(&record));
        }
    }
}

// ------------------------------------------------------------ span watch

thread_local! {
    /// The active [`watch_span`] frame on this thread: the watched span
    /// name and the accumulated duration of matching spans so far.
    static SPAN_WATCH: std::cell::Cell<Option<(&'static str, Option<f64>)>> =
        const { std::cell::Cell::new(None) };
}

/// Whether a [`watch_span`] frame on this thread wants spans named
/// `name`. Checked by [`span!`] so watched spans record even when no
/// global subscriber is installed; a single thread-local read when
/// telemetry is otherwise off.
pub fn span_watched(name: &'static str) -> bool {
    SPAN_WATCH.with(|w| matches!(w.get(), Some((n, _)) if n == name))
}

fn feed_span_watch(record: &SpanRecord) {
    SPAN_WATCH.with(|w| {
        if let Some((name, total)) = w.get() {
            if name == record.name {
                w.set(Some((name, Some(total.unwrap_or(0.0) + record.dur_us))));
            }
        }
    });
}

/// Runs `f` while watching for spans named `name` **on this thread**,
/// returning `f`'s result and the summed duration (µs) of every
/// matching span that ended during the call — `None` when no such span
/// ended.
///
/// This is how a caller reads the timing a callee's own telemetry span
/// already measures, without installing a subscriber and without a
/// second stopwatch: the sweep runner wraps each point solve in
/// `watch_span("solver.solve", …)` and records the duration into the
/// checkpoint. Watching is independent of the global subscriber — a
/// watched span still dispatches to any installed sink, and when none
/// is installed the span records for the watcher alone. Frames do not
/// nest: an inner `watch_span` on the same thread replaces the outer
/// frame for its duration, and the outer frame resumes (duration
/// already accumulated) when the inner returns.
pub fn watch_span<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, Option<f64>) {
    let previous = SPAN_WATCH.with(|w| w.replace(Some((name, None))));
    let result = f();
    let captured = SPAN_WATCH.with(|w| w.replace(previous));
    (result, captured.and_then(|(_, total)| total))
}

/// Starts a [`Span`] with typed fields, skipping all work when
/// telemetry is disabled:
///
/// ```
/// let mut span = lrd_obs::span!("solver.level", bins = 128u64);
/// span.record("iterations", 42u64);
/// // record dispatched on drop (if a subscriber is installed)
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        let name = $name;
        if $crate::enabled() || $crate::span_watched(name) {
            $crate::Span::new(name, vec![$((stringify!($key), $crate::Value::from($val))),*])
        } else {
            $crate::Span::disabled()
        }
    }};
}

/// Emits a point-in-time event with typed fields, skipping field
/// construction when telemetry is disabled:
///
/// ```
/// lrd_obs::event!("solver.gap", iteration = 7u64, lower = 0.1, upper = 0.3);
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::dispatch_event(
                $name,
                vec![$((stringify!($key), $crate::Value::from($val))),*],
            );
        }
    };
}

/// Formats a duration given in (possibly fractional) microseconds with
/// an auto-selected unit — the one timing format shared by the
/// summary table, the bench harness and the figure binaries.
pub fn fmt_us(us: f64) -> String {
    if !us.is_finite() {
        return format!("{us}");
    }
    if us < 1e3 {
        format!("{us:.2} µs")
    } else if us < 1e6 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{:.3} s", us / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The global subscriber slot is process-wide; serialize the tests
    // that install one.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_by_default_and_null_subscriber_stays_disabled() {
        let _lock = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled());
        let _guard = install(Arc::new(NullSubscriber));
        assert!(!enabled(), "NullSubscriber must keep the fast path off");
        let span = span!("x");
        assert!(!span.is_recording());
    }

    #[test]
    fn install_guard_restores_previous_subscriber() {
        let _lock = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let outer = Arc::new(CollectingSubscriber::new());
        let inner = Arc::new(CollectingSubscriber::new());
        let _g1 = install(outer.clone());
        {
            let _g2 = install(inner.clone());
            event!("scoped", n = 1u64);
        }
        event!("outer", n = 2u64);
        assert_eq!(inner.events("scoped").len(), 1);
        assert_eq!(inner.events("outer").len(), 0);
        assert_eq!(outer.events("outer").len(), 1);
        assert_eq!(outer.events("scoped").len(), 0);
        uninstall();
        assert!(!enabled());
    }

    #[test]
    fn spans_measure_time_and_carry_fields() {
        let _lock = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let collector = Arc::new(CollectingSubscriber::new());
        {
            let _guard = install(collector.clone());
            let mut span = span!("work", size = 7u64);
            std::thread::sleep(std::time::Duration::from_millis(2));
            span.record("ok", true);
        }
        let spans = collector.spans("work");
        assert_eq!(spans.len(), 1);
        let Record::Span { dur_us, fields, .. } = &spans[0] else {
            panic!("expected span record");
        };
        assert!(*dur_us >= 1e3, "slept 2 ms but measured {dur_us} µs");
        assert_eq!(field(fields, "size").and_then(Value::as_u64), Some(7));
        assert_eq!(field(fields, "ok").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn metric_emitters_reach_the_registry() {
        let _lock = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let collector = Arc::new(CollectingSubscriber::new());
        {
            let _guard = install(collector.clone());
            counter("c", 2);
            counter("c", 3);
            gauge("g", 1.5);
            gauge("g", 2.5);
            histogram("h", 10.0);
            histogram("h", 1000.0);
        }
        let snap = collector.snapshot();
        assert_eq!(snap.counter("c"), Some(5));
        assert_eq!(snap.gauge("g"), Some(2.5));
        let h = snap.histogram("h").expect("histogram recorded");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 1010.0);
    }

    #[test]
    fn value_conversions_and_accessors() {
        assert_eq!(Value::from(3usize).as_u64(), Some(3));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from(-2i64).as_f64(), Some(-2.0));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::from(String::from("t")).as_str(), Some("t"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(7u32).as_u64(), Some(7));
    }

    #[test]
    fn watch_span_times_without_a_subscriber() {
        let _lock = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        assert!(!enabled());
        // Watched spans record even though telemetry is globally off…
        let ((), dur) = watch_span("watched.work", || {
            let _span = span!("watched.work", size = 1u64);
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        assert!(dur.unwrap() >= 1e3, "slept 2 ms but watched {dur:?} µs");
        // …other spans and a watch-free call record nothing.
        let ((), dur) = watch_span("watched.work", || {
            let _span = span!("other.work");
        });
        assert_eq!(dur, None);
        let span = span!("watched.work");
        assert!(!span.is_recording(), "watch must not outlive its frame");
    }

    #[test]
    fn watch_span_sums_matching_spans_and_coexists_with_sinks() {
        let _lock = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let collector = Arc::new(CollectingSubscriber::new());
        let _guard = install(collector.clone());
        let ((), dur) = watch_span("w.sum", || {
            for _ in 0..3 {
                let _span = span!("w.sum");
            }
        });
        let spans = collector.spans("w.sum");
        assert_eq!(spans.len(), 3, "watched spans still reach the sink");
        let total: f64 = spans
            .iter()
            .map(|r| match r {
                Record::Span { dur_us, .. } => *dur_us,
                _ => 0.0,
            })
            .sum();
        assert_eq!(dur, Some(total), "watch must sum every matching span");
    }

    #[test]
    fn flush_current_drains_buffered_sinks_in_place() {
        let _lock = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf::default();
        let _guard = install(Arc::new(JsonlSubscriber::new(Box::new(buf.clone()))));
        counter("flush.test", 3);
        // Counters are aggregated, not written inline: the snapshot
        // line only appears after an explicit in-place flush.
        let before = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(!before.contains("flush.test"));
        flush_current();
        let after = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(after.contains("flush.test"), "flush must drain aggregates");
        // Telemetry keeps flowing afterwards — the subscriber was
        // flushed, not uninstalled.
        assert!(enabled());
        // No subscriber installed at all: a bare flush is a no-op.
        uninstall();
        flush_current();
    }

    #[test]
    fn duration_formatting_selects_units() {
        assert!(fmt_us(3.5).ends_with("µs"));
        assert!(fmt_us(3.5e3).ends_with("ms"));
        assert!(fmt_us(3.5e6).ends_with('s'));
    }
}
