//! A minimal JSON value, writer helpers and recursive-descent parser.
//!
//! The workspace carries no serde; this module is just enough JSON for
//! the telemetry layer: [`JsonlSubscriber`](crate::JsonlSubscriber)
//! writes one object per line, and tests plus
//! `examples/telemetry_check.rs` parse those lines back with
//! [`parse_json`] to validate the stream. Numbers are `f64` (ample for
//! telemetry payloads); non-finite floats are *written* as strings
//! (`"NaN"`, `"inf"`, `"-inf"`) because JSON has no literal for them.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects: `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as `f64`, also accepting the string spellings
    /// [`write_json_f64`] uses for non-finite values (`"inf"`,
    /// `"-inf"`, `"NaN"`) — the inverse of that writer.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Str(s) => match s.as_str() {
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                "NaN" => Some(f64::NAN),
                _ => None,
            },
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements if the value is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members if the value is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Why a JSON document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What the parser expected.
    pub expected: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: expected {}", self.offset, self.expected)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("end of input"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, expected: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            expected,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8, expected: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(expected))
        }
    }

    fn eat_literal(&mut self, lit: &'static str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(lit))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "'{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "':'")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("closing '\"'")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("four hex digits"))?;
                            // Surrogate pairs are not needed for
                            // telemetry payloads; map lone surrogates
                            // to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("an escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input came in as
                    // &str and the parser only advances by whole
                    // scalars, so this slice starts on a boundary.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("valid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty checked");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError {
                offset: start,
                expected: "a number",
            })
    }
}

/// Serializes `value` back to compact JSON text.
///
/// Round-trips with [`parse_json`]: finite numbers use the shortest
/// exact `f64` representation, so `parse → write → parse` preserves
/// every bit. Non-finite numbers never occur in a parsed [`Json`]
/// (they arrive as the strings [`write_json_f64`] spells them as).
pub fn write_json(out: &mut String, value: &Json) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(v) => write_json_f64(out, *v),
        Json::Str(s) => write_json_string(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(out, item);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (key, value)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, key);
                out.push(':');
                write_json(out, value);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_json(&mut out, self);
        f.write_str(&out)
    }
}

/// Appends `text` to `out` as a JSON string literal (quoted, escaped).
pub fn write_json_string(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `value` to `out` as a JSON number, spelling non-finite
/// values as strings (JSON has no literal for them). Finite values use
/// the shortest representation that parses back to the identical bits
/// — the property the sweep checkpoints rely on.
pub fn write_json_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        // `{:?}` is the shortest round-trip representation and is
        // always a valid JSON number for finite inputs.
        out.push_str(&format!("{value:?}"));
    } else if value.is_nan() {
        out.push_str("\"NaN\"");
    } else if value > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null"), Ok(Json::Null));
        assert_eq!(parse_json("true"), Ok(Json::Bool(true)));
        assert_eq!(parse_json("false"), Ok(Json::Bool(false)));
        assert_eq!(parse_json("42"), Ok(Json::Num(42.0)));
        assert_eq!(parse_json("-1.5e-3"), Ok(Json::Num(-1.5e-3)));
        assert_eq!(parse_json("\"hi\""), Ok(Json::Str("hi".into())));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse_json(r#"{"a":[1,2,{"b":"x"}],"c":{"d":null}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(doc.get("c").unwrap().get("d"), Some(&Json::Null));
    }

    #[test]
    fn unescapes_strings() {
        let doc = parse_json(r#""a\"b\\c\ndAe""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\ndAe"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "{\"a\" 1}", "nul"] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_reports_offset() {
        let e = parse_json("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn string_writer_round_trips() {
        for s in ["plain", "with \"quotes\"", "tab\there", "new\nline", "π∆"] {
            let mut out = String::new();
            write_json_string(&mut out, s);
            assert_eq!(parse_json(&out).unwrap().as_str(), Some(s));
        }
    }

    #[test]
    fn f64_writer_round_trips() {
        for v in [0.0, 1.0, -2.5, 1e-10, std::f64::consts::PI, 1e300] {
            let mut out = String::new();
            write_json_f64(&mut out, v);
            assert_eq!(parse_json(&out).unwrap().as_f64(), Some(v));
        }
        let mut out = String::new();
        write_json_f64(&mut out, f64::NAN);
        assert_eq!(parse_json(&out).unwrap().as_str(), Some("NaN"));
        let mut out = String::new();
        write_json_f64(&mut out, f64::INFINITY);
        assert_eq!(parse_json(&out).unwrap().as_str(), Some("inf"));
    }

    #[test]
    fn value_writer_round_trips_bit_exactly() {
        for text in [
            "null",
            "true",
            r#"{"kind":"point","index":5,"coords":[0.05,"inf"],"value":1.25e-7}"#,
            r#"[1,-2.5,"x",{"a":[]},{}]"#,
        ] {
            let parsed = parse_json(text).unwrap();
            let mut out = String::new();
            write_json(&mut out, &parsed);
            assert_eq!(parse_json(&out).unwrap(), parsed, "{text}");
            assert_eq!(out, parsed.to_string());
        }
        // Finite f64 bits survive a full write → parse → write cycle.
        for v in [1.0 / 3.0, 6.02e23, 5e-324, -0.0] {
            let mut out = String::new();
            write_json_f64(&mut out, v);
            let back = parse_json(&out).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn as_num_reads_nonfinite_spellings() {
        assert_eq!(parse_json("1.5").unwrap().as_num(), Some(1.5));
        assert_eq!(
            parse_json("\"inf\"").unwrap().as_num(),
            Some(f64::INFINITY)
        );
        assert_eq!(
            parse_json("\"-inf\"").unwrap().as_num(),
            Some(f64::NEG_INFINITY)
        );
        assert!(parse_json("\"NaN\"").unwrap().as_num().unwrap().is_nan());
        assert_eq!(parse_json("\"x\"").unwrap().as_num(), None);
        assert_eq!(parse_json("true").unwrap().as_num(), None);
    }

    #[test]
    fn whole_number_accessor() {
        assert_eq!(parse_json("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse_json("7.5").unwrap().as_u64(), None);
        assert_eq!(parse_json("-7").unwrap().as_u64(), None);
    }
}
