//! The metrics side of the telemetry layer: counters, gauges and
//! log-bucketed histograms, aggregated into a [`MetricsRegistry`].
//!
//! The registry is a plain data structure (no global state, no
//! interior mutability) — sinks own one behind their own lock, and
//! the bench harness captures cloned snapshots of it alongside
//! wall-clock results.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{parse_json, write_json_f64, write_json_string, Json};

/// Number of histogram buckets.
const BUCKETS: usize = 64;
/// Bucket `i` covers `[2^(i - OFFSET), 2^(i + 1 - OFFSET))`; with 64
/// buckets this spans `2^-32 ≈ 2.3e-10` to `2^32 ≈ 4.3e9` — ample for
/// microsecond durations, gaps and iteration counts. Values at or
/// below zero (or under the first bound) land in bucket 0; values
/// beyond the last bound land in the last bucket.
const OFFSET: i32 = 32;

/// A fixed-size histogram with log-spaced (powers-of-two) buckets.
///
/// Constant memory, O(1) record, and exact `count`/`sum`/`min`/`max`
/// alongside the bucketed shape.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(value: f64) -> usize {
        if value <= 0.0 || !value.is_finite() {
            return 0;
        }
        let exp = value.log2().floor() as i64 + OFFSET as i64;
        exp.clamp(0, BUCKETS as i64 - 1) as usize
    }

    /// The `[lo, hi)` bounds of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        let lo = 2f64.powi(i as i32 - OFFSET);
        let hi = 2f64.powi(i as i32 + 1 - OFFSET);
        (lo, hi)
    }

    /// Records one observation. Non-finite values are counted (in
    /// `count`/`sum`) but land in bucket 0.
    pub fn record(&mut self, value: f64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The non-empty buckets as `(lo, hi, count)` triples.
    pub fn nonzero_buckets(&self) -> Vec<(f64, f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`, clamped) by linear
    /// interpolation within the covering log bucket, clamped to the
    /// exact observed `[min, max]`. `NaN` when empty. With power-of-two
    /// buckets the estimate is within a factor of 2 of the true order
    /// statistic; the clamp makes single-bucket histograms exact.
    pub fn quantile(&self, q: f64) -> f64 {
        let triples = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            });
        quantile_from_buckets(triples, self.count, self.min, self.max, q)
    }
}

/// Shared quantile estimator over `(lo, hi, count)` bucket triples in
/// ascending order — the interpolation behind both [`LogHistogram`]
/// and its wire-format [`HistogramSnapshot`].
fn quantile_from_buckets(
    buckets: impl Iterator<Item = (f64, f64, u64)>,
    count: u64,
    min: f64,
    max: f64,
    q: f64,
) -> f64 {
    if count == 0 {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let target = q * count as f64;
    let clamp = |v: f64| if min <= max { v.clamp(min, max) } else { v };
    let mut cum = 0u64;
    for (lo, hi, c) in buckets {
        if c == 0 {
            continue;
        }
        let next = cum + c;
        if next as f64 >= target {
            let within = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
            return clamp(lo + (hi - lo) * within);
        }
        cum = next;
    }
    clamp(max)
}

/// A self-contained, wire-serializable snapshot of one histogram:
/// exact `count`/`sum`/`min`/`max` plus the sparse non-empty buckets.
///
/// Unlike [`LogHistogram`] the buckets carry their own bounds, so a
/// snapshot parsed from another process (even a future build with
/// different bucket constants) still merges and quantiles correctly.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
    /// Non-empty `(lo, hi, count)` buckets in ascending `lo` order.
    pub buckets: Vec<(f64, f64, u64)>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: Vec::new(),
        }
    }
}

impl From<&LogHistogram> for HistogramSnapshot {
    fn from(h: &LogHistogram) -> Self {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            buckets: h.nonzero_buckets(),
        }
    }
}

impl HistogramSnapshot {
    /// Mean observation (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Quantile estimate with the same interpolation as
    /// [`LogHistogram::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(
            self.buckets.iter().copied(),
            self.count,
            self.min,
            self.max,
            q,
        )
    }

    /// Merges another snapshot into this one, matching buckets by
    /// their `lo` bound (exact for the power-of-two bounds both sides
    /// produce).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for &(lo, hi, c) in &other.buckets {
            match self
                .buckets
                .binary_search_by(|&(l, _, _)| l.partial_cmp(&lo).unwrap_or(std::cmp::Ordering::Less))
            {
                Ok(i) => self.buckets[i].2 += c,
                Err(i) => self.buckets.insert(i, (lo, hi, c)),
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A compact, mergeable snapshot of a process's counters and
/// histograms — the payload steal-mode workers piggyback on heartbeats
/// and completions so the coordinator can fold a fleet-wide view.
///
/// Names are owned strings (wire-parsed names cannot be `&'static`),
/// and gauges are deliberately absent: a gauge is a last-value-wins
/// signal that does not survive merging across processes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Adds `delta` to the named counter.
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// The named counter's total (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram snapshot, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Installs (or replaces) a whole named histogram snapshot —
    /// how a worker copies its live [`LogHistogram`] into a report.
    pub fn set_histogram(&mut self, name: &str, histogram: HistogramSnapshot) {
        self.histograms.insert(name.to_string(), histogram);
    }

    /// Records one observation into the named histogram (bucketed with
    /// [`LogHistogram`]'s bounds).
    pub fn record_histogram(&mut self, name: &str, value: f64) {
        let mut h = LogHistogram::new();
        h.record(value);
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(&HistogramSnapshot::from(&h));
    }

    /// Merges another snapshot into this one (counters add, histograms
    /// merge bucket-wise).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Serializes as one compact JSON object:
    /// `{"counters":{…},"histograms":{name:{"count":…,"sum":…,"min":…,
    /// "max":…,"buckets":[[lo,hi,c],…]},…}}`. Non-finite bounds render
    /// as the `"inf"`/`"-inf"` strings the in-tree parser reads back.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, name);
            let _ = write!(out, ":{{\"count\":{},\"sum\":", h.count);
            write_json_f64(out, h.sum);
            out.push_str(",\"min\":");
            write_json_f64(out, h.min);
            out.push_str(",\"max\":");
            write_json_f64(out, h.max);
            out.push_str(",\"buckets\":[");
            for (j, &(lo, hi, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                write_json_f64(out, lo);
                out.push(',');
                write_json_f64(out, hi);
                let _ = write!(out, ",{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
    }

    /// The [`write_json`](Self::write_json) text as a fresh string.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// Parses a value produced by [`write_json`](Self::write_json).
    /// `None` when the shape is not a snapshot object.
    pub fn from_json(json: &Json) -> Option<MetricsSnapshot> {
        let mut snapshot = MetricsSnapshot::new();
        for (name, value) in json.get("counters")?.as_object()? {
            snapshot.counters.insert(name.clone(), value.as_u64()?);
        }
        for (name, value) in json.get("histograms")?.as_object()? {
            let mut buckets = Vec::new();
            for triple in value.get("buckets")?.as_array()? {
                let triple = triple.as_array()?;
                if triple.len() != 3 {
                    return None;
                }
                buckets.push((
                    triple[0].as_num()?,
                    triple[1].as_num()?,
                    triple[2].as_u64()?,
                ));
            }
            snapshot.histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    count: value.get("count")?.as_u64()?,
                    sum: value.get("sum")?.as_num()?,
                    min: value.get("min")?.as_num()?,
                    max: value.get("max")?.as_num()?,
                    buckets,
                },
            );
        }
        Some(snapshot)
    }

    /// Parses snapshot text (one JSON object) directly.
    pub fn parse(text: &str) -> Option<MetricsSnapshot> {
        Self::from_json(&parse_json(text).ok()?)
    }
}

impl From<&MetricsRegistry> for MetricsSnapshot {
    fn from(registry: &MetricsRegistry) -> Self {
        let mut snapshot = MetricsSnapshot::new();
        for (name, value) in registry.counters() {
            snapshot.counters.insert(name.to_string(), value);
        }
        for (name, h) in registry.histograms() {
            snapshot
                .histograms
                .insert(name.to_string(), HistogramSnapshot::from(h));
        }
        snapshot
    }
}

/// Aggregated counters, gauges and histograms, keyed by metric name.
///
/// Cloning yields an independent snapshot — the type the bench
/// harness reports alongside wall-clock samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter.
    pub fn add_counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets the named gauge (last value wins).
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Records one observation into the named histogram.
    pub fn record_histogram(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// The named counter's total, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The named gauge's last value, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if it ever recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &LogHistogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Drops all recorded data.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    /// One-line rendering `name=value …` (histograms as
    /// `name[n=…, mean=…, p50=…, p95=…, p99=…]`), for compact reports
    /// such as the bench harness output. Empty string when nothing was
    /// recorded.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counters() {
            let _ = write!(out, "{}{name}={value}", sep(&out));
        }
        for (name, value) in self.gauges() {
            let _ = write!(out, "{}{name}={value:.3e}", sep(&out));
        }
        for (name, h) in self.histograms() {
            let _ = write!(
                out,
                "{}{name}[n={}, mean={:.3e}, p50={:.3e}, p95={:.3e}, p99={:.3e}]",
                sep(&out),
                h.count(),
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            );
        }
        out
    }
}

fn sep(out: &str) -> &'static str {
    if out.is_empty() {
        ""
    } else {
        " "
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log_spaced() {
        let mut h = LogHistogram::new();
        h.record(1.0);
        h.record(1.5);
        h.record(3.0);
        h.record(1e-20); // below range → bucket 0
        h.record(1e20); // above range → last bucket
        assert_eq!(h.count(), 5);
        let buckets = h.nonzero_buckets();
        // 1.0 and 1.5 share [1, 2); 3.0 is in [2, 4).
        let one_two = buckets.iter().find(|&&(lo, _, _)| lo == 1.0).unwrap();
        assert_eq!(one_two.2, 2);
        let two_four = buckets.iter().find(|&&(lo, _, _)| lo == 2.0).unwrap();
        assert_eq!(two_four.2, 1);
        // Every recorded value is inside [lo, hi) of its bucket.
        for &(lo, hi, _) in &buckets {
            assert!(lo < hi);
        }
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut h = LogHistogram::new();
        assert!(h.mean().is_nan());
        for v in [2.0, 4.0, 6.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 12.0);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.min(), 2.0);
        assert_eq!(h.max(), 6.0);
    }

    #[test]
    fn histogram_handles_degenerate_values() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 3);
        // All landed in bucket 0 rather than panicking.
        assert_eq!(h.nonzero_buckets().len(), 1);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LogHistogram::new();
        a.record(1.0);
        let mut b = LogHistogram::new();
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 100.0);
        assert_eq!(a.min(), 1.0);
    }

    #[test]
    fn registry_aggregates_and_snapshots() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.add_counter("c", 1);
        r.add_counter("c", 4);
        r.set_gauge("g", 1.0);
        r.set_gauge("g", -2.0);
        r.record_histogram("h", 7.0);
        assert_eq!(r.counter("c"), Some(5));
        assert_eq!(r.gauge("g"), Some(-2.0));
        assert_eq!(r.histogram("h").unwrap().count(), 1);
        let snap = r.clone();
        r.clear();
        assert!(r.is_empty());
        assert_eq!(snap.counter("c"), Some(5), "snapshot is independent");
    }

    #[test]
    fn compact_rendering_is_stable() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.render_compact(), "");
        r.add_counter("b.count", 2);
        r.add_counter("a.count", 1);
        r.set_gauge("drift", 1e-9);
        r.record_histogram("t_us", 10.0);
        let s = r.render_compact();
        // BTreeMap ordering: counters sorted, then gauges, then
        // histograms.
        assert!(s.starts_with("a.count=1 b.count=2"), "{s}");
        assert!(s.contains("drift=1.000e-9"), "{s}");
        // A single observation: every quantile collapses to it via the
        // [min, max] clamp.
        assert!(
            s.contains("t_us[n=1, mean=1.000e1, p50=1.000e1, p95=1.000e1, p99=1.000e1]"),
            "{s}"
        );
    }

    #[test]
    fn quantiles_interpolate_within_log_buckets() {
        let mut h = LogHistogram::new();
        assert!(h.quantile(0.5).is_nan());
        // 100 observations spread uniformly over [1, 2) — one bucket.
        for i in 0..100 {
            h.record(1.0 + i as f64 / 100.0);
        }
        // Interpolation inside [1, 2): p50 ≈ 1.5, and the estimate is
        // monotone in q.
        let p50 = h.quantile(0.50);
        assert!((p50 - 1.5).abs() < 0.02, "p50 = {p50}");
        assert!(h.quantile(0.0) <= p50);
        assert!(p50 <= h.quantile(0.95));
        assert!(h.quantile(0.95) <= h.quantile(0.99));
        // q outside [0,1] clamps; extremes hit the exact min/max.
        assert_eq!(h.quantile(-3.0), h.min());
        assert_eq!(h.quantile(7.0), h.max());

        // A skewed two-bucket histogram: 99 cheap points in [1, 2), one
        // expensive one in [1024, 2048). p50 stays in the cheap bucket,
        // p99+ walks into the expensive one but never exceeds max.
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.record(1.5);
        }
        h.record(1500.0);
        assert!(h.quantile(0.5) < 2.0);
        assert!(h.quantile(0.999) >= 1024.0);
        assert!(h.quantile(1.0) <= 1500.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut r = MetricsRegistry::new();
        r.add_counter("sweep.hb_sent", 41);
        r.add_counter("solver.iterations", 7);
        r.record_histogram("solve_us", 10.0);
        r.record_histogram("solve_us", 1e6);
        r.set_gauge("drift", 1.0); // gauges are not snapshotted
        let snap = MetricsSnapshot::from(&r);
        assert_eq!(snap.counter("sweep.hb_sent"), 41);
        assert_eq!(snap.counter("absent"), 0);
        let text = snap.to_json_string();
        let back = MetricsSnapshot::parse(&text).expect("round trip");
        assert_eq!(back, snap);
        let h = back.histogram("solve_us").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 10.0);
        assert_eq!(h.max, 1e6);
        assert_eq!(h.sum, 10.0 + 1e6);
        // Quantiles agree with the live histogram's.
        let live = r.histogram("solve_us").unwrap();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q).to_bits(), live.quantile(q).to_bits());
        }
        // An empty snapshot round-trips its non-finite min/max.
        let empty = MetricsSnapshot::from(&MetricsRegistry::new());
        assert!(empty.is_empty());
        assert_eq!(MetricsSnapshot::parse(&empty.to_json_string()), Some(empty));
    }

    #[test]
    fn snapshot_merge_matches_histogram_merge() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        for v in [1.0, 3.0, 100.0] {
            a.record_histogram("h", v);
        }
        for v in [0.25, 5.0, 1e9] {
            b.record_histogram("h", v);
        }
        a.add_counter("c", 2);
        b.add_counter("c", 3);
        b.add_counter("only_b", 1);

        let mut merged = MetricsSnapshot::from(&a);
        merged.merge(&MetricsSnapshot::from(&b));
        assert_eq!(merged.counter("c"), 5);
        assert_eq!(merged.counter("only_b"), 1);

        // Reference: merge the live histograms, then snapshot.
        let mut reference = a.histogram("h").unwrap().clone();
        reference.merge(b.histogram("h").unwrap());
        let reference = HistogramSnapshot::from(&reference);
        assert_eq!(merged.histogram("h"), Some(&reference));
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(
                merged.histogram("h").unwrap().quantile(q).to_bits(),
                reference.quantile(q).to_bits()
            );
        }
    }
}
