//! The metrics side of the telemetry layer: counters, gauges and
//! log-bucketed histograms, aggregated into a [`MetricsRegistry`].
//!
//! The registry is a plain data structure (no global state, no
//! interior mutability) — sinks own one behind their own lock, and
//! the bench harness captures cloned snapshots of it alongside
//! wall-clock results.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of histogram buckets.
const BUCKETS: usize = 64;
/// Bucket `i` covers `[2^(i - OFFSET), 2^(i + 1 - OFFSET))`; with 64
/// buckets this spans `2^-32 ≈ 2.3e-10` to `2^32 ≈ 4.3e9` — ample for
/// microsecond durations, gaps and iteration counts. Values at or
/// below zero (or under the first bound) land in bucket 0; values
/// beyond the last bound land in the last bucket.
const OFFSET: i32 = 32;

/// A fixed-size histogram with log-spaced (powers-of-two) buckets.
///
/// Constant memory, O(1) record, and exact `count`/`sum`/`min`/`max`
/// alongside the bucketed shape.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(value: f64) -> usize {
        if value <= 0.0 || !value.is_finite() {
            return 0;
        }
        let exp = value.log2().floor() as i64 + OFFSET as i64;
        exp.clamp(0, BUCKETS as i64 - 1) as usize
    }

    /// The `[lo, hi)` bounds of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        let lo = 2f64.powi(i as i32 - OFFSET);
        let hi = 2f64.powi(i as i32 + 1 - OFFSET);
        (lo, hi)
    }

    /// Records one observation. Non-finite values are counted (in
    /// `count`/`sum`) but land in bucket 0.
    pub fn record(&mut self, value: f64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The non-empty buckets as `(lo, hi, count)` triples.
    pub fn nonzero_buckets(&self) -> Vec<(f64, f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Aggregated counters, gauges and histograms, keyed by metric name.
///
/// Cloning yields an independent snapshot — the type the bench
/// harness reports alongside wall-clock samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter.
    pub fn add_counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets the named gauge (last value wins).
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Records one observation into the named histogram.
    pub fn record_histogram(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// The named counter's total, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The named gauge's last value, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if it ever recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &LogHistogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Drops all recorded data.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    /// One-line rendering `name=value …` (histograms as
    /// `name[n=…, mean=…]`), for compact reports such as the bench
    /// harness output. Empty string when nothing was recorded.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counters() {
            let _ = write!(out, "{}{name}={value}", sep(&out));
        }
        for (name, value) in self.gauges() {
            let _ = write!(out, "{}{name}={value:.3e}", sep(&out));
        }
        for (name, h) in self.histograms() {
            let _ = write!(
                out,
                "{}{name}[n={}, mean={:.3e}]",
                sep(&out),
                h.count(),
                h.mean()
            );
        }
        out
    }
}

fn sep(out: &str) -> &'static str {
    if out.is_empty() {
        ""
    } else {
        " "
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log_spaced() {
        let mut h = LogHistogram::new();
        h.record(1.0);
        h.record(1.5);
        h.record(3.0);
        h.record(1e-20); // below range → bucket 0
        h.record(1e20); // above range → last bucket
        assert_eq!(h.count(), 5);
        let buckets = h.nonzero_buckets();
        // 1.0 and 1.5 share [1, 2); 3.0 is in [2, 4).
        let one_two = buckets.iter().find(|&&(lo, _, _)| lo == 1.0).unwrap();
        assert_eq!(one_two.2, 2);
        let two_four = buckets.iter().find(|&&(lo, _, _)| lo == 2.0).unwrap();
        assert_eq!(two_four.2, 1);
        // Every recorded value is inside [lo, hi) of its bucket.
        for &(lo, hi, _) in &buckets {
            assert!(lo < hi);
        }
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut h = LogHistogram::new();
        assert!(h.mean().is_nan());
        for v in [2.0, 4.0, 6.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 12.0);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.min(), 2.0);
        assert_eq!(h.max(), 6.0);
    }

    #[test]
    fn histogram_handles_degenerate_values() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 3);
        // All landed in bucket 0 rather than panicking.
        assert_eq!(h.nonzero_buckets().len(), 1);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LogHistogram::new();
        a.record(1.0);
        let mut b = LogHistogram::new();
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 100.0);
        assert_eq!(a.min(), 1.0);
    }

    #[test]
    fn registry_aggregates_and_snapshots() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.add_counter("c", 1);
        r.add_counter("c", 4);
        r.set_gauge("g", 1.0);
        r.set_gauge("g", -2.0);
        r.record_histogram("h", 7.0);
        assert_eq!(r.counter("c"), Some(5));
        assert_eq!(r.gauge("g"), Some(-2.0));
        assert_eq!(r.histogram("h").unwrap().count(), 1);
        let snap = r.clone();
        r.clear();
        assert!(r.is_empty());
        assert_eq!(snap.counter("c"), Some(5), "snapshot is independent");
    }

    #[test]
    fn compact_rendering_is_stable() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.render_compact(), "");
        r.add_counter("b.count", 2);
        r.add_counter("a.count", 1);
        r.set_gauge("drift", 1e-9);
        r.record_histogram("t_us", 10.0);
        let s = r.render_compact();
        // BTreeMap ordering: counters sorted, then gauges, then
        // histograms.
        assert!(s.starts_with("a.count=1 b.count=2"), "{s}");
        assert!(s.contains("drift=1.000e-9"), "{s}");
        assert!(s.contains("t_us[n=1, mean=1.000e1]"), "{s}");
    }
}
