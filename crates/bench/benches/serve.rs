//! Benches of the online loss-bound service: steady-state query cost
//! in-process and over the wire.
//!
//! The exported `BENCH_<rev>.json` entry carries both halves of the
//! service-level story: sustained queries/sec (the reciprocal of the
//! round-trip median) and the p99 query latency (the daemon's own
//! `serve.query_us` histogram, captured by the harness's telemetry
//! iteration).

use std::hint::black_box;

use lrd_bench::Harness;
use lrd_net::{connect, recv_line, send_line, Endpoint, Listener};
use lrd_serve::engine::{Engine, EngineOptions};
use lrd_serve::flow::FlowSpec;
use lrd_serve::proto::{Request, Response};

/// A warmed single-flow engine whose cached session for `buffer` 1.0
/// has already converged — each query measures the steady-state path
/// (cache hit, staleness check, bracket read), not solver progress.
fn warmed_engine() -> Engine {
    let spec = FlowSpec::parse("m,family=markov,mean=0.05,low=2.0,high=14.0,service=10.0")
        .expect("reference flow spec");
    let mut engine = Engine::new(
        EngineOptions {
            window: 256,
            refresh_every: 64,
            // Large enough that the benched queries never refit.
            max_staleness: u64::MAX,
            ..EngineOptions::default()
        },
        vec![spec],
        11,
    );
    for _ in 0..1024 {
        engine.tick();
    }
    while !engine.loss_bound("m", 1.0).expect("warmed flow").converged {}
    engine
}

fn bench_engine_query(c: &mut Harness) {
    let mut g = c.group("serve_engine");
    let mut engine = warmed_engine();
    g.bench_function("loss_bound_steady_state", |b| {
        b.iter(|| black_box(engine.loss_bound("m", 1.0).unwrap()))
    });
    g.bench_function("batch_solve", |b| {
        b.iter(|| black_box(engine.batch_solve("m", 1.0).unwrap()))
    });
    g.finish();
}

fn bench_wire_query(c: &mut Harness) {
    let socket = std::env::temp_dir().join(format!("lrd-serve-bench-{}.sock", std::process::id()));
    let endpoint = Endpoint::parse(&format!("unix:{}", socket.display())).unwrap();
    let listener = Listener::bind(&endpoint).expect("bind bench socket");
    let endpoint = listener.local_endpoint();
    let server = std::thread::spawn(move || {
        let mut engine = warmed_engine();
        lrd_serve::serve(&listener, &mut engine, None).expect("serve")
    });
    let ask = |request: &Request| {
        let mut conn = connect(&endpoint).unwrap();
        send_line(conn.as_mut(), &request.to_line()).unwrap();
        Response::parse(&recv_line(conn.as_mut()).unwrap()).unwrap()
    };
    let query = Request::LossBound {
        flow: "m".to_string(),
        buffer: 1.0,
    };

    let mut g = c.group("serve_wire");
    g.bench_function("loss_bound_round_trip", |b| {
        b.iter(|| black_box(ask(&query)))
    });
    g.bench_function("status_round_trip", |b| {
        b.iter(|| black_box(ask(&Request::Status)))
    });
    g.finish();

    assert!(matches!(ask(&Request::Shutdown), Response::Bye));
    server.join().expect("server thread");
    lrd_serve::signal::clear_for_tests();
    std::fs::remove_file(&socket).ok();
}

fn main() {
    let mut h = Harness::from_args();
    bench_engine_query(&mut h);
    bench_wire_query(&mut h);
    h.finish();
}
