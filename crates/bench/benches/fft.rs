//! Convolution microbenches: the direct-vs-FFT crossover the solver's
//! auto-selection relies on, and the planned-Convolver amortization.
//!
//! This substantiates the paper's `O(M²) → O(M log M)` remark
//! (Sec. II) with measured numbers.

use lrd_bench::Harness;
use lrd_fft::{convolve_direct, convolve_fft, Convolver, Fft};
use std::hint::black_box;

fn probability_vector(n: usize, phase: f64) -> Vec<f64> {
    let raw: Vec<f64> = (0..n)
        .map(|i| ((i as f64 * phase).sin() + 1.1).max(0.0))
        .collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|v| v / total).collect()
}

fn bench_conv_crossover(c: &mut Harness) {
    let mut g = c.group("conv_crossover");
    for m in [64usize, 128, 256, 512, 1024, 4096] {
        // Solver-shaped problem: kernel 2M+1, signal M+1.
        let kernel = probability_vector(2 * m + 1, 0.37);
        let signal = probability_vector(m + 1, 0.73);
        g.bench_function(format!("direct/{m}"), |b| {
            b.iter(|| black_box(convolve_direct(&kernel, &signal)))
        });
        g.bench_function(format!("fft/{m}"), |b| {
            b.iter(|| black_box(convolve_fft(&kernel, &signal)))
        });
        g.bench_function(format!("planned/{m}"), |b| {
            let mut cv = Convolver::new(&kernel, signal.len());
            b.iter(|| black_box(cv.conv(&signal).last().copied()))
        });
    }
    g.finish();
}

/// The batched bounding-chain path: one `conv_pair` call versus the
/// two planned `conv` calls it replaces. Both chains share kernel and
/// signal lengths, exactly as in `BoundSolver::step`.
fn bench_conv_pair(c: &mut Harness) {
    let mut g = c.group("conv_pair");
    for m in [256usize, 1024, 4096] {
        let kernel_a = probability_vector(2 * m + 1, 0.37);
        let kernel_b = probability_vector(2 * m + 1, 0.41);
        let sig_a = probability_vector(m + 1, 0.73);
        let sig_b = probability_vector(m + 1, 0.79);
        g.bench_function(format!("sequential/{m}"), |b| {
            let mut ca = Convolver::new(&kernel_a, sig_a.len());
            let mut cb = Convolver::new(&kernel_b, sig_b.len());
            b.iter(|| {
                let a = ca.conv(&sig_a).last().copied();
                let b2 = cb.conv(&sig_b).last().copied();
                black_box((a, b2))
            })
        });
        g.bench_function(format!("paired/{m}"), |b| {
            let mut ca = Convolver::new(&kernel_a, sig_a.len());
            let mut cb = Convolver::new(&kernel_b, sig_b.len());
            b.iter(|| {
                let (a, b2) = Convolver::conv_pair(&mut ca, &mut cb, &sig_a, &sig_b);
                black_box((a.last().copied(), b2.last().copied()))
            })
        });
    }
    g.finish();
}

/// Plan-cache read contention: every `Convolver::new` on the FFT path
/// resolves its plan through the process-wide cache, whose hot read
/// path is a lock-free thread-local front. This hammers steady-state
/// lookups of an already-built plan from T threads at once. With the
/// thread-local front, total wall time scales with total work (T ×
/// LOOKUPS) and no worse — a regression back to a mutex on the read
/// path shows up as super-linear growth in T (lock convoying).
fn bench_plan_cache_contention(c: &mut Harness) {
    let mut g = c.group("plan_cache_contention");
    g.sample_size(6);
    let n = 4096usize;
    // Prime the global cache once so every measured lookup is a hit.
    black_box(lrd_fft::shared_real_plan(n));
    const LOOKUPS: usize = 200_000;
    for threads in [1usize, 4, 8] {
        g.bench_function(format!("threads/{threads}"), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        scope.spawn(|| {
                            for _ in 0..LOOKUPS {
                                black_box(lrd_fft::shared_real_plan(black_box(n)));
                            }
                        });
                    }
                });
            })
        });
    }
    g.finish();
}

fn bench_raw_fft(c: &mut Harness) {
    let mut g = c.group("fft_transform");
    for n in [1024usize, 8192, 65536] {
        g.bench_with_input(n, &n, |b, &n| {
            let plan = Fft::new(n);
            let data: Vec<lrd_fft::Complex> = (0..n)
                .map(|i| lrd_fft::Complex::new((i as f64).sin(), 0.0))
                .collect();
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(&mut buf);
                black_box(buf)
            });
        });
    }
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    bench_conv_crossover(&mut h);
    bench_conv_pair(&mut h);
    bench_plan_cache_contention(&mut h);
    bench_raw_fft(&mut h);
    h.finish();
}
