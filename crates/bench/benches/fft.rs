//! Convolution microbenches: the direct-vs-FFT crossover the solver's
//! auto-selection relies on, and the planned-Convolver amortization.
//!
//! This substantiates the paper's `O(M²) → O(M log M)` remark
//! (Sec. II) with measured numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrd_fft::{convolve_direct, convolve_fft, Convolver, Fft};
use std::hint::black_box;

fn probability_vector(n: usize, phase: f64) -> Vec<f64> {
    let raw: Vec<f64> = (0..n)
        .map(|i| ((i as f64 * phase).sin() + 1.1).max(0.0))
        .collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|v| v / total).collect()
}

fn bench_conv_crossover(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv_crossover");
    for m in [64usize, 256, 1024, 4096] {
        // Solver-shaped problem: kernel 2M+1, signal M+1.
        let kernel = probability_vector(2 * m + 1, 0.37);
        let signal = probability_vector(m + 1, 0.73);
        g.bench_with_input(BenchmarkId::new("direct", m), &m, |b, _| {
            b.iter(|| black_box(convolve_direct(&kernel, &signal)))
        });
        g.bench_with_input(BenchmarkId::new("fft", m), &m, |b, _| {
            b.iter(|| black_box(convolve_fft(&kernel, &signal)))
        });
        g.bench_with_input(BenchmarkId::new("planned", m), &m, |b, _| {
            let mut cv = Convolver::new(&kernel, signal.len());
            b.iter(|| black_box(cv.conv(&signal)))
        });
    }
    g.finish();
}

fn bench_raw_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_transform");
    for n in [1024usize, 8192, 65536] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let plan = Fft::new(n);
            let data: Vec<lrd_fft::Complex> = (0..n)
                .map(|i| lrd_fft::Complex::new((i as f64).sin(), 0.0))
                .collect();
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(&mut buf);
                black_box(buf)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_conv_crossover, bench_raw_fft);
criterion_main!(benches);
