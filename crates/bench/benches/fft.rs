//! Convolution microbenches: the direct-vs-FFT crossover the solver's
//! auto-selection relies on, and the planned-Convolver amortization.
//!
//! This substantiates the paper's `O(M²) → O(M log M)` remark
//! (Sec. II) with measured numbers.

use lrd_bench::Harness;
use lrd_fft::{convolve_direct, convolve_fft, Convolver, Fft};
use std::hint::black_box;

fn probability_vector(n: usize, phase: f64) -> Vec<f64> {
    let raw: Vec<f64> = (0..n)
        .map(|i| ((i as f64 * phase).sin() + 1.1).max(0.0))
        .collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|v| v / total).collect()
}

fn bench_conv_crossover(c: &mut Harness) {
    let mut g = c.group("conv_crossover");
    for m in [64usize, 256, 1024, 4096] {
        // Solver-shaped problem: kernel 2M+1, signal M+1.
        let kernel = probability_vector(2 * m + 1, 0.37);
        let signal = probability_vector(m + 1, 0.73);
        g.bench_function(format!("direct/{m}"), |b| {
            b.iter(|| black_box(convolve_direct(&kernel, &signal)))
        });
        g.bench_function(format!("fft/{m}"), |b| {
            b.iter(|| black_box(convolve_fft(&kernel, &signal)))
        });
        g.bench_function(format!("planned/{m}"), |b| {
            let mut cv = Convolver::new(&kernel, signal.len());
            b.iter(|| black_box(cv.conv(&signal).last().copied()))
        });
    }
    g.finish();
}

fn bench_raw_fft(c: &mut Harness) {
    let mut g = c.group("fft_transform");
    for n in [1024usize, 8192, 65536] {
        g.bench_with_input(n, &n, |b, &n| {
            let plan = Fft::new(n);
            let data: Vec<lrd_fft::Complex> = (0..n)
                .map(|i| lrd_fft::Complex::new((i as f64).sin(), 0.0))
                .collect();
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(&mut buf);
                black_box(buf)
            });
        });
    }
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    bench_conv_crossover(&mut h);
    bench_raw_fft(&mut h);
    h.finish();
}
