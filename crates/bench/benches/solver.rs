//! Microbenches of the loss solver: per-iteration cost across grid
//! resolutions, full solves, and the ablations called out in
//! DESIGN.md (warm-restart refinement vs cold start).
//!
//! The paper reports "typical runtime was less than a second on a
//! workstation" — the `solve_*` benches are the modern equivalent of
//! that claim.

use lrd_bench::{reference_model, Harness};
use lrd_fluidq::{BoundSolver, LossKernel, SolveSession, SolverOptions, WorkDistribution};
use std::hint::black_box;

fn bench_step_cost(c: &mut Harness) {
    let mut g = c.group("solver_step");
    for bins in [128usize, 512, 2048, 8192] {
        g.bench_with_input(bins, &bins, |b, &bins| {
            let mut solver = BoundSolver::new(reference_model(), bins);
            b.iter(|| {
                solver.step();
                black_box(solver.loss_bounds())
            });
        });
    }
    g.finish();
}

fn bench_full_solve(c: &mut Harness) {
    let mut g = c.group("solver_solve");
    g.sample_size(10);
    let model = reference_model();
    g.bench_function("paper_protocol", |b| {
        b.iter(|| {
            black_box(
                SolveSession::builder(&model)
                    .options(&SolverOptions::default())
                    .solve(),
            )
        })
    });
    // Deep-loss configuration (forces refinement).
    let deep = model.with_buffer(model.service_rate() * 1.0);
    g.bench_function("deep_loss_with_refinement", |b| {
        b.iter(|| {
            black_box(
                SolveSession::builder(&deep)
                    .options(&SolverOptions::default())
                    .solve(),
            )
        })
    });
    g.finish();
}

fn bench_refinement_ablation(c: &mut Harness) {
    // Warm restart (footnote 3) vs solving directly at the fine grid
    // from cold: the warm start should reach stationarity at the fine
    // grid with fewer fine-grid iterations.
    let mut g = c.group("solver_refinement_ablation");
    g.sample_size(10);
    let model = reference_model();
    let fine = 1024usize;
    g.bench_function("warm_restart", |b| {
        b.iter(|| {
            let mut s = BoundSolver::new(model.clone(), fine / 8);
            for _ in 0..100 {
                s.step();
            }
            while s.bins() < fine {
                s.refine();
                for _ in 0..25 {
                    s.step();
                }
            }
            black_box(s.loss_bounds())
        })
    });
    g.bench_function("cold_start", |b| {
        b.iter(|| {
            let mut s = BoundSolver::new(model.clone(), fine);
            for _ in 0..175 {
                s.step();
            }
            black_box(s.loss_bounds())
        })
    });
    g.finish();
}

fn bench_construction(c: &mut Harness) {
    let mut g = c.group("solver_setup");
    let model = reference_model();
    for bins in [512usize, 4096] {
        g.bench_with_input(format!("work_distribution/{bins}"), &bins, |b, &bins| {
            b.iter(|| black_box(WorkDistribution::build(&model, bins)))
        });
        g.bench_with_input(format!("loss_kernel/{bins}"), &bins, |b, &bins| {
            b.iter(|| black_box(LossKernel::build(&model, bins)))
        });
    }
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    bench_step_cost(&mut h);
    bench_full_solve(&mut h);
    bench_refinement_ablation(&mut h);
    bench_construction(&mut h);
    h.finish();
}
