//! One benchmark per paper figure: each bench regenerates the figure's
//! data at quick-profile resolution, so `cargo bench` doubles as an
//! end-to-end regression run over the whole evaluation section.
//!
//! (Fig. 6 is the shuffling procedure itself — benched in `traffic.rs`
//! as `external_shuffle`; Fig. 1 is a proof illustration with no data.)

use lrd_bench::{corpus, Harness};
use lrd_experiments::figures::{
    fig02, fig03, fig04_05, fig07_08, fig09, fig10_11, fig12_13, fig14, markov_baseline, Profile,
};
use std::hint::black_box;

fn bench_figures(c: &mut Harness) {
    let corpus = corpus();
    let mut g = c.group("figures");
    g.sample_size(10);

    g.bench_function("fig02_bounds_convergence", |b| {
        b.iter(|| black_box(fig02::run(corpus, Profile::Quick)))
    });
    g.bench_function("fig03_marginals", |b| {
        b.iter(|| black_box(fig03::run(corpus)))
    });
    g.bench_function("fig04_mtv_model_surface", |b| {
        b.iter(|| black_box(fig04_05::fig04(corpus, Profile::Quick)))
    });
    g.bench_function("fig05_bc_model_surface", |b| {
        b.iter(|| black_box(fig04_05::fig05(corpus, Profile::Quick)))
    });
    g.bench_function("fig07_mtv_shuffle_surface", |b| {
        b.iter(|| black_box(fig07_08::fig07(corpus, Profile::Quick)))
    });
    g.bench_function("fig08_bc_shuffle_surface", |b| {
        b.iter(|| black_box(fig07_08::fig08(corpus, Profile::Quick)))
    });
    g.bench_function("fig09_marginal_compare", |b| {
        b.iter(|| black_box(fig09::run(corpus, Profile::Quick)))
    });
    g.bench_function("fig10_hurst_vs_scaling", |b| {
        b.iter(|| black_box(fig10_11::fig10(corpus, Profile::Quick)))
    });
    g.bench_function("fig11_hurst_vs_multiplex", |b| {
        b.iter(|| black_box(fig10_11::fig11(corpus, Profile::Quick)))
    });
    g.bench_function("fig12_mtv_buffer_scaling", |b| {
        b.iter(|| black_box(fig12_13::fig12(corpus, Profile::Quick)))
    });
    g.bench_function("fig13_bc_buffer_scaling", |b| {
        b.iter(|| black_box(fig12_13::fig13(corpus, Profile::Quick)))
    });
    g.bench_function("fig14_ch_scaling", |b| {
        b.iter(|| black_box(fig14::run(corpus, Profile::Quick)))
    });
    g.bench_function("markov_baseline_extension", |b| {
        b.iter(|| black_box(markov_baseline::run(corpus, Profile::Quick)))
    });
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    bench_figures(&mut h);
    h.finish();
}
