//! Traffic-generation microbenches: fGn synthesis (Davies–Harte vs
//! Hosking), the external shuffle of Fig. 6, trace simulation
//! throughput, and marginal superposition.

use lrd_bench::Harness;
use lrd_rng::rngs::SmallRng;
use lrd_rng::SeedableRng;
use lrd_sim::simulate_trace;
use lrd_traffic::shuffle::external_shuffle;
use lrd_traffic::{fgn, synth, Marginal};
use std::hint::black_box;

fn bench_fgn(c: &mut Harness) {
    let mut g = c.group("fgn_generation");
    g.sample_size(10);
    for n in [1usize << 12, 1 << 16] {
        g.bench_with_input(format!("davies_harte/{n}"), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| black_box(fgn::davies_harte(&mut rng, 0.85, n)))
        });
    }
    // Hosking is O(n²): bench at a smaller size only.
    g.bench_function("hosking_4096", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| black_box(fgn::hosking(&mut rng, 0.85, 4096)))
    });
    g.finish();
}

fn bench_synthesis(c: &mut Harness) {
    let mut g = c.group("trace_synthesis");
    g.sample_size(10);
    g.bench_function("mtv_like_16k", |b| {
        b.iter(|| black_box(synth::mtv_like_with_len(3, 1 << 14)))
    });
    g.bench_function("bellcore_like_16k", |b| {
        b.iter(|| black_box(synth::bellcore_like_with_len(4, 1 << 14)))
    });
    g.finish();
}

fn bench_shuffle_and_sim(c: &mut Harness) {
    let trace = synth::mtv_like_with_len(5, 1 << 15);
    let marginal = trace.marginal(50);
    let service = marginal.service_rate_for_utilization(0.8);

    let mut g = c.group("trace_pipeline");
    g.bench_function("external_shuffle_32k", |b| {
        let mut rng = SmallRng::seed_from_u64(6);
        b.iter(|| black_box(external_shuffle(&trace, 64, &mut rng)))
    });
    g.bench_function("simulate_trace_32k", |b| {
        b.iter(|| black_box(simulate_trace(&trace, service, service * 0.5)))
    });
    g.finish();
}

fn bench_marginal_ops(c: &mut Harness) {
    let m = Marginal::new(
        &(0..50).map(|i| i as f64 * 0.4 + 0.1).collect::<Vec<_>>(),
        &vec![0.02; 50],
    );
    let mut g = c.group("marginal_ops");
    g.bench_function("superpose_5_of_50", |b| {
        b.iter(|| black_box(m.superpose(5, 200)))
    });
    g.bench_function("scaled", |b| b.iter(|| black_box(m.scaled(0.7))));
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    bench_fgn(&mut h);
    bench_synthesis(&mut h);
    bench_shuffle_and_sim(&mut h);
    bench_marginal_ops(&mut h);
    h.finish();
}
