//! Benches of the out-of-core trace pipeline: corpus generation
//! (write side) and the two-pass bounded-memory ingestion (read side).
//!
//! The exported `BENCH_<rev>.json` entry is the acceptance evidence
//! for the pipeline's scaling claim: the `trace.packets_per_s`
//! histogram records sustained ingestion throughput and
//! `trace.peak_rss_kb` the process's high-water memory mark, which
//! must stay flat however large the corpus. The corpus size is an
//! environment knob so CI stays small while the multi-GiB acceptance
//! run uses the same binary:
//!
//! ```text
//! cargo bench -p lrd-bench --bench trace_ingest                  # ~9 MiB corpus
//! LRD_TRACE_BENCH_BINS=2097152 cargo bench -p lrd-bench \
//!     --bench trace_ingest                                       # ~1.2 GiB corpus
//! ```

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use lrd_bench::Harness;
use lrd_trace::{ingest_file, peak_rss_kb, reset_peak_rss, write_corpus, CorpusKind, CorpusSpec};

/// Rate bins to packetize. The default (2^14 ≈ 590k packets, ~9 MiB)
/// keeps CI fast; `LRD_TRACE_BENCH_BINS=2097152` produces the ≥ 1 GiB
/// corpus of the acceptance run (~75M packets).
fn corpus_bins() -> usize {
    std::env::var("LRD_TRACE_BENCH_BINS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 14)
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lrd_bench_{name}_{}.lrdpkt", std::process::id()))
}

fn bench_trace_pipeline(c: &mut Harness) {
    let bins = corpus_bins();
    let spec = CorpusSpec::new(CorpusKind::Mtv, bins);
    let mut g = c.group("trace_ingest");
    // Each sample is a full file pass; batching beyond that only
    // multiplies minutes at the GiB scale.
    g.sample_size(3);

    let gen_path = scratch("gen");
    g.bench_function(format!("gen/{bins}_bins"), |b| {
        b.iter(|| {
            let t0 = Instant::now();
            let info = write_corpus(&gen_path, &spec).expect("corpus write");
            lrd_obs::histogram(
                "trace.gen_packets_per_s",
                info.packets as f64 / t0.elapsed().as_secs_f64(),
            );
            black_box(info)
        })
    });
    std::fs::remove_file(&gen_path).ok();

    // The read side streams a corpus written once up front.
    let ingest_path = scratch("ingest");
    let info = write_corpus(&ingest_path, &spec).expect("corpus write");
    println!(
        "trace_ingest: corpus is {} packets, {:.1} MiB on disk",
        info.packets,
        info.file_bytes as f64 / (1u64 << 20) as f64
    );
    g.bench_function(format!("two_pass/{bins}_bins"), |b| {
        b.iter(|| {
            // Drop the generation stage's high-water mark so the RSS
            // histogram records the ingestion passes alone.
            reset_peak_rss();
            let t0 = Instant::now();
            let report = ingest_file(&ingest_path, info.dt, 50).expect("ingestion");
            lrd_obs::histogram(
                "trace.packets_per_s",
                report.packets as f64 / t0.elapsed().as_secs_f64(),
            );
            if let Some(kb) = peak_rss_kb() {
                lrd_obs::histogram("trace.peak_rss_kb", kb as f64);
            }
            black_box(report)
        })
    });
    std::fs::remove_file(&ingest_path).ok();
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    bench_trace_pipeline(&mut h);
    h.finish();
}
