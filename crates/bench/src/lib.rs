//! Shared fixtures for the benchmark harness.
//!
//! The benches (one per paper figure, plus microbenches of the hot
//! kernels) all consume the same cached quick-profile corpus so that
//! `cargo bench` measures computation, not trace synthesis.

pub mod harness;

pub use harness::{Bencher, Group, Harness};

use lrd_experiments::Corpus;
use std::sync::OnceLock;

/// The cached quick-profile corpus shared by all benches.
pub fn corpus() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(Corpus::quick)
}

/// A small reference queue model used by the solver microbenches.
pub fn reference_model() -> lrd_fluidq::QueueModel<lrd_traffic::TruncatedPareto> {
    lrd_fluidq::QueueModel::from_utilization(
        lrd_traffic::Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
        lrd_traffic::TruncatedPareto::new(0.05, 1.4, 1.0),
        0.8,
        0.2,
    )
}
