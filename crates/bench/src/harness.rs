//! A minimal wall-clock benchmark harness on `std::time::Instant`.
//!
//! The build environment is offline, so the workspace carries no
//! external benchmark framework. This module provides the small slice
//! of the familiar group/function/iter API the benches use: each
//! benchmark is warmed up, then measured over a fixed number of
//! samples, and the median/min/max per-iteration times are printed in
//! a stable one-line-per-benchmark format.
//!
//! Usage from a `harness = false` bench target:
//!
//! ```ignore
//! fn main() {
//!     let mut h = Harness::from_args();
//!     let mut g = h.group("solver_step");
//!     g.bench_function("128", |b| b.iter(|| work()));
//!     g.finish();
//! }
//! ```
//!
//! A positional command-line argument acts as a substring filter on
//! `group/name`; flags passed by `cargo bench` (e.g. `--bench`) are
//! ignored — except `--bless`, which rewrites the iteration-count
//! baseline (see below).
//!
//! # Iteration-count regression guard
//!
//! Wall-clock numbers on a shared CI box are noise; the *algorithmic*
//! cost of a benchmark is not. Every benchmark that emits the solver's
//! telemetry counters (`solver.iterations`, `solver.refines`) is
//! checked against `results/bench_baseline.json`: if a benchmark now
//! needs **more** iterations or refinements than the recorded baseline,
//! [`Harness::finish`] prints the regression and exits with status 1.
//! Improvements and newly added benchmarks are reported but do not
//! fail. After an intentional algorithm change, re-record with
//!
//! ```text
//! cargo bench --bench solver -- --bless   # or any other bench target
//! ```
//!
//! which merges the observed counts for the benchmarks that ran into
//! the baseline file (benchmarks filtered out keep their old entries).
//!
//! # Machine-readable perf trajectory
//!
//! Independently of the gate, every run writes (merging per-target)
//! `results/BENCH_<rev>.json` — `rev` from `git rev-parse --short
//! HEAD`, `unknown` outside a work tree — mapping each benchmark to
//! its wall-clock stats (`median_s`/`min_s`/`max_s`) and the telemetry
//! the benchmarked code emitted: every counter (`solver.iterations`,
//! …) and the mean/p99 of every histogram (`fft.conv_us`, …). One file
//! per commit makes the perf trajectory diffable across PRs.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use lrd_obs::Json;

/// Counter names pinned by the baseline. Order is the order they are
/// written in `bench_baseline.json`.
const BASELINE_COUNTERS: [&str; 2] = ["solver.iterations", "solver.refines"];

/// Target wall-clock time for one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(30);
/// Warm-up budget per benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(60);

/// Top-level harness: parses CLI args, owns the report and the
/// iteration-count baseline.
pub struct Harness {
    filter: Option<String>,
    ran: usize,
    bless: bool,
    baseline_path: PathBuf,
    /// `benchmark name -> counter name -> value` observed this run.
    observed: BTreeMap<String, BTreeMap<String, u64>>,
    export_path: PathBuf,
    /// Machine-readable per-benchmark summaries for `BENCH_<rev>.json`.
    exported: BTreeMap<String, Json>,
}

impl Harness {
    /// Builds a harness from `std::env::args`, ignoring flags and
    /// treating the first positional argument as a name filter.
    /// `--bless` re-records the iteration-count baseline instead of
    /// checking against it.
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .filter(|a| a != "--bless")
            .find(|a| !a.starts_with('-'));
        let bless = std::env::args().any(|a| a == "--bless");
        Harness {
            filter,
            ran: 0,
            bless,
            baseline_path: default_baseline_path(),
            observed: BTreeMap::new(),
            export_path: default_export_path(),
            exported: BTreeMap::new(),
        }
    }

    /// Starts a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Prints the closing summary, then checks (or with `--bless`,
    /// rewrites) the iteration-count baseline. Call once at the end of
    /// `main`; exits with status 1 if any benchmark regressed.
    pub fn finish(&self) {
        println!("{} benchmark(s) run", self.ran);
        // Always export the machine-readable summary first, so the
        // perf trajectory is recorded even when the baseline gate
        // fails below.
        if !self.exported.is_empty() {
            match export_summary(&self.export_path, &self.exported) {
                Ok(n) => println!(
                    "exported {n} benchmark summarie(s) to {}",
                    self.export_path.display()
                ),
                Err(e) => eprintln!(
                    "warning: cannot write {}: {e}",
                    self.export_path.display()
                ),
            }
        }
        if self.bless {
            match bless_baseline(&self.baseline_path, &self.observed) {
                Ok(n) => println!(
                    "baseline blessed: {n} benchmark(s) recorded in {}",
                    self.baseline_path.display()
                ),
                Err(e) => {
                    eprintln!(
                        "error: cannot write baseline {}: {e}",
                        self.baseline_path.display()
                    );
                    std::process::exit(1);
                }
            }
            return;
        }
        let baseline = match load_baseline(&self.baseline_path) {
            Some(b) => b,
            None => {
                if !self.observed.is_empty() {
                    println!(
                        "no baseline at {} — run with --bless to record one",
                        self.baseline_path.display()
                    );
                }
                return;
            }
        };
        let mut regressions = Vec::new();
        for (bench, counters) in &self.observed {
            let Some(base) = baseline.get(bench) else {
                println!("baseline: `{bench}` is new — run --bless to record it");
                continue;
            };
            for (counter, &now) in counters {
                match base.get(counter) {
                    Some(&then) if now > then => regressions.push(format!(
                        "{bench}: {counter} regressed {then} -> {now}"
                    )),
                    Some(&then) if now < then => println!(
                        "baseline: {bench}: {counter} improved {then} -> {now} \
                         (run --bless to lock in)"
                    ),
                    Some(_) => {}
                    None => println!(
                        "baseline: `{bench}` has no recorded {counter} — run --bless"
                    ),
                }
            }
        }
        if !regressions.is_empty() {
            eprintln!("iteration-count regression vs {}:", self.baseline_path.display());
            for r in &regressions {
                eprintln!("  {r}");
            }
            eprintln!("(if intentional, re-record with `-- --bless`)");
            std::process::exit(1);
        }
        if !self.observed.is_empty() {
            println!("baseline: {} benchmark(s) checked, no regressions", self.observed.len());
        }
    }
}

/// `results/bench_baseline.json` at the workspace root, resolved
/// relative to this crate so `cargo bench` works from any directory.
fn default_baseline_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/bench_baseline.json"
    ))
}

/// `results/BENCH_<rev>.json` at the workspace root — the
/// machine-readable perf trajectory, one file per commit.
fn default_export_path() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/")).join(format!(
        "BENCH_{}.json",
        git_short_rev().as_deref().unwrap_or("unknown")
    ))
}

/// `git rev-parse --short HEAD`, or `None` outside a work tree (or
/// without git on PATH).
fn git_short_rev() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (!rev.is_empty()).then_some(rev)
}

/// Writes (or merges into) the `BENCH_<rev>.json` summary: a JSON
/// object mapping each benchmark that ran to its wall-clock stats and
/// the telemetry it emitted (every counter, and mean/p99 of every
/// histogram — notably `fft.conv_us`). Benchmarks already in the file
/// from another bench target of the same revision are kept, so the
/// four targets accumulate into one per-commit record.
fn export_summary(path: &PathBuf, exported: &BTreeMap<String, Json>) -> std::io::Result<usize> {
    let mut merged: BTreeMap<String, Json> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| lrd_obs::parse_json(&text).ok())
        .and_then(|doc| match doc {
            Json::Obj(members) => Some(members.into_iter().collect()),
            _ => None,
        })
        .unwrap_or_default();
    for (name, entry) in exported {
        merged.insert(name.clone(), entry.clone());
    }
    let doc = Json::Obj(merged.into_iter().collect());
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, format!("{doc}\n"))?;
    Ok(exported.len())
}

fn load_baseline(path: &PathBuf) -> Option<BTreeMap<String, BTreeMap<String, u64>>> {
    let text = std::fs::read_to_string(path).ok()?;
    let json = match lrd_obs::parse_json(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("warning: unreadable baseline {}: {e}", path.display());
            return None;
        }
    };
    let mut out = BTreeMap::new();
    for (bench, counters) in json.as_object()? {
        let mut map = BTreeMap::new();
        for (counter, value) in counters.as_object()? {
            map.insert(counter.clone(), value.as_u64()?);
        }
        out.insert(bench.clone(), map);
    }
    Some(out)
}

/// Merges `observed` over the existing baseline (benchmarks that did
/// not run keep their entries) and writes the result with sorted keys,
/// so re-blessing is a minimal diff.
fn bless_baseline(
    path: &PathBuf,
    observed: &BTreeMap<String, BTreeMap<String, u64>>,
) -> std::io::Result<usize> {
    let mut merged = load_baseline(path).unwrap_or_default();
    for (bench, counters) in observed {
        merged.insert(bench.clone(), counters.clone());
    }
    let mut text = String::from("{\n");
    for (i, (bench, counters)) in merged.iter().enumerate() {
        text.push_str(&format!("  {:?}: {{", bench));
        for (j, (counter, value)) in counters.iter().enumerate() {
            if j > 0 {
                text.push_str(", ");
            }
            text.push_str(&format!("{:?}: {}", counter, value));
        }
        text.push_str(if i + 1 < merged.len() { "},\n" } else { "}\n" });
    }
    text.push_str("}\n");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, text)?;
    Ok(observed.len())
}

/// A named group of related benchmarks sharing a sample size.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    sample_size: usize,
}

impl Group<'_> {
    /// Sets the number of measurement samples (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark; `id` is appended to the group name.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.harness.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            metrics: None,
        };
        f(&mut b);
        b.report(&full);
        if let Some(entry) = b.summary_json() {
            self.harness.exported.insert(full.clone(), entry);
        }
        if let Some(metrics) = &b.metrics {
            let counters: BTreeMap<String, u64> = BASELINE_COUNTERS
                .iter()
                .filter_map(|&name| metrics.counter(name).map(|v| (name.to_string(), v)))
                .collect();
            if !counters.is_empty() {
                self.harness.observed.insert(full.clone(), counters);
            }
        }
        self.harness.ran += 1;
        self
    }

    /// Criterion-style alias: `bench_with_input(id, &input, |b, &input| ...)`.
    pub fn bench_with_input<I: Copy>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let input = *input;
        self.bench_function(id, move |b| f(b, &input))
    }

    /// Ends the group (spacing line in the report).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Passed to the benchmark closure; `iter` does the measuring.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    metrics: Option<lrd_obs::MetricsRegistry>,
}

impl Bencher {
    /// Measures `f`, keeping its result alive via `black_box` so the
    /// optimizer cannot delete the work.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_TARGET {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Batch iterations so each sample lasts ~SAMPLE_TARGET.
        let batch = (SAMPLE_TARGET.as_secs_f64() / per_iter.max(1e-12)).ceil().max(1.0) as u64;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
        // One final *unmeasured* iteration with telemetry collecting,
        // so the report can say what the benchmarked code actually did
        // (solver iterations, refinements, convolutions, …). Runs after
        // the timing samples; the wall-clock numbers never include
        // subscriber overhead.
        let collector = std::sync::Arc::new(lrd_obs::CollectingSubscriber::new());
        {
            let _guard = lrd_obs::install(collector.clone());
            black_box(f());
        }
        let snapshot = collector.snapshot();
        self.metrics = (!snapshot.is_empty()).then_some(snapshot);
    }

    /// The machine-readable summary for `BENCH_<rev>.json`: wall-clock
    /// stats plus everything the telemetry iteration recorded.
    fn summary_json(&self) -> Option<Json> {
        if self.samples.is_empty() {
            return None;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let obj = |members: Vec<(&str, Json)>| {
            Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };
        let wall = obj(vec![
            ("median_s", Json::Num(s[s.len() / 2])),
            ("min_s", Json::Num(s[0])),
            ("max_s", Json::Num(s[s.len() - 1])),
            ("samples", Json::Num(s.len() as f64)),
        ]);
        let mut members = vec![("wall".to_string(), wall)];
        if let Some(m) = &self.metrics {
            let counters: Vec<(String, Json)> = m
                .counters()
                .map(|(k, v)| (k.to_string(), Json::Num(v as f64)))
                .collect();
            if !counters.is_empty() {
                members.push(("counters".to_string(), Json::Obj(counters)));
            }
            let histograms: Vec<(String, Json)> = m
                .histograms()
                .map(|(k, h)| {
                    (
                        k.to_string(),
                        obj(vec![
                            ("count", Json::Num(h.count() as f64)),
                            ("mean", Json::Num(h.mean())),
                            ("p99", Json::Num(h.quantile(0.99))),
                        ]),
                    )
                })
                .collect();
            if !histograms.is_empty() {
                members.push(("histograms".to_string(), Json::Obj(histograms)));
            }
        }
        Some(Json::Obj(members))
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<48} (no measurement — closure never called iter)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = s[s.len() / 2];
        let min = s[0];
        let max = s[s.len() - 1];
        println!(
            "{name:<48} median {:>12}  min {:>12}  max {:>12}",
            fmt_time(median),
            fmt_time(min),
            fmt_time(max)
        );
        if let Some(metrics) = &self.metrics {
            println!("{:<48} {}", "", metrics.render_compact());
        }
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.3} s", seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 3,
            metrics: None,
        };
        b.iter(|| (0..100u64).sum::<u64>());
        assert_eq!(b.samples.len(), 3);
        assert!(b.samples.iter().all(|&s| s > 0.0 && s.is_finite()));
        // A closure emitting no telemetry yields no metrics snapshot.
        assert!(b.metrics.is_none());
    }

    #[test]
    fn groups_filter_by_substring() {
        let mut h = Harness {
            filter: Some("match_me".into()),
            ran: 0,
            bless: false,
            baseline_path: default_baseline_path(),
            observed: BTreeMap::new(),
            export_path: default_export_path(),
            exported: BTreeMap::new(),
        };
        let mut g = h.group("g");
        let mut hits = 0;
        g.bench_function("match_me", |b| {
            b.iter(|| 1 + 1);
        });
        g.bench_function("skipped", |_b| {
            hits += 1;
        });
        g.finish();
        assert_eq!(hits, 0, "filtered bench must not run");
        assert_eq!(h.ran, 1);
    }

    #[test]
    fn baseline_round_trips_and_merges() {
        let path = std::env::temp_dir().join(format!(
            "lrd_bench_baseline_test_{}.json",
            std::process::id()
        ));
        let mut observed = BTreeMap::new();
        observed.insert(
            "g/a".to_string(),
            BTreeMap::from([
                ("solver.iterations".to_string(), 100u64),
                ("solver.refines".to_string(), 3u64),
            ]),
        );
        bless_baseline(&path, &observed).unwrap();
        assert_eq!(load_baseline(&path).unwrap(), observed);
        // A second bless with a different benchmark merges, keeping
        // the entries that did not run this time.
        let mut second = BTreeMap::new();
        second.insert(
            "g/b".to_string(),
            BTreeMap::from([("solver.iterations".to_string(), 7u64)]),
        );
        bless_baseline(&path, &second).unwrap();
        let loaded = load_baseline(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded["g/a"]["solver.refines"], 3);
        assert_eq!(loaded["g/b"]["solver.iterations"], 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn export_summary_merges_across_targets() {
        let path = std::env::temp_dir().join(format!(
            "lrd_bench_export_test_{}.json",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let entry = |v: f64| {
            Json::Obj(vec![(
                "wall".to_string(),
                Json::Obj(vec![("median_s".to_string(), Json::Num(v))]),
            )])
        };
        let first = BTreeMap::from([("fft/a".to_string(), entry(1.0))]);
        export_summary(&path, &first).unwrap();
        // A second target's export keeps the first target's entries
        // and overwrites re-run ones.
        let second = BTreeMap::from([
            ("solver/b".to_string(), entry(2.0)),
            ("fft/a".to_string(), entry(3.0)),
        ]);
        export_summary(&path, &second).unwrap();
        let doc = lrd_obs::parse_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let median = |bench: &str| {
            doc.get(bench)
                .and_then(|e| e.get("wall"))
                .and_then(|w| w.get("median_s"))
                .and_then(Json::as_f64)
                .unwrap()
        };
        assert_eq!(median("fft/a"), 3.0);
        assert_eq!(median("solver/b"), 2.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_baseline_loads_as_none() {
        assert!(load_baseline(&PathBuf::from("/nonexistent/nope.json")).is_none());
    }

    #[test]
    fn time_formatting_covers_ranges() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
