//! A minimal wall-clock benchmark harness on `std::time::Instant`.
//!
//! The build environment is offline, so the workspace carries no
//! external benchmark framework. This module provides the small slice
//! of the familiar group/function/iter API the benches use: each
//! benchmark is warmed up, then measured over a fixed number of
//! samples, and the median/min/max per-iteration times are printed in
//! a stable one-line-per-benchmark format.
//!
//! Usage from a `harness = false` bench target:
//!
//! ```ignore
//! fn main() {
//!     let mut h = Harness::from_args();
//!     let mut g = h.group("solver_step");
//!     g.bench_function("128", |b| b.iter(|| work()));
//!     g.finish();
//! }
//! ```
//!
//! A positional command-line argument acts as a substring filter on
//! `group/name`; flags passed by `cargo bench` (e.g. `--bench`) are
//! ignored.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(30);
/// Warm-up budget per benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(60);

/// Top-level harness: parses CLI args, owns the report.
pub struct Harness {
    filter: Option<String>,
    ran: usize,
}

impl Harness {
    /// Builds a harness from `std::env::args`, ignoring flags and
    /// treating the first positional argument as a name filter.
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Harness { filter, ran: 0 }
    }

    /// Starts a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Prints the closing summary. Call once at the end of `main`.
    pub fn finish(&self) {
        println!("{} benchmark(s) run", self.ran);
    }
}

/// A named group of related benchmarks sharing a sample size.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    sample_size: usize,
}

impl Group<'_> {
    /// Sets the number of measurement samples (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark; `id` is appended to the group name.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.harness.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            metrics: None,
        };
        f(&mut b);
        b.report(&full);
        self.harness.ran += 1;
        self
    }

    /// Criterion-style alias: `bench_with_input(id, &input, |b, &input| ...)`.
    pub fn bench_with_input<I: Copy>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let input = *input;
        self.bench_function(id, move |b| f(b, &input))
    }

    /// Ends the group (spacing line in the report).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Passed to the benchmark closure; `iter` does the measuring.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    metrics: Option<lrd_obs::MetricsRegistry>,
}

impl Bencher {
    /// Measures `f`, keeping its result alive via `black_box` so the
    /// optimizer cannot delete the work.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_TARGET {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Batch iterations so each sample lasts ~SAMPLE_TARGET.
        let batch = (SAMPLE_TARGET.as_secs_f64() / per_iter.max(1e-12)).ceil().max(1.0) as u64;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
        // One final *unmeasured* iteration with telemetry collecting,
        // so the report can say what the benchmarked code actually did
        // (solver iterations, refinements, convolutions, …). Runs after
        // the timing samples; the wall-clock numbers never include
        // subscriber overhead.
        let collector = std::sync::Arc::new(lrd_obs::CollectingSubscriber::new());
        {
            let _guard = lrd_obs::install(collector.clone());
            black_box(f());
        }
        let snapshot = collector.snapshot();
        self.metrics = (!snapshot.is_empty()).then_some(snapshot);
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<48} (no measurement — closure never called iter)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = s[s.len() / 2];
        let min = s[0];
        let max = s[s.len() - 1];
        println!(
            "{name:<48} median {:>12}  min {:>12}  max {:>12}",
            fmt_time(median),
            fmt_time(min),
            fmt_time(max)
        );
        if let Some(metrics) = &self.metrics {
            println!("{:<48} {}", "", metrics.render_compact());
        }
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.3} s", seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 3,
            metrics: None,
        };
        b.iter(|| (0..100u64).sum::<u64>());
        assert_eq!(b.samples.len(), 3);
        assert!(b.samples.iter().all(|&s| s > 0.0 && s.is_finite()));
        // A closure emitting no telemetry yields no metrics snapshot.
        assert!(b.metrics.is_none());
    }

    #[test]
    fn groups_filter_by_substring() {
        let mut h = Harness {
            filter: Some("match_me".into()),
            ran: 0,
        };
        let mut g = h.group("g");
        let mut hits = 0;
        g.bench_function("match_me", |b| {
            b.iter(|| 1 + 1);
        });
        g.bench_function("skipped", |_b| {
            hits += 1;
        });
        g.finish();
        assert_eq!(hits, 0, "filtered bench must not run");
        assert_eq!(h.ran, 1);
    }

    #[test]
    fn time_formatting_covers_ranges() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
