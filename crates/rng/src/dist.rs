//! Elementary distribution samplers built on [`RngCore`].
//!
//! These are the building blocks the traffic models assemble: uniform,
//! exponential (Poisson interarrivals, on/off sojourns), normal (fGn
//! innovations), and Pareto (heavy tails, `1 < α < 2` giving the
//! paper's LRD regime).

use crate::{Rng, RngCore};

/// Uniform draw on `[lo, hi)`.
///
/// # Panics
///
/// Panics on an empty or non-finite range.
pub fn uniform<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    rng.gen_range(lo..hi)
}

/// A uniform draw on the open interval `(0, 1)` — safe to feed through
/// `ln` or negative powers without producing infinities.
pub fn open_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    rng.gen_range(f64::MIN_POSITIVE..1.0)
}

/// Exponential with the given mean (inverse-transform).
///
/// # Panics
///
/// Panics unless `mean` is positive and finite.
pub fn exponential<R: RngCore + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0 && mean.is_finite(), "exponential mean must be positive");
    -mean * open_unit(rng).ln()
}

/// Standard normal via the polar (Marsaglia) Box–Muller method.
pub fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = rng.gen_range(-1.0..1.0);
        let v = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Normal with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `sigma` is negative or non-finite.
pub fn normal<R: RngCore + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be non-negative");
    mu + sigma * standard_normal(rng)
}

/// Pareto with scale `x_m` and shape `alpha`: density `∝ x^{−α−1}` on
/// `[x_m, ∞)`. Shapes in `(1, 2)` have finite mean and infinite
/// variance — the paper's LRD regime.
///
/// # Panics
///
/// Panics unless both parameters are positive and finite.
pub fn pareto<R: RngCore + ?Sized>(rng: &mut R, x_m: f64, alpha: f64) -> f64 {
    assert!(x_m > 0.0 && x_m.is_finite(), "pareto scale must be positive");
    assert!(alpha > 0.0 && alpha.is_finite(), "pareto shape must be positive");
    x_m * open_unit(rng).powf(-1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    fn sample_mean(n: usize, mut f: impl FnMut() -> f64) -> f64 {
        (0..n).map(|_| f()).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = sample_mean(200_000, || exponential(&mut rng, 2.5));
        assert!((m - 2.5).abs() < 0.03, "mean = {m}");
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.06, "var = {var}");
    }

    #[test]
    fn pareto_obeys_power_law_tail() {
        // Pr{X > t} = (x_m / t)^α exactly for the plain Pareto.
        let mut rng = SmallRng::seed_from_u64(3);
        let (x_m, alpha, t) = (1.0, 1.5, 4.0);
        let n = 200_000;
        let tail = (0..n).filter(|_| pareto(&mut rng, x_m, alpha) > t).count() as f64 / n as f64;
        let want = (x_m / t).powf(alpha);
        assert!((tail - want).abs() < 0.005, "tail = {tail}, want {want}");
    }

    #[test]
    fn samples_are_finite_and_in_support() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(exponential(&mut rng, 0.01) >= 0.0);
            assert!(pareto(&mut rng, 0.5, 1.2) >= 0.5);
            assert!(standard_normal(&mut rng).is_finite());
            let u = open_unit(&mut rng);
            assert!(u > 0.0 && u < 1.0);
        }
    }
}
