//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's default small, fast, seedable generator:
/// xoshiro256++ (Blackman & Vigna, 2019). 256 bits of state, period
/// 2²⁵⁶ − 1, passes BigCrush; named `SmallRng` so call sites ported
/// from `rand` keep their spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Builds the generator from raw state words (must not be all
    /// zero). Exposed for reference-vector tests; normal construction
    /// goes through [`SeedableRng::seed_from_u64`].
    ///
    /// # Panics
    ///
    /// Panics if all four words are zero (the one forbidden state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        SmallRng { s }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as the xoshiro authors recommend: it
        // decorrelates nearby seeds and cannot produce the all-zero
        // state.
        let mut st = seed;
        let s = [
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
        ];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Alias kept for call sites that spelled out the std generator; the
/// workspace has exactly one generator.
pub type StdRng = SmallRng;
