//! Self-contained seeded pseudo-randomness for the whole workspace.
//!
//! The build environment has no network access, so the workspace
//! cannot depend on crates.io. This crate supplies the small slice of
//! the `rand` API the repository actually uses — a seedable generator
//! ([`rngs::SmallRng`], here xoshiro256++), the [`Rng`] /
//! [`SeedableRng`] traits with `gen` / `gen_range` / `gen_bool`, and
//! [`seq::SliceRandom::shuffle`] — under the same names, so call sites
//! port with a one-line `use` change. On top of the core generator,
//! [`dist`] provides the uniform / exponential / normal / Pareto
//! samplers the traffic models are built from.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 as its authors recommend. It is deterministic across
//! platforms for a given seed — every figure and test in this
//! repository relies on that reproducibility — and is emphatically
//! **not** cryptographic.

#![warn(missing_docs)]

pub mod dist;
pub mod rngs;
pub mod seq;

/// A source of raw random 64-bit words.
///
/// Everything else ([`Rng`]'s typed sampling, [`dist`], shuffling) is
/// derived from [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of a 64-bit
    /// draw, which xoshiro's authors rate higher-quality than the low
    /// half).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled from their "standard" distribution by
/// [`Rng::gen`]: `f64`/`f32` uniform on `[0, 1)`, integers uniform
/// over their full range, `bool` fair.
pub trait StandardSample {
    /// Draws one value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits → uniform on [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or contains non-finite endpoints.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start.is_finite() && self.end.is_finite() && self.start < self.end,
            "gen_range requires a non-empty finite range, got {:?}..{:?}",
            self.start,
            self.end
        );
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating-point rounding can land exactly on the (excluded)
        // upper endpoint; fold it back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "gen_range requires a non-empty range");
        self.start + gen_index(rng, self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<u64> {
    type Output = u64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "gen_range requires a non-empty range");
        self.start + gen_index(rng, (self.end - self.start) as usize) as u64
    }
}

/// Uniform index in `[0, bound)` without modulo bias (Lemire's
/// widening-multiply rejection method).
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn gen_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
    assert!(bound > 0, "gen_index bound must be positive");
    let bound = bound as u64;
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (bound as u128);
    let mut lo = m as u64;
    if lo < bound {
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (bound as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as usize
}

/// Typed sampling on top of [`RngCore`]: the subset of the familiar
/// `Rng` interface this workspace uses.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (uniform
    /// `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics on an empty or non-finite range.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must lie in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire output stream is a pure
    /// function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn reference_vector_xoshiro256pp() {
        // First outputs of xoshiro256++ with state seeded to
        // {1, 2, 3, 4}, from the reference C implementation.
        let mut rng = SmallRng::from_state([1, 2, 3, 4]);
        let expect: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for &e in &expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn unit_floats_lie_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0, "v = {v}");
            let w = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&w));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
        assert!(!SmallRng::seed_from_u64(1).gen_bool(0.0));
        assert!(SmallRng::seed_from_u64(1).gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn gen_bool_rejects_bad_probability() {
        SmallRng::seed_from_u64(1).gen_bool(1.5);
    }

    #[test]
    #[should_panic(expected = "non-empty finite range")]
    fn gen_range_rejects_nan() {
        SmallRng::seed_from_u64(1).gen_range(0.0..f64::NAN);
    }

    #[test]
    fn gen_index_is_unbiased_enough() {
        let mut rng = SmallRng::seed_from_u64(10);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[gen_index(&mut rng, 7)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 1.0 / 7.0).abs() < 0.01, "frac = {frac}");
        }
    }

    #[test]
    fn uniform_mean_and_variance() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var = {var}");
    }

    #[test]
    fn works_through_unsized_generic_receivers() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            let _ = rng.gen::<u64>();
            rng.gen_range(0.0..1.0)
        }
        let mut rng = SmallRng::seed_from_u64(12);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
