//! Sequence randomization (`shuffle`) for the trace experiments.

use crate::{gen_index, RngCore};

/// Shuffling for slices, as used by the trace-shuffling experiments
/// (paper Sec. III.B).
pub trait SliceRandom {
    /// Uniformly permutes the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = gen_index(rng, i + 1);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>(), "identity shuffle");
    }

    #[test]
    fn shuffle_is_roughly_uniform() {
        // Position of element 0 after shuffling [0, 1, 2] must hit
        // each slot about a third of the time.
        let mut rng = SmallRng::seed_from_u64(6);
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            let mut v = [0usize, 1, 2];
            v.shuffle(&mut rng);
            let pos = v.iter().position(|&x| x == 0).unwrap();
            counts[pos] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "frac = {frac}");
        }
    }

    #[test]
    fn degenerate_shuffles_are_noops() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut empty: [u8; 0] = [];
        empty.shuffle(&mut rng);
        let mut one = [9u8];
        one.shuffle(&mut rng);
        assert_eq!(one, [9]);
    }
}
