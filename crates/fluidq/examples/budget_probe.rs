//! Timing probe for the solver's convergence protocol on three marginal
//! transformations (the paper's footnote 1 reports sub-second solves on
//! a 1996 workstation; this shows where a modern machine stands).
//!
//! The timing is read from the solver's own `solver.solve` telemetry
//! span via a [`lrd_obs::CollectingSubscriber`] — no ad-hoc stopwatch —
//! and the run closes with the aggregated telemetry table.
//!
//! ```sh
//! cargo run --release -p lrd-fluidq --example budget_probe
//! ```

use lrd_fluidq::{QueueModel, SolveSession, SolverOptions};
use lrd_traffic::{Marginal, TruncatedPareto};
use std::sync::Arc;

fn main() {
    let collector = Arc::new(lrd_obs::CollectingSubscriber::new());
    let summary: Arc<dyn lrd_obs::Subscriber> = Arc::new(lrd_obs::SummarySubscriber::stderr());
    let _telemetry = lrd_obs::install_fanout(vec![collector.clone(), summary]);

    let marginal = Marginal::new(&[1.0, 4.0, 9.0, 15.0], &[0.3, 0.35, 0.25, 0.1]);
    let iv = TruncatedPareto::new(0.05, 1.4, 2.0);
    let base = QueueModel::from_utilization(marginal.clone(), iv, 0.8, 0.3);
    for (name, m) in [
        ("base", base.clone()),
        ("narrow", base.with_marginal(marginal.scaled(0.6))),
        ("muxed4", base.with_marginal(marginal.superpose(4, 200))),
    ] {
        let sol = SolveSession::builder(&m)
            .options(&SolverOptions::default())
            .solve();
        let t = collector
            .spans("solver.solve")
            .last()
            .and_then(|s| s.dur_us())
            .map_or_else(|| "?".to_string(), lrd_obs::fmt_us);
        println!(
            "{name:8} loss={:.3e} [{:.2e},{:.2e}] M={} iters={} conv={} t={t}",
            sol.loss(),
            sol.lower,
            sol.upper,
            sol.bins,
            sol.iterations,
            sol.converged
        );
    }
}
