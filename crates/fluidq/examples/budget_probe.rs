//! Timing probe for the solver's convergence protocol on three marginal
//! transformations (the paper's footnote 1 reports sub-second solves on
//! a 1996 workstation; this shows where a modern machine stands).
//!
//! ```sh
//! cargo run --release -p lrd-fluidq --example budget_probe
//! ```

use lrd_fluidq::{solve, QueueModel, SolverOptions};
use lrd_traffic::{Marginal, TruncatedPareto};

fn main() {
    let marginal = Marginal::new(&[1.0, 4.0, 9.0, 15.0], &[0.3, 0.35, 0.25, 0.1]);
    let iv = TruncatedPareto::new(0.05, 1.4, 2.0);
    let base = QueueModel::from_utilization(marginal.clone(), iv, 0.8, 0.3);
    for (name, m) in [
        ("base", base.clone()),
        ("narrow", base.with_marginal(marginal.scaled(0.6))),
        ("muxed4", base.with_marginal(marginal.superpose(4, 200))),
    ] {
        let t0 = std::time::Instant::now();
        let sol = solve(&m, &SolverOptions::default());
        println!("{name:8} loss={:.3e} [{:.2e},{:.2e}] M={} iters={} conv={} t={:?}",
            sol.loss(), sol.lower, sol.upper, sol.bins, sol.iterations, sol.converged, t0.elapsed());
    }
}
