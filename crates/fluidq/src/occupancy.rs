//! Occupancy-distribution queries on the solved bounds.
//!
//! The paper's footnote 2 connects the two classical metrics: "the
//! overflow probability, i.e., the probability that the queue
//! occupancy exceeds some amount, in an infinite buffer queue is an
//! upper bound to the loss rate in the corresponding finite buffer
//! queue". Most of the prior LRD literature reports tail
//! probabilities; this module exposes them from the bound chains so
//! the solver's results can be compared against that literature
//! (Norros' Weibull tails, hyperbolic on/off tails, etc.).

use crate::solver::BoundSolver;
use lrd_traffic::Interarrival;

/// A two-sided estimate of a probability, from the lower/upper bound
/// chains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bracket {
    /// Value computed from the lower-bound chain `Q_L`.
    pub from_lower_chain: f64,
    /// Value computed from the upper-bound chain `Q_H`.
    pub from_upper_chain: f64,
}

impl Bracket {
    /// Midpoint of the bracket.
    pub fn mid(&self) -> f64 {
        0.5 * (self.from_lower_chain + self.from_upper_chain)
    }

    /// Width of the bracket (an accuracy indicator).
    pub fn width(&self) -> f64 {
        (self.from_upper_chain - self.from_lower_chain).abs()
    }
}

impl<D: Interarrival + Clone> BoundSolver<D> {
    /// Tail probability `Pr{Q > x}` bracketed by the two chains.
    ///
    /// Because `Q_L ⪯ Q ⪯ Q_H` (stochastic order), the true tail lies
    /// between `Pr{Q_L > x}` and `Pr{Q_H > x}` once both chains have
    /// reached stationarity.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative.
    pub fn tail_probability(&self, x: f64) -> Bracket {
        assert!(x >= 0.0, "occupancy threshold must be non-negative");
        let d = self.step_size();
        let tail = |q: &[f64]| -> f64 {
            q.iter()
                .enumerate()
                .filter(|&(j, _)| j as f64 * d > x)
                .map(|(_, &p)| p)
                .sum()
        };
        Bracket {
            from_lower_chain: tail(self.occupancy_lower()),
            from_upper_chain: tail(self.occupancy_upper()),
        }
    }

    /// Mean occupancy bracketed by the two chains.
    pub fn mean_occupancy(&self) -> Bracket {
        let d = self.step_size();
        let mean = |q: &[f64]| -> f64 {
            q.iter()
                .enumerate()
                .map(|(j, &p)| j as f64 * d * p)
                .sum()
        };
        Bracket {
            from_lower_chain: mean(self.occupancy_lower()),
            from_upper_chain: mean(self.occupancy_upper()),
        }
    }

    /// Occupancy quantile: the smallest grid point `x` with
    /// `Pr{Q <= x} >= p`, per chain.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1]`.
    pub fn occupancy_quantile(&self, p: f64) -> Bracket {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        let d = self.step_size();
        let quant = |q: &[f64]| -> f64 {
            let mut acc = 0.0;
            for (j, &m) in q.iter().enumerate() {
                acc += m;
                if acc >= p {
                    return j as f64 * d;
                }
            }
            (q.len() - 1) as f64 * d
        };
        Bracket {
            from_lower_chain: quant(self.occupancy_lower()),
            from_upper_chain: quant(self.occupancy_upper()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QueueModel;
    use lrd_traffic::{Marginal, TruncatedPareto};

    fn solver() -> BoundSolver<TruncatedPareto> {
        let model = QueueModel::new(
            Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
            TruncatedPareto::new(0.05, 1.4, 1.0),
            10.0,
            2.0,
        );
        let mut s = BoundSolver::new(model, 200);
        for _ in 0..2000 {
            s.step();
        }
        s
    }

    #[test]
    fn tail_is_bracketed_and_monotone() {
        let s = solver();
        let mut prev = Bracket {
            from_lower_chain: 1.0,
            from_upper_chain: 1.0,
        };
        for i in 0..=10 {
            let x = i as f64 * 0.2;
            let b = s.tail_probability(x);
            // Q_L ⪯ Q_H ⇒ Pr{Q_L > x} <= Pr{Q_H > x}.
            assert!(
                b.from_lower_chain <= b.from_upper_chain + 1e-9,
                "bracket inverted at {x}"
            );
            // Tails decrease in x.
            assert!(b.from_lower_chain <= prev.from_lower_chain + 1e-12);
            assert!(b.from_upper_chain <= prev.from_upper_chain + 1e-12);
            prev = b;
        }
        // Beyond the buffer the tail is zero.
        let at_b = s.tail_probability(2.0);
        assert_eq!(at_b.from_lower_chain, 0.0);
        assert_eq!(at_b.from_upper_chain, 0.0);
    }

    #[test]
    fn mean_occupancy_bracket() {
        let s = solver();
        let m = s.mean_occupancy();
        assert!(m.from_lower_chain <= m.from_upper_chain + 1e-9);
        assert!(m.mid() > 0.0 && m.mid() < 2.0);
        assert!(m.width() < 0.5, "bracket too wide: {}", m.width());
    }

    #[test]
    fn quantiles_are_ordered() {
        let s = solver();
        let q50 = s.occupancy_quantile(0.5);
        let q99 = s.occupancy_quantile(0.99);
        // Higher p ⇒ larger quantile (per chain).
        assert!(q99.from_lower_chain >= q50.from_lower_chain);
        assert!(q99.from_upper_chain >= q50.from_upper_chain);
        // CDF_L dominates ⇒ the lower chain's quantiles are smaller.
        assert!(q50.from_lower_chain <= q50.from_upper_chain + 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_threshold_rejected() {
        solver().tail_probability(-1.0);
    }
}
