//! Typed errors and degradation reporting for the loss solver.
//!
//! The solver distinguishes two failure classes:
//!
//! * **Errors** ([`SolverError`]) — the *question* was malformed
//!   (invalid [`SolverOptions`](crate::SolverOptions) or grid size).
//!   [`try_solve`](crate::try_solve) returns `Err` and computes
//!   nothing.
//! * **Degradation** ([`DegradationReason`]) — the question was fine
//!   but the answer is weaker than requested. The solver still returns
//!   the best *provable* bounds it reached, with
//!   [`LossSolution::converged`](crate::LossSolution::converged) set to
//!   `false` (or, for [`DegradationReason::MassLeak`], possibly `true`
//!   with a caveat) and the machine-readable reason attached. Callers
//!   that only need bounds can ignore it; callers that need the target
//!   gap can branch on it.

use std::fmt;

/// Why the solver rejected its configuration outright.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverError {
    /// A [`SolverOptions`](crate::SolverOptions) field (or an explicit
    /// grid size) was outside its domain. The `Display` form is the
    /// exact panic message of the corresponding infallible entry
    /// point.
    InvalidOption {
        /// Which option was invalid.
        option: &'static str,
        /// The offending value (integer options are widened to `f64`).
        value: f64,
        /// Human-readable statement of the domain, phrased as
        /// "must ..." so it composes into the panic message.
        constraint: &'static str,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SolverError::InvalidOption {
                option,
                value,
                constraint,
            } => write!(f, "{option} {constraint}, got {value}"),
        }
    }
}

impl std::error::Error for SolverError {}

/// Why a returned [`LossSolution`](crate::LossSolution) is weaker than
/// the requested gap — graceful-degradation diagnostics, not errors.
///
/// Whatever the reason, the returned bounds still satisfy
/// `0 <= lower <= upper` and are finite: they remain *provable* bounds
/// for the discretization reached, just not as tight as asked for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegradationReason {
    /// Refinement would exceed
    /// [`SolverOptions::max_bins`](crate::SolverOptions::max_bins); the
    /// bounds are discretization-limited at this ceiling.
    GridCeiling {
        /// The configured refinement ceiling.
        max_bins: usize,
    },
    /// The `iterations × bins` work budget
    /// ([`SolverOptions::max_total_cost`](crate::SolverOptions::max_total_cost))
    /// ran out before the gap criterion was met.
    BudgetExhausted {
        /// Work spent when the solver stopped.
        spent: f64,
        /// The configured budget.
        budget: f64,
    },
    /// Probability mass drifted off the occupancy chains by more than
    /// the conservation tolerance before renormalization — the bounds
    /// are still ordered but carry extra numerical error of this
    /// magnitude.
    MassLeak {
        /// Worst observed `|Σq − 1|` across all iterations.
        deficit: f64,
    },
    /// A loss bound became non-finite; the solver stopped and returned
    /// the last finite bounds.
    NumericalBreakdown,
}

impl DegradationReason {
    /// Stable machine-readable tag for the variant — the `reason`
    /// field of the `solver.degraded` telemetry event and a convenient
    /// key for callers bucketing degradations.
    pub fn kind(&self) -> &'static str {
        match self {
            DegradationReason::GridCeiling { .. } => "grid_ceiling",
            DegradationReason::BudgetExhausted { .. } => "budget_exhausted",
            DegradationReason::MassLeak { .. } => "mass_leak",
            DegradationReason::NumericalBreakdown => "numerical_breakdown",
        }
    }

    /// Emits this degradation as a typed `solver.degraded` telemetry
    /// event (no-op unless a subscriber is installed). Each variant
    /// carries its payload as typed fields alongside the
    /// [`kind`](Self::kind) tag.
    pub fn emit(&self) {
        match *self {
            DegradationReason::GridCeiling { max_bins } => {
                lrd_obs::event!("solver.degraded", reason = self.kind(), max_bins = max_bins);
            }
            DegradationReason::BudgetExhausted { spent, budget } => {
                lrd_obs::event!(
                    "solver.degraded",
                    reason = self.kind(),
                    spent = spent,
                    budget = budget
                );
            }
            DegradationReason::MassLeak { deficit } => {
                lrd_obs::event!("solver.degraded", reason = self.kind(), deficit = deficit);
            }
            DegradationReason::NumericalBreakdown => {
                lrd_obs::event!("solver.degraded", reason = self.kind());
            }
        }
    }
}

impl fmt::Display for DegradationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DegradationReason::GridCeiling { max_bins } => {
                write!(f, "grid refinement ceiling reached (max_bins = {max_bins})")
            }
            DegradationReason::BudgetExhausted { spent, budget } => {
                write!(f, "work budget exhausted ({spent:.3e} of {budget:.3e})")
            }
            DegradationReason::MassLeak { deficit } => {
                write!(f, "probability mass drifted by {deficit:.3e} before renormalization")
            }
            DegradationReason::NumericalBreakdown => {
                write!(f, "loss bounds became non-finite; returning last finite bounds")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_panics() {
        let e = SolverError::InvalidOption {
            option: "rel_gap",
            value: 0.0,
            constraint: "must be positive",
        };
        assert_eq!(e.to_string(), "rel_gap must be positive, got 0");
    }

    #[test]
    fn degradation_reasons_render() {
        for r in [
            DegradationReason::GridCeiling { max_bins: 8 },
            DegradationReason::BudgetExhausted {
                spent: 1e3,
                budget: 5e2,
            },
            DegradationReason::MassLeak { deficit: 1e-4 },
            DegradationReason::NumericalBreakdown,
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
