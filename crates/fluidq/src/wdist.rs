//! Discretization of the per-interval work increment `W = T (λ − c)`.
//!
//! `W` mixes over the marginal: with probability `π_i` it equals
//! `T·(λ_i − c)`, a scaled copy of the interval length. Its CDF is
//! therefore available in closed form from the interval distribution's
//! `ccdf`/`prob_ge` (paper Eq. 10), including the **atoms** at
//! `T_c·(λ_i − c)` contributed by the truncated Pareto's atom at `T_c`.
//!
//! Two discretizations are produced (paper Eq. 21–22):
//!
//! * `w_L(i) = Pr{W ∈ [i·d, (i+1)·d)}` — mass rounded **down**, used by
//!   the lower-bound chain, with the left tail folded into `i = −M` and
//!   the right tail into `i = M`;
//! * `w_H(i) = Pr{W ∈ ((i−1)·d, i·d]}` — mass rounded **up**, used by
//!   the upper-bound chain.
//!
//! Both are exact up to `f64` evaluation of the closed-form CDF — no
//! sampling is involved anywhere in the solver.

use crate::model::QueueModel;
use lrd_traffic::Interarrival;

/// The discretized work-increment distribution for a given grid.
#[derive(Debug, Clone)]
pub struct WorkDistribution {
    bins: usize,
    d: f64,
    /// `w_L(−M..=M)` stored with offset `M` (index `i + M`).
    lower: Vec<f64>,
    /// `w_H(−M..=M)` stored with offset `M`.
    upper: Vec<f64>,
}

impl WorkDistribution {
    /// Builds both discretizations with `bins = M` quantization levels
    /// (grid step `d = B/M`).
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn build<D: Interarrival>(model: &QueueModel<D>, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        let m = bins as isize;
        let d = model.buffer() / bins as f64;

        let prob_lt = |w: f64| prob_lt(model, w);
        let prob_le = |w: f64| prob_le(model, w);

        let mut lower = Vec::with_capacity(2 * bins + 1);
        let mut upper = Vec::with_capacity(2 * bins + 1);
        for i in -m..=m {
            let x = i as f64 * d;
            let wl = if i == -m {
                // Pr{W < (−M+1)d}
                prob_lt((i + 1) as f64 * d)
            } else if i == m {
                // Pr{W >= Md}
                1.0 - prob_lt(x)
            } else {
                prob_lt(x + d) - prob_lt(x)
            };
            let wh = if i == -m {
                // Pr{W <= −Md}
                prob_le(x)
            } else if i == m {
                // Pr{W > (M−1)d}
                1.0 - prob_le(x - d)
            } else {
                prob_le(x) - prob_le(x - d)
            };
            lower.push(wl.max(0.0));
            upper.push(wh.max(0.0));
        }
        WorkDistribution {
            bins,
            d,
            lower,
            upper,
        }
    }

    /// The quantization level count `M`.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// The grid step `d = B/M`.
    pub fn step(&self) -> f64 {
        self.d
    }

    /// `w_L` as a dense slice over indices `−M..=M` (offset by `M`).
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// `w_H` as a dense slice over indices `−M..=M` (offset by `M`).
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }
}

/// `Pr{W <= w}` in closed form.
pub fn prob_le<D: Interarrival>(model: &QueueModel<D>, w: f64) -> f64 {
    let c = model.service_rate();
    let iv = model.intervals();
    model
        .marginal()
        .rates()
        .iter()
        .zip(model.marginal().probs())
        .map(|(&r, &p)| {
            let drift = r - c;
            let t = w / drift;
            let term = if drift > 0.0 {
                // W_i = T·drift, increasing in T: Pr{T <= t}.
                if w < 0.0 {
                    0.0
                } else {
                    1.0 - iv.ccdf(t)
                }
            } else {
                // drift < 0, W_i <= 0 a.s.: Pr{T·drift <= w} = Pr{T >= t}.
                if w >= 0.0 {
                    1.0
                } else {
                    iv.prob_ge(t)
                }
            };
            p * term
        })
        .sum()
}

/// `Pr{W < w}` in closed form (differs from [`prob_le`] at atoms).
pub fn prob_lt<D: Interarrival>(model: &QueueModel<D>, w: f64) -> f64 {
    let c = model.service_rate();
    let iv = model.intervals();
    model
        .marginal()
        .rates()
        .iter()
        .zip(model.marginal().probs())
        .map(|(&r, &p)| {
            let drift = r - c;
            let t = w / drift;
            let term = if drift > 0.0 {
                // Pr{T < t} = 1 − Pr{T >= t}.
                if w <= 0.0 {
                    0.0
                } else {
                    1.0 - iv.prob_ge(t)
                }
            } else {
                // Pr{T·drift < w} = Pr{T > t}.
                if w >= 0.0 {
                    1.0
                } else {
                    iv.ccdf(t)
                }
            };
            p * term
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_traffic::{Marginal, TruncatedPareto};

    fn model() -> QueueModel<TruncatedPareto> {
        QueueModel::new(
            Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
            TruncatedPareto::new(0.05, 1.4, 1.0),
            10.0,
            5.0,
        )
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let m = model();
        let mut prev = -1e-15;
        for i in -200..=200 {
            let w = i as f64 * 0.1;
            let p = prob_le(&m, w);
            assert!(p >= prev - 1e-12, "CDF not monotone at {w}");
            assert!((0.0..=1.0 + 1e-12).contains(&p));
            prev = p;
        }
        // Support of W: with T <= T_c = 1 and drifts −8 and +4,
        // W ∈ [−8, 4].
        assert_eq!(prob_le(&m, -8.001), 0.0);
        assert!((prob_le(&m, 4.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn atoms_at_cutoff_work() {
        let m = model();
        let atom = m.intervals().atom_mass();
        // Atom of W at −8 (drift −8 × T_c=1) with mass 0.5·atom, and at
        // +4 with mass 0.5·atom.
        let at_minus8 = prob_le(&m, -8.0) - prob_lt(&m, -8.0);
        assert!((at_minus8 - 0.5 * atom).abs() < 1e-12);
        let at_plus4 = prob_le(&m, 4.0) - prob_lt(&m, 4.0);
        assert!((at_plus4 - 0.5 * atom).abs() < 1e-12);
        // No atom elsewhere.
        let elsewhere = prob_le(&m, 1.0) - prob_lt(&m, 1.0);
        assert!(elsewhere.abs() < 1e-12);
    }

    #[test]
    fn both_discretizations_sum_to_one() {
        let m = model();
        for bins in [1usize, 7, 64, 501] {
            let w = WorkDistribution::build(&m, bins);
            let sl: f64 = w.lower().iter().sum();
            let sh: f64 = w.upper().iter().sum();
            assert!((sl - 1.0).abs() < 1e-10, "w_L sums to {sl} at M={bins}");
            assert!((sh - 1.0).abs() < 1e-10, "w_H sums to {sh} at M={bins}");
            assert_eq!(w.lower().len(), 2 * bins + 1);
        }
    }

    #[test]
    fn lower_is_stochastically_below_upper() {
        // Partial sums from the left: the w_L CDF must dominate the
        // w_H CDF pointwise (mass shifted down vs up).
        let m = model();
        let w = WorkDistribution::build(&m, 100);
        let mut cl = 0.0;
        let mut ch = 0.0;
        for i in 0..w.lower().len() {
            cl += w.lower()[i];
            ch += w.upper()[i];
            assert!(
                cl >= ch - 1e-12,
                "stochastic order violated at index {i}: {cl} < {ch}"
            );
        }
    }

    #[test]
    fn mean_of_discretizations_brackets_true_mean() {
        // E[W] = E[T]·(λ̄ − c). Use a buffer large enough that the
        // support of W fits inside [−B, B]: tail folding (which maps
        // out-of-range mass onto ±B) would otherwise bias both means
        // upward and break the bracket.
        let m = model().with_buffer(10.0);
        let want = m.intervals().mean() * (m.marginal().mean() - m.service_rate());
        let w = WorkDistribution::build(&m, 2000);
        let d = w.step();
        let bins = w.bins() as isize;
        let mean_of = |v: &[f64]| -> f64 {
            v.iter()
                .enumerate()
                .map(|(idx, &p)| (idx as isize - bins) as f64 * d * p)
                .sum()
        };
        let ml = mean_of(w.lower());
        let mh = mean_of(w.upper());
        // Tail folding perturbs means, but at this resolution and
        // support-within-grid they bracket the analytic value.
        assert!(
            ml <= want + 1e-9 && want <= mh + 1e-9,
            "bracket failed: {ml} <= {want} <= {mh}"
        );
        assert!((ml - want).abs() < 0.01 && (mh - want).abs() < 0.01);
    }

    #[test]
    fn exponential_intervals_also_work() {
        let m = QueueModel::new(
            Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
            lrd_traffic::Exponential::new(0.1),
            10.0,
            5.0,
        );
        let w = WorkDistribution::build(&m, 128);
        let sl: f64 = w.lower().iter().sum();
        assert!((sl - 1.0).abs() < 1e-10);
    }
}
