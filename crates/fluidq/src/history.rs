//! Bounded convergence-trajectory diagnostics carried by
//! [`LossSolution`](crate::LossSolution).
//!
//! The solver's final scalars (`lower`, `upper`, `iterations`, `bins`)
//! say nothing about *how* it got there. The trajectory matters for
//! diagnosing stalls and for tuning
//! [`SolverOptions`](crate::SolverOptions), but an unbounded
//! per-iteration log would make every solution allocation-heavy. The
//! compromise here: a fixed-capacity ring of the **last**
//! [`GAP_HISTORY_CAPACITY`] bound samples (the endgame is where
//! convergence analysis happens) plus the full — and in practice tiny —
//! list of grid-refinement epochs.

/// One `(iteration, lower, upper)` bound sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapSample {
    /// Global iteration count (across all grid levels) when the sample
    /// was taken; 1-based, matching
    /// [`LossSolution::iterations`](crate::LossSolution::iterations).
    pub iteration: usize,
    /// Lower loss bound `l(Q_L)` at that iteration.
    pub lower: f64,
    /// Upper loss bound `l(Q_H)` at that iteration.
    pub upper: f64,
}

impl GapSample {
    /// The bound gap `upper − lower`.
    pub fn gap(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Capacity of [`GapHistory`]: the solver keeps this many trailing
/// samples, regardless of how many iterations it runs.
pub const GAP_HISTORY_CAPACITY: usize = 64;

/// A fixed-capacity ring buffer holding the most recent
/// [`GAP_HISTORY_CAPACITY`] gap samples, oldest first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GapHistory {
    samples: Vec<GapSample>,
    /// Index of the oldest sample once the ring has wrapped.
    head: usize,
}

impl GapHistory {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample, evicting the oldest once
    /// [`GAP_HISTORY_CAPACITY`] is reached.
    pub fn push(&mut self, sample: GapSample) {
        if self.samples.len() < GAP_HISTORY_CAPACITY {
            self.samples.push(sample);
        } else {
            self.samples[self.head] = sample;
            self.head = (self.head + 1) % GAP_HISTORY_CAPACITY;
        }
    }

    /// Number of retained samples (at most
    /// [`GAP_HISTORY_CAPACITY`]).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The retained samples in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = &GapSample> + '_ {
        let (wrapped, recent) = self.samples.split_at(self.head);
        recent.iter().chain(wrapped.iter())
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<&GapSample> {
        if self.samples.is_empty() {
            None
        } else if self.head == 0 {
            self.samples.last()
        } else {
            Some(&self.samples[self.head - 1])
        }
    }
}

impl<'a> IntoIterator for &'a GapHistory {
    type Item = &'a GapSample;
    type IntoIter = Box<dyn Iterator<Item = &'a GapSample> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: usize) -> GapSample {
        GapSample {
            iteration: i,
            lower: i as f64,
            upper: 2.0 * i as f64,
        }
    }

    #[test]
    fn keeps_everything_under_capacity() {
        let mut h = GapHistory::new();
        assert!(h.is_empty());
        assert!(h.latest().is_none());
        for i in 1..=10 {
            h.push(sample(i));
        }
        assert_eq!(h.len(), 10);
        let iters: Vec<usize> = h.iter().map(|s| s.iteration).collect();
        assert_eq!(iters, (1..=10).collect::<Vec<_>>());
        assert_eq!(h.latest().unwrap().iteration, 10);
    }

    #[test]
    fn wraps_keeping_the_most_recent_in_order() {
        let mut h = GapHistory::new();
        let n = GAP_HISTORY_CAPACITY + 17;
        for i in 1..=n {
            h.push(sample(i));
        }
        assert_eq!(h.len(), GAP_HISTORY_CAPACITY);
        let iters: Vec<usize> = h.iter().map(|s| s.iteration).collect();
        let expected: Vec<usize> = (n - GAP_HISTORY_CAPACITY + 1..=n).collect();
        assert_eq!(iters, expected, "chronological order after wrap");
        assert_eq!(h.latest().unwrap().iteration, n);
    }

    #[test]
    fn gap_accessor() {
        assert_eq!(sample(3).gap(), 3.0);
    }
}
