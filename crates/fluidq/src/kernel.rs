//! The analytic expected-loss kernel `E[W_l | Q = x]` (paper Eq. 15).
//!
//! Conditional on occupancy `x` at an arrival epoch, the work lost in
//! the next interval is `W_l = (W − (B − x))⁺`. Only overload rates
//! (`λ_i > c`) can lose work, and integrating the tail of `W` gives
//!
//! ```text
//! E[W_l | Q = x] = Σ_{i: λ_i > c} π_i (λ_i − c) · I((B − x)/(λ_i − c))
//! ```
//!
//! where `I(t) = ∫_t^∞ Pr{T > u} du` is the integrated interarrival
//! tail ([`lrd_traffic::Interarrival::int_ccdf`]). For the truncated
//! Pareto this reproduces the paper's closed form verbatim; the trait
//! indirection makes the same kernel work for the exponential
//! (Markovian) baseline.

use crate::model::QueueModel;
use lrd_traffic::Interarrival;

/// Precomputed loss kernel on a grid of `M + 1` occupancy levels.
#[derive(Debug, Clone)]
pub struct LossKernel {
    /// `E[W_l | Q = j·d]` for `j = 0..=M`.
    values: Vec<f64>,
    /// Normalizer `λ̄ · E[T]` (mean work per interval).
    mean_work: f64,
}

impl LossKernel {
    /// Evaluates `E[W_l | Q = x]` exactly.
    pub fn expected_loss_at<D: Interarrival>(model: &QueueModel<D>, x: f64) -> f64 {
        assert!(
            (0.0..=model.buffer() + 1e-9).contains(&x),
            "occupancy {x} outside [0, B]"
        );
        let c = model.service_rate();
        let b = model.buffer();
        model
            .marginal()
            .rates()
            .iter()
            .zip(model.marginal().probs())
            .filter(|&(&r, _)| r > c)
            .map(|(&r, &p)| {
                let drift = r - c;
                p * drift * model.intervals().int_ccdf((b - x) / drift)
            })
            .sum()
    }

    /// Precomputes the kernel on the `M + 1`-point grid `x = j·B/M`.
    pub fn build<D: Interarrival>(model: &QueueModel<D>, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        let d = model.buffer() / bins as f64;
        let values = (0..=bins)
            .map(|j| Self::expected_loss_at(model, (j as f64 * d).min(model.buffer())))
            .collect();
        LossKernel {
            values,
            mean_work: model.mean_work_per_interval(),
        }
    }

    /// The grid values `E[W_l | Q = j·d]`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Loss rate `l = Σ_j q(j)·E[W_l | Q = j·d] / (λ̄ E[T])` (Eq. 13 and
    /// 23–24) for an occupancy distribution `q` on the same grid.
    ///
    /// # Panics
    ///
    /// Panics if `q` has the wrong length.
    pub fn loss_rate(&self, q: &[f64]) -> f64 {
        assert_eq!(q.len(), self.values.len(), "grid size mismatch");
        let num: f64 = q.iter().zip(&self.values).map(|(&p, &k)| p * k).sum();
        num / self.mean_work
    }

    /// Splits the loss rate by the rate class active during the lossy
    /// interval: entry `i` is the contribution of marginal rate `λ_i`
    /// to the overall loss rate (their sum equals
    /// [`LossKernel::loss_rate`] recomputed from the model). Underload
    /// classes contribute exactly zero — in the fluid model only
    /// intervals with `λ_i > c` can overflow, so loss is carried
    /// entirely by the overload states.
    ///
    /// Useful for class-based control: it quantifies how much of the
    /// loss each burst level is responsible for, the information a
    /// rate-control mechanism acting on the marginal (paper Sec. III,
    /// third consequence) would target.
    ///
    /// # Panics
    ///
    /// Panics if `q` has the wrong grid length.
    pub fn per_class_loss<D: Interarrival>(
        model: &QueueModel<D>,
        q: &[f64],
    ) -> Vec<f64> {
        let bins = q.len().checked_sub(1).expect("non-empty occupancy grid");
        let d = model.buffer() / bins as f64;
        let c = model.service_rate();
        let b = model.buffer();
        let mean_work = model.mean_work_per_interval();
        model
            .marginal()
            .rates()
            .iter()
            .zip(model.marginal().probs())
            .map(|(&r, &p)| {
                if r <= c {
                    return 0.0;
                }
                let drift = r - c;
                let num: f64 = q
                    .iter()
                    .enumerate()
                    .map(|(j, &mass)| {
                        let x = (j as f64 * d).min(b);
                        mass * p * drift * model.intervals().int_ccdf((b - x) / drift)
                    })
                    .sum();
                num / mean_work
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_traffic::{Exponential, Marginal, TruncatedPareto};

    fn model() -> QueueModel<TruncatedPareto> {
        QueueModel::new(
            Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
            TruncatedPareto::new(0.05, 1.4, 1.0),
            10.0,
            2.0,
        )
    }

    #[test]
    fn kernel_is_monotone_in_occupancy() {
        let m = model();
        let k = LossKernel::build(&m, 200);
        for w in k.values().windows(2) {
            assert!(w[1] >= w[0] - 1e-15, "kernel must increase with Q");
        }
    }

    #[test]
    fn full_buffer_value() {
        // At x = B the expected loss is Σ π_i (λ_i−c)·E[T] over
        // overload rates (int_ccdf(0) = E[T]).
        let m = model();
        let want = 0.5 * 4.0 * m.intervals().mean();
        let got = LossKernel::expected_loss_at(&m, 2.0);
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn empty_buffer_can_still_lose() {
        // With T_c (λ_max − c) = 1·4 = 4 > B = 2, even an empty queue
        // can overflow within one interval.
        let m = model();
        assert!(LossKernel::expected_loss_at(&m, 0.0) > 0.0);
    }

    #[test]
    fn no_loss_when_interval_cannot_fill_buffer() {
        // With a big buffer, T_c(λ_max−c) = 4 < B − x for x small:
        // the kernel vanishes at occupancies below B − 4.
        let m = model().with_buffer(10.0);
        assert_eq!(LossKernel::expected_loss_at(&m, 0.0), 0.0);
        assert_eq!(LossKernel::expected_loss_at(&m, 5.9), 0.0);
        assert!(LossKernel::expected_loss_at(&m, 6.1) > 0.0);
    }

    #[test]
    fn kernel_matches_monte_carlo() {
        use lrd_traffic::Interarrival;
        use lrd_rng::SeedableRng;
        let m = model();
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(77);
        for &x in &[0.0, 0.5, 1.0, 1.9] {
            let mut acc = 0.0;
            let n = 400_000;
            for _ in 0..n {
                let t = m.intervals().sample(&mut rng);
                let r = m.marginal().sample(&mut rng);
                let w = t * (r - m.service_rate());
                acc += (w - (m.buffer() - x)).max(0.0);
            }
            let mc = acc / n as f64;
            let exact = LossKernel::expected_loss_at(&m, x);
            assert!(
                (mc - exact).abs() < 0.01 * exact.max(0.01),
                "x={x}: MC {mc} vs exact {exact}"
            );
        }
    }

    #[test]
    fn loss_rate_of_point_mass_at_full() {
        let m = model();
        let bins = 100;
        let k = LossKernel::build(&m, bins);
        let mut q = vec![0.0; bins + 1];
        q[bins] = 1.0;
        let l = k.loss_rate(&q);
        let want = LossKernel::expected_loss_at(&m, 2.0) / m.mean_work_per_interval();
        assert!((l - want).abs() < 1e-12);
        assert!(l > 0.0 && l < 1.0);
    }

    #[test]
    fn per_class_loss_sums_to_total() {
        let m = model();
        let bins = 100;
        let k = LossKernel::build(&m, bins);
        // A spread-out occupancy distribution.
        let q: Vec<f64> = (0..=bins).map(|_| 1.0 / (bins + 1) as f64).collect();
        let per_class = LossKernel::per_class_loss(&m, &q);
        assert_eq!(per_class.len(), m.marginal().len());
        // Underload class (rate 2 < c = 10) contributes nothing.
        assert_eq!(per_class[0], 0.0);
        // Classes sum to the aggregate loss rate.
        let total: f64 = per_class.iter().sum();
        let want = k.loss_rate(&q);
        assert!(
            (total - want).abs() < 1e-12 * want.max(1.0),
            "per-class sum {total} vs total {want}"
        );
        assert!(per_class[1] > 0.0);
    }

    #[test]
    fn exponential_kernel_positive() {
        let m = QueueModel::new(
            Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
            Exponential::new(0.1),
            10.0,
            2.0,
        );
        // Exponential support is unbounded: any occupancy can lose.
        assert!(LossKernel::expected_loss_at(&m, 0.0) > 0.0);
        let k = LossKernel::build(&m, 50);
        assert!(k.values().iter().all(|&v| v > 0.0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn occupancy_out_of_range() {
        LossKernel::expected_loss_at(&model(), 3.0);
    }
}
