//! The bounding iteration (paper Eq. 16–24 and Proposition II.1).
//!
//! [`BoundSolver`] holds the two discretized occupancy chains and
//! exposes single-step iteration (used to reproduce Fig. 2);
//! [`solve`] wraps it in the paper's full convergence protocol:
//! iterate until the loss-bound gap is below 20 % of the midpoint,
//! report zero when the upper bound drops below `1e-10`, and when the
//! bounds stall at a discretization-limited gap, double `M` and
//! warm-restart from the re-binned coarse solution (footnote 3).

use crate::error::{DegradationReason, SolverError};
use crate::history::{GapHistory, GapSample};
use crate::kernel::LossKernel;
use crate::model::QueueModel;
use crate::wdist::WorkDistribution;
use lrd_fft::Convolver;
use lrd_traffic::Interarrival;

/// Mass-conservation tolerance: drift beyond this (before the
/// per-step renormalization) is reported as
/// [`DegradationReason::MassLeak`].
pub const MASS_TOLERANCE: f64 = 1e-6;

/// Options controlling the convergence protocol. The defaults are the
/// paper's published settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Initial number of quantization bins `M` (the paper starts
    /// around 100).
    pub initial_bins: usize,
    /// Refinement ceiling: the solver gives up (returning the best
    /// available bounds, `converged = false`) rather than exceed this.
    pub max_bins: usize,
    /// Stop when `upper − lower <= rel_gap · (upper + lower)/2`
    /// (paper: 20 %).
    pub rel_gap: f64,
    /// Report zero loss when the upper bound falls below this floor
    /// (paper: 1e-10).
    pub zero_floor: f64,
    /// Hard cap on iterations at one grid level.
    pub max_iterations_per_level: usize,
    /// The bounds are declared stalled — triggering grid refinement —
    /// when the gap shrinks by less than this relative amount for
    /// [`SolverOptions::stall_window`] consecutive iterations.
    pub stall_tolerance: f64,
    /// Consecutive slow iterations before refining.
    pub stall_window: usize,
    /// Total-work budget in units of `iterations × bins` across all
    /// grid levels. One unit is roughly one convolution lattice point,
    /// so the default of `5e7` bounds a solve to a few seconds on one
    /// core. When exhausted the solver returns its best (still
    /// provable) bounds with `converged = false`.
    pub max_total_cost: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            initial_bins: 128,
            max_bins: 1 << 16,
            rel_gap: 0.2,
            zero_floor: 1e-10,
            max_iterations_per_level: 200_000,
            stall_tolerance: 1e-4,
            stall_window: 5,
            max_total_cost: 5e7,
        }
    }
}

impl SolverOptions {
    /// The convergence protocol shared by every figure sweep: the
    /// paper's settings with a lower refinement ceiling and a tighter
    /// per-point work cap. Sweeps contain many deep-loss points whose
    /// bounds converge slowly; capping per-point work keeps a full
    /// surface in the minutes range on one core, and capped points
    /// still return valid (just looser) bounds. The protocol is the
    /// same for quick and full profiles — only the lattice resolution
    /// changes with the profile, never the per-point solve.
    pub fn sweep_profile() -> SolverOptions {
        SolverOptions {
            initial_bins: 128,
            max_bins: 1 << 14,
            max_total_cost: 1e7,
            ..SolverOptions::default()
        }
    }
}

/// The solver's verdict: provable loss bounds plus diagnostics.
#[derive(Debug, Clone)]
pub struct LossSolution {
    /// Lower bound `l(Q_L^M(n))`.
    pub lower: f64,
    /// Upper bound `l(Q_H^M(n))`.
    pub upper: f64,
    /// Total iterations across all grid levels.
    pub iterations: usize,
    /// Final grid resolution `M`.
    pub bins: usize,
    /// Whether the gap criterion (or the zero floor) was met.
    pub converged: bool,
    /// Why the solution is weaker than requested, when it is: the
    /// machine-readable degradation reason, `None` for a clean solve.
    /// The bounds are valid (finite, ordered, provable for the grid
    /// reached) regardless.
    pub degradation: Option<DegradationReason>,
    /// The trailing `(iteration, lower, upper)` bound samples — the
    /// convergence endgame, capped at
    /// [`GAP_HISTORY_CAPACITY`](crate::history::GAP_HISTORY_CAPACITY)
    /// entries.
    pub gap_history: GapHistory,
    /// Every grid refinement as `(iteration, bins_after)`, in order.
    /// Empty when the initial grid sufficed.
    pub refinement_epochs: Vec<(usize, usize)>,
}

impl LossSolution {
    /// The midpoint estimate the paper reports (average of the
    /// bounds); exactly zero for below-floor solutions.
    pub fn loss(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// Whether the solution was clamped to zero by the floor rule.
    pub fn is_zero(&self) -> bool {
        self.upper == 0.0
    }

    /// Whether the solver had to degrade (budget, grid ceiling, mass
    /// leak, or numerical breakdown) to produce this answer.
    pub fn is_degraded(&self) -> bool {
        self.degradation.is_some()
    }
}

/// The pair of discretized bounding chains at a fixed grid resolution,
/// steppable one arrival at a time.
///
/// The two chains are data-independent, so [`BoundSolver::step`]
/// advances them concurrently on the [`lrd_pool::current`] pool
/// (serially, in the historical order, when the pool has one thread).
/// Each chain's floating-point work is identical for every thread
/// count, so the bounds are bit-for-bit reproducible regardless of
/// parallelism.
#[derive(Debug)]
pub struct BoundSolver<D> {
    model: QueueModel<D>,
    bins: usize,
    q_lower: Vec<f64>,
    q_upper: Vec<f64>,
    conv_lower: Convolver,
    conv_upper: Convolver,
    /// Per-chain next-distribution scratch, reused every step so the
    /// steady-state iteration performs no heap allocation.
    scratch_lower: Vec<f64>,
    scratch_upper: Vec<f64>,
    kernel: LossKernel,
    iterations: usize,
    worst_mass_drift: f64,
}

impl<D: Interarrival + Clone> BoundSolver<D> {
    /// Creates the solver at resolution `bins`, with the lower chain
    /// starting empty (`q_L = δ_0`) and the upper chain starting full
    /// (`q_H = δ_B`), per paper Eq. 17.
    ///
    /// # Panics
    ///
    /// Panics if `bins < 2`. Use [`BoundSolver::try_new`] for a
    /// fallible variant.
    pub fn new(model: QueueModel<D>, bins: usize) -> Self {
        BoundSolver::try_new(model, bins).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: returns a typed [`SolverError`] instead of
    /// panicking on a degenerate grid.
    pub fn try_new(model: QueueModel<D>, bins: usize) -> Result<Self, SolverError> {
        if bins < 2 {
            return Err(SolverError::InvalidOption {
                option: "bins",
                value: bins as f64,
                constraint: "must be at least 2 (the chains need at least two bins)",
            });
        }
        let wdist = WorkDistribution::build(&model, bins);
        let kernel = LossKernel::build(&model, bins);
        let mut q_lower = vec![0.0; bins + 1];
        q_lower[0] = 1.0;
        let mut q_upper = vec![0.0; bins + 1];
        q_upper[bins] = 1.0;
        let conv_lower = Convolver::new(wdist.lower(), bins + 1);
        let conv_upper = Convolver::new(wdist.upper(), bins + 1);
        Ok(BoundSolver {
            model,
            bins,
            q_lower,
            q_upper,
            conv_lower,
            conv_upper,
            scratch_lower: Vec::new(),
            scratch_upper: Vec::new(),
            kernel,
            iterations: 0,
            worst_mass_drift: 0.0,
        })
    }

    /// Grid resolution `M`.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Grid step `d = B/M`.
    pub fn step_size(&self) -> f64 {
        self.model.buffer() / self.bins as f64
    }

    /// Iterations performed so far (at the current resolution plus any
    /// inherited from coarser levels).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The lower-bound occupancy distribution `Pr{Q_L = j·d}`,
    /// `j = 0..=M`.
    pub fn occupancy_lower(&self) -> &[f64] {
        &self.q_lower
    }

    /// The upper-bound occupancy distribution `Pr{Q_H = j·d}`.
    pub fn occupancy_upper(&self) -> &[f64] {
        &self.q_upper
    }

    /// Current loss bounds `(l(Q_L), l(Q_H))`.
    pub fn loss_bounds(&self) -> (f64, f64) {
        (
            self.kernel.loss_rate(&self.q_lower),
            self.kernel.loss_rate(&self.q_upper),
        )
    }

    /// Advances both chains by one arrival epoch: convolve with the
    /// respective work-increment discretization, then fold the
    /// out-of-range mass onto the boundary atoms at `0` and `B`
    /// (Eq. 19–20). The two chains run concurrently on the current
    /// pool; with one thread the lower chain steps first, exactly as
    /// the historical serial path did.
    pub fn step(&mut self) {
        let bins = self.bins;
        let (q_lower, conv_lower, scratch_lower) =
            (&mut self.q_lower, &mut self.conv_lower, &mut self.scratch_lower);
        let (q_upper, conv_upper, scratch_upper) =
            (&mut self.q_upper, &mut self.conv_upper, &mut self.scratch_upper);
        let (drift_lower, drift_upper) = lrd_pool::current().join(
            || Self::step_chain(q_lower, conv_lower, bins, scratch_lower),
            || Self::step_chain(q_upper, conv_upper, bins, scratch_upper),
        );
        self.worst_mass_drift = self.worst_mass_drift.max(drift_lower).max(drift_upper);
        self.iterations += 1;
    }

    /// Worst observed `|Σq − 1|` across all steps so far, measured
    /// before the per-step renormalization. Values above
    /// [`MASS_TOLERANCE`] indicate the convolution is leaking mass and
    /// surface as [`DegradationReason::MassLeak`] in [`try_solve`].
    pub fn mass_drift(&self) -> f64 {
        self.worst_mass_drift
    }

    /// Advances one chain and returns the pre-renormalization mass
    /// deviation `|Σq − 1|` of that step. `next` is the chain's
    /// persistent scratch: the new distribution is built there and
    /// swapped into `q`, so warm steps allocate nothing.
    fn step_chain(q: &mut Vec<f64>, conv: &mut Convolver, bins: usize, next: &mut Vec<f64>) -> f64 {
        // u has length 3M+1; output index k corresponds to occupancy
        // index i = k − M in −M..=2M.
        let u = conv.conv(q);
        debug_assert_eq!(u.len(), 3 * bins + 1);
        next.clear();
        next.resize(bins + 1, 0.0);
        // i <= 0  ⇔  k <= M → atom at 0.
        next[0] = u[..=bins].iter().sum::<f64>();
        // 0 < i < M.
        for j in 1..bins {
            next[j] = u[j + bins].max(0.0);
        }
        // i >= M  ⇔  k >= 2M → atom at B.
        next[bins] = u[2 * bins..].iter().sum::<f64>();
        // FFT round-off control: clamp and renormalize (mass is
        // conserved analytically). The deviation is returned rather
        // than asserted so release builds surface it as a
        // MassLeak degradation instead of silently renormalizing.
        let mut total = 0.0;
        for v in next.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
            total += *v;
        }
        if total > 0.0 {
            for v in next.iter_mut() {
                *v /= total;
            }
        }
        std::mem::swap(q, next);
        (total - 1.0).abs()
    }

    /// Doubles the grid resolution, transplanting the current bound
    /// distributions onto the finer grid (mass at `j·d` moves to the
    /// coincident fine grid point `2j·d/2`). This is the paper's
    /// footnote-3 warm restart: the transplanted chains remain valid
    /// bounds because every coarse grid point is also a fine grid
    /// point and `φ_L^{2M} >= φ_L^{M}` pointwise (Prop. II.1, step v).
    pub fn refine(&mut self) {
        let new_bins = self.bins * 2;
        let pool = lrd_pool::current();
        // The work-increment discretization and the loss kernel are
        // independent constructions over the same model; so are the
        // two chains' transplants and convolution plans. Each branch
        // is deterministic on its own, so the refined solver is
        // identical for any thread count.
        let (wdist, kernel) = pool.join(
            || WorkDistribution::build(&self.model, new_bins),
            || LossKernel::build(&self.model, new_bins),
        );
        self.kernel = kernel;
        fn transplant(q: &[f64], new_bins: usize) -> Vec<f64> {
            let mut out = vec![0.0; new_bins + 1];
            for (j, &p) in q.iter().enumerate() {
                out[2 * j] = p;
            }
            out
        }
        let ((q_lower, conv_lower), (q_upper, conv_upper)) = pool.join(
            || {
                (
                    transplant(&self.q_lower, new_bins),
                    Convolver::new(wdist.lower(), new_bins + 1),
                )
            },
            || {
                (
                    transplant(&self.q_upper, new_bins),
                    Convolver::new(wdist.upper(), new_bins + 1),
                )
            },
        );
        self.q_lower = q_lower;
        self.q_upper = q_upper;
        self.conv_lower = conv_lower;
        self.conv_upper = conv_upper;
        self.bins = new_bins;
    }
}

/// Validates a [`SolverOptions`], returning the typed reason for the
/// first field found outside its domain.
fn validate_options(opts: &SolverOptions) -> Result<(), SolverError> {
    if opts.initial_bins < 2 {
        return Err(SolverError::InvalidOption {
            option: "initial_bins",
            value: opts.initial_bins as f64,
            constraint: "must be at least 2",
        });
    }
    if opts.max_bins < 2 {
        return Err(SolverError::InvalidOption {
            option: "max_bins",
            value: opts.max_bins as f64,
            constraint: "must be at least 2",
        });
    }
    if opts.rel_gap <= 0.0 || !opts.rel_gap.is_finite() {
        return Err(SolverError::InvalidOption {
            option: "rel_gap",
            value: opts.rel_gap,
            constraint: "must be positive",
        });
    }
    if opts.zero_floor < 0.0 || !opts.zero_floor.is_finite() {
        return Err(SolverError::InvalidOption {
            option: "zero_floor",
            value: opts.zero_floor,
            constraint: "must be non-negative and finite",
        });
    }
    if opts.max_iterations_per_level == 0 {
        return Err(SolverError::InvalidOption {
            option: "max_iterations_per_level",
            value: 0.0,
            constraint: "must be at least 1",
        });
    }
    if !(opts.stall_tolerance >= 0.0 && opts.stall_tolerance < 1.0) {
        return Err(SolverError::InvalidOption {
            option: "stall_tolerance",
            value: opts.stall_tolerance,
            constraint: "must lie in [0, 1)",
        });
    }
    if opts.stall_window == 0 {
        return Err(SolverError::InvalidOption {
            option: "stall_window",
            value: 0.0,
            constraint: "must be at least 1",
        });
    }
    if opts.max_total_cost <= 0.0 || opts.max_total_cost.is_nan() {
        return Err(SolverError::InvalidOption {
            option: "max_total_cost",
            value: opts.max_total_cost,
            constraint: "must be positive",
        });
    }
    Ok(())
}

/// Runs the full convergence protocol and returns the loss bounds.
///
/// # Panics
///
/// Panics on options [`try_solve`] rejects; degraded-but-valid
/// outcomes (budget or grid exhaustion, mass leak, numerical
/// breakdown) never panic in either variant.
pub fn solve<D: Interarrival + Clone>(model: &QueueModel<D>, opts: &SolverOptions) -> LossSolution {
    try_solve(model, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`solve`].
///
/// `Err` is returned **only** for a malformed [`SolverOptions`] — a
/// question the solver cannot even start on. Every outcome of the
/// iteration itself, including running out of budget or grid
/// resolution, yields `Ok` with the best provable bounds reached and a
/// [`DegradationReason`] explaining what was given up; such solutions
/// always satisfy `0 <= lower <= upper < ∞`.
pub fn try_solve<D: Interarrival + Clone>(
    model: &QueueModel<D>,
    opts: &SolverOptions,
) -> Result<LossSolution, SolverError> {
    validate_options(opts)?;
    let mut solve_span = lrd_obs::span!(
        "solver.solve",
        initial_bins = opts.initial_bins.min(opts.max_bins),
        max_bins = opts.max_bins,
        rel_gap = opts.rel_gap,
    );
    let mut solver = BoundSolver::try_new(model.clone(), opts.initial_bins.min(opts.max_bins))?;
    let mut total_iterations = 0usize;
    let mut total_cost = 0.0f64;
    let mut gap_history = GapHistory::new();
    let mut refinement_epochs: Vec<(usize, usize)> = Vec::new();

    loop {
        let mut prev_gap = f64::INFINITY;
        let mut slow_iters = 0usize;
        let mut level_span = lrd_obs::span!("solver.level", bins = solver.bins());
        let level_start = total_iterations;

        let mut out_of_budget = false;
        let mut last_finite = solver.loss_bounds();
        let mut breakdown = false;
        for _ in 0..opts.max_iterations_per_level {
            solver.step();
            total_iterations += 1;
            total_cost += solver.bins() as f64;
            lrd_obs::counter("solver.iterations", 1);
            let (lower, upper) = solver.loss_bounds();
            lrd_obs::event!(
                "solver.gap",
                iteration = total_iterations,
                lower = lower,
                upper = upper,
                bins = solver.bins(),
            );

            if !(lower.is_finite() && upper.is_finite()) {
                // Numerical breakdown: stop immediately and fall back
                // to the last bounds that were still finite.
                breakdown = true;
                break;
            }
            last_finite = (lower, upper);
            gap_history.push(GapSample {
                iteration: total_iterations,
                lower,
                upper,
            });

            if upper < opts.zero_floor {
                // The paper's floor rule: below practical importance.
                level_span.record("iterations", total_iterations - level_start);
                return Ok(seal(
                    LossSolution {
                        lower: 0.0,
                        upper: 0.0,
                        iterations: total_iterations,
                        bins: solver.bins(),
                        converged: true,
                        degradation: None,
                        gap_history,
                        refinement_epochs,
                    },
                    solver.mass_drift(),
                    &mut solve_span,
                ));
            }
            let gap = upper - lower;
            let mid = 0.5 * (upper + lower);
            if gap <= opts.rel_gap * mid {
                level_span.record("iterations", total_iterations - level_start);
                return Ok(seal(
                    LossSolution {
                        lower,
                        upper,
                        iterations: total_iterations,
                        bins: solver.bins(),
                        converged: true,
                        degradation: None,
                        gap_history,
                        refinement_epochs,
                    },
                    solver.mass_drift(),
                    &mut solve_span,
                ));
            }
            // Stall detection: the gap is monotone non-increasing; if
            // it stops shrinking the remaining gap is discretization
            // error and only refinement can help.
            if gap > prev_gap * (1.0 - opts.stall_tolerance) {
                slow_iters += 1;
                if slow_iters >= opts.stall_window {
                    break;
                }
            } else {
                slow_iters = 0;
            }
            prev_gap = gap;
            if total_cost > opts.max_total_cost {
                out_of_budget = true;
                break;
            }
        }
        level_span.record("iterations", total_iterations - level_start);
        drop(level_span);

        if breakdown {
            // Loss rates live in [0, 1], so (0, 1) is always a valid
            // (if vacuous) bound pair should even the initial bounds
            // have been non-finite.
            let (lower, upper) = if last_finite.0.is_finite() && last_finite.1.is_finite() {
                last_finite
            } else {
                (0.0, 1.0)
            };
            return Ok(seal(
                LossSolution {
                    lower,
                    upper,
                    iterations: total_iterations,
                    bins: solver.bins(),
                    converged: false,
                    degradation: Some(DegradationReason::NumericalBreakdown),
                    gap_history,
                    refinement_epochs,
                },
                solver.mass_drift(),
                &mut solve_span,
            ));
        }
        if out_of_budget || solver.bins() * 2 > opts.max_bins {
            let (lower, upper) = solver.loss_bounds();
            let reason = if out_of_budget {
                DegradationReason::BudgetExhausted {
                    spent: total_cost,
                    budget: opts.max_total_cost,
                }
            } else {
                DegradationReason::GridCeiling {
                    max_bins: opts.max_bins,
                }
            };
            return Ok(seal(
                LossSolution {
                    lower,
                    upper,
                    iterations: total_iterations,
                    bins: solver.bins(),
                    converged: false,
                    degradation: Some(reason),
                    gap_history,
                    refinement_epochs,
                },
                solver.mass_drift(),
                &mut solve_span,
            ));
        }
        let old_bins = solver.bins();
        solver.refine();
        refinement_epochs.push((total_iterations, solver.bins()));
        lrd_obs::event!(
            "solver.refine",
            iteration = total_iterations,
            old_bins = old_bins,
            new_bins = solver.bins(),
        );
        lrd_obs::counter("solver.refines", 1);
    }
}

/// Closes out a solution: attaches the mass-conservation diagnostic
/// (unless a more fundamental reason is already recorded), publishes
/// the mass-drift gauge and any degradation event, and stamps the
/// `solver.solve` span with the final verdict.
fn seal(mut sol: LossSolution, drift: f64, span: &mut lrd_obs::Span) -> LossSolution {
    if sol.degradation.is_none() && drift > MASS_TOLERANCE {
        sol.degradation = Some(DegradationReason::MassLeak { deficit: drift });
    }
    lrd_obs::gauge("solver.mass_drift", drift);
    if let Some(reason) = &sol.degradation {
        reason.emit();
    }
    span.record("iterations", sol.iterations);
    span.record("bins", sol.bins);
    span.record("converged", sol.converged);
    span.record("loss", sol.loss());
    sol
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_traffic::{Exponential, Marginal, TruncatedPareto};

    fn two_rate_model(cutoff: f64, buffer: f64) -> QueueModel<TruncatedPareto> {
        QueueModel::new(
            Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
            TruncatedPareto::new(0.05, 1.4, cutoff),
            10.0,
            buffer,
        )
    }

    #[test]
    fn bounds_order_and_monotonicity() {
        // Prop. II.1: l(Q_L) increasing in n, l(Q_H) decreasing in n,
        // and l(Q_L) <= l(Q_H) throughout.
        let mut s = BoundSolver::new(two_rate_model(1.0, 2.0), 100);
        let mut prev_l = 0.0;
        let mut prev_h = f64::INFINITY;
        for n in 0..200 {
            s.step();
            let (l, h) = s.loss_bounds();
            assert!(l <= h + 1e-12, "order violated at n={n}: {l} > {h}");
            assert!(l >= prev_l - 1e-9, "lower bound decreased at n={n}");
            assert!(h <= prev_h + 1e-9, "upper bound increased at n={n}");
            prev_l = l;
            prev_h = h;
        }
    }

    #[test]
    fn refinement_tightens_bounds() {
        // Prop. II.1 step (v): for the stationary chains, doubling M
        // raises l(Q_L) and lowers l(Q_H). Run each grid to (near)
        // stationarity before comparing.
        let model = two_rate_model(1.0, 2.0);
        let run = |bins: usize| {
            let mut s = BoundSolver::new(model.clone(), bins);
            for _ in 0..3000 {
                s.step();
            }
            s.loss_bounds()
        };
        let (l_coarse, h_coarse) = run(50);
        let (l_fine, h_fine) = run(200);
        assert!(l_fine >= l_coarse - 1e-9, "{l_fine} < {l_coarse}");
        assert!(h_fine <= h_coarse + 1e-9, "{h_fine} > {h_coarse}");
        assert!(h_fine - l_fine < h_coarse - l_coarse);
    }

    #[test]
    fn occupancy_distributions_are_probabilities() {
        let mut s = BoundSolver::new(two_rate_model(1.0, 2.0), 64);
        for _ in 0..50 {
            s.step();
        }
        for q in [s.occupancy_lower(), s.occupancy_upper()] {
            let total: f64 = q.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(q.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn solve_converges_on_lossy_system() {
        let sol = solve(&two_rate_model(1.0, 2.0), &SolverOptions::default());
        assert!(sol.converged, "solver did not converge: {sol:?}");
        assert!(sol.lower > 0.0);
        assert!(sol.upper >= sol.lower);
        assert!(sol.upper - sol.lower <= 0.2 * sol.loss() + 1e-12);
        // Sanity: utilization 0.8 with bursty input and a small buffer
        // loses a visible fraction.
        assert!(sol.loss() > 1e-5 && sol.loss() < 0.5, "loss {}", sol.loss());
    }

    #[test]
    fn solve_reports_zero_for_underload() {
        // All rates below the service rate: nothing is ever lost.
        let model = QueueModel::new(
            Marginal::new(&[2.0, 6.0], &[0.5, 0.5]),
            TruncatedPareto::new(0.05, 1.4, 1.0),
            10.0,
            1.0,
        );
        let sol = solve(&model, &SolverOptions::default());
        assert!(sol.converged);
        assert!(sol.is_zero());
        assert_eq!(sol.loss(), 0.0);
    }

    #[test]
    fn loss_decreases_with_buffer() {
        let opts = SolverOptions::default();
        let mut prev = f64::INFINITY;
        for &b in &[0.5, 1.0, 2.0, 4.0] {
            let sol = solve(&two_rate_model(0.5, b), &opts);
            assert!(sol.converged);
            assert!(
                sol.loss() < prev,
                "loss did not decrease at B={b}: {} vs {prev}",
                sol.loss()
            );
            prev = sol.loss();
        }
    }

    #[test]
    fn loss_increases_with_cutoff() {
        // Longer correlation ⇒ longer overload bursts ⇒ more loss.
        let opts = SolverOptions::default();
        let mut prev = 0.0;
        for &tc in &[0.1, 0.5, 2.0, 8.0] {
            let sol = solve(&two_rate_model(tc, 2.0), &opts);
            assert!(sol.converged);
            assert!(
                sol.loss() >= prev - 1e-9,
                "loss decreased at T_c={tc}: {} vs {prev}",
                sol.loss()
            );
            prev = sol.loss();
        }
    }

    #[test]
    fn exponential_intervals_solve() {
        let model = QueueModel::new(
            Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
            Exponential::new(0.08),
            10.0,
            2.0,
        );
        let sol = solve(&model, &SolverOptions::default());
        assert!(sol.converged);
        assert!(sol.loss() > 0.0 && sol.loss() < 1.0);
    }

    #[test]
    fn loss_bounded_by_overload_fraction() {
        // The loss rate can never exceed the mean overload fraction
        // E[(λ−c)⁺]/λ̄ (work can only be lost while the input exceeds
        // the service rate).
        let model = two_rate_model(4.0, 0.5);
        let sol = solve(&model, &SolverOptions::default());
        let cap = 0.5 * (14.0 - 10.0) / 8.0;
        assert!(sol.upper <= cap + 1e-9, "upper {} vs cap {cap}", sol.upper);
    }

    #[test]
    fn cost_budget_cuts_off_gracefully() {
        // An absurdly small budget must still return valid (ordered)
        // bounds, flagged as not converged.
        let opts = SolverOptions {
            max_total_cost: 300.0,
            rel_gap: 1e-9, // unreachable, forces the budget path
            ..SolverOptions::default()
        };
        let sol = solve(&two_rate_model(1.0, 2.0), &opts);
        assert!(!sol.converged);
        assert!(sol.lower <= sol.upper);
        assert!(
            sol.iterations <= 4,
            "budget ignored: {} iterations",
            sol.iterations
        );
    }
}
