//! The bounding iteration (paper Eq. 16–24 and Proposition II.1).
//!
//! [`BoundSolver`] holds the two discretized occupancy chains and
//! exposes single-step iteration (used to reproduce Fig. 2);
//! [`solve`] wraps it in the paper's full convergence protocol:
//! iterate until the loss-bound gap is below 20 % of the midpoint,
//! report zero when the upper bound drops below `1e-10`, and when the
//! bounds stall at a discretization-limited gap, double `M` and
//! warm-restart from the re-binned coarse solution (footnote 3).
//!
//! [`solve_warm`] extends footnote 3 *across lattice points*: a
//! converged solve exports a [`WarmState`] (the re-binnable bound
//! distributions plus the final bracket), and a neighbouring point can
//! consult it to certify zero loss in a handful of iterations instead
//! of running the cold protocol. The warm path is sound by
//! construction (a runtime stochastic-dominance check makes every
//! probe iterate a provable upper bound) and never changes solved
//! values: it only ever returns the exact same `(0.0, 0.0)` constant
//! the cold floor rule produces, and on any doubt it falls back to a
//! from-scratch cold solve.

use crate::error::{DegradationReason, SolverError};
use crate::history::GapHistory;
use crate::kernel::LossKernel;
use crate::model::QueueModel;
use crate::wdist::WorkDistribution;
use lrd_fft::Convolver;
use lrd_traffic::Interarrival;

/// Mass-conservation tolerance: drift beyond this (before the
/// per-step renormalization) is reported as
/// [`DegradationReason::MassLeak`].
pub const MASS_TOLERANCE: f64 = 1e-6;

/// Iteration cap on the warm zero-certification probe, across all its
/// grid levels. The probe drains the donor's re-binned tail mass at
/// the chain's physical mixing rate (typically 0.85–0.95 per step),
/// so dropping the two-to-three decades from the re-binning transient
/// to the zero floor takes some tens of steps, plus a level change or
/// two. Deliberately a constant rather than a [`SolverOptions`]
/// field: the probe never changes solved values (it either certifies
/// the cold protocol's exact zero constant or is discarded), so it
/// does not belong in the options that parameterize the answer — and
/// keeping it out of `SolverOptions` keeps every sweep plan hash, and
/// with it every existing checkpoint, stable.
const PROBE_ITERATIONS: usize = 192;

/// The probe refines to the next grid level when this many
/// consecutive dominated steps each shrank the upper bound by less
/// than [`PROBE_PLATEAU_RATIO`]: the remaining loss is discretization
/// error of the current grid, which iteration cannot remove.
const PROBE_PLATEAU_STEPS: usize = 3;

/// Per-step shrink ratio above which a probe step counts as slow (see
/// [`PROBE_PLATEAU_STEPS`]). Productive drain runs well below this;
/// a grid-limited orbit trends toward 1.
const PROBE_PLATEAU_RATIO: f64 = 0.97;

/// Round-off allowance for the probe's stochastic-dominance check:
/// the per-step clamp/renormalize perturbs the CDF by at most a few
/// ulps of accumulated mass, far below any real dominance violation.
const DOMINANCE_TOLERANCE: f64 = 1e-12;

/// The resumable session API ([`SolveSession`] and friends) — the
/// single implementation every entry point above drives. A child
/// module so the probe machinery can reach the solver internals.
#[path = "session.rs"]
pub mod session;

pub use session::{
    session_run_chunk, set_session_run_chunk, SessionBuilder, SessionPhase, SolveSession,
    DEFAULT_RUN_CHUNK,
};

/// Options controlling the convergence protocol. The defaults are the
/// paper's published settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Initial number of quantization bins `M` (the paper starts
    /// around 100).
    pub initial_bins: usize,
    /// Refinement ceiling: the solver gives up (returning the best
    /// available bounds, `converged = false`) rather than exceed this.
    pub max_bins: usize,
    /// Stop when `upper − lower <= rel_gap · (upper + lower)/2`
    /// (paper: 20 %).
    pub rel_gap: f64,
    /// Report zero loss when the upper bound falls below this floor
    /// (paper: 1e-10).
    pub zero_floor: f64,
    /// Hard cap on iterations at one grid level.
    pub max_iterations_per_level: usize,
    /// The bounds are declared stalled — triggering grid refinement —
    /// when the gap shrinks by less than this relative amount for
    /// [`SolverOptions::stall_window`] consecutive iterations.
    pub stall_tolerance: f64,
    /// Consecutive slow iterations before refining.
    pub stall_window: usize,
    /// Total-work budget in units of `iterations × bins` across all
    /// grid levels. One unit is roughly one convolution lattice point,
    /// so the default of `5e7` bounds a solve to a few seconds on one
    /// core. When exhausted the solver returns its best (still
    /// provable) bounds with `converged = false`.
    pub max_total_cost: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            initial_bins: 128,
            max_bins: 1 << 16,
            rel_gap: 0.2,
            zero_floor: 1e-10,
            max_iterations_per_level: 200_000,
            stall_tolerance: 1e-4,
            stall_window: 5,
            max_total_cost: 5e7,
        }
    }
}

impl SolverOptions {
    /// The convergence protocol shared by every figure sweep: the
    /// paper's settings with a lower refinement ceiling and a tighter
    /// per-point work cap. Sweeps contain many deep-loss points whose
    /// bounds converge slowly; capping per-point work keeps a full
    /// surface in the minutes range on one core, and capped points
    /// still return valid (just looser) bounds. The protocol is the
    /// same for quick and full profiles — only the lattice resolution
    /// changes with the profile, never the per-point solve.
    pub fn sweep_profile() -> SolverOptions {
        SolverOptions {
            initial_bins: 128,
            max_bins: 1 << 14,
            max_total_cost: 1e7,
            ..SolverOptions::default()
        }
    }
}

/// The solver's verdict: provable loss bounds plus diagnostics.
#[derive(Debug, Clone)]
pub struct LossSolution {
    /// Lower bound `l(Q_L^M(n))`.
    pub lower: f64,
    /// Upper bound `l(Q_H^M(n))`.
    pub upper: f64,
    /// Total iterations across all grid levels.
    pub iterations: usize,
    /// Final grid resolution `M`.
    pub bins: usize,
    /// Whether the gap criterion (or the zero floor) was met.
    pub converged: bool,
    /// Why the solution is weaker than requested, when it is: the
    /// machine-readable degradation reason, `None` for a clean solve.
    /// The bounds are valid (finite, ordered, provable for the grid
    /// reached) regardless.
    pub degradation: Option<DegradationReason>,
    /// The trailing `(iteration, lower, upper)` bound samples — the
    /// convergence endgame, capped at
    /// [`GAP_HISTORY_CAPACITY`](crate::history::GAP_HISTORY_CAPACITY)
    /// entries.
    pub gap_history: GapHistory,
    /// Every grid refinement as `(iteration, bins_after)`, in order.
    /// Empty when the initial grid sufficed.
    pub refinement_epochs: Vec<(usize, usize)>,
}

impl LossSolution {
    /// The midpoint estimate the paper reports (average of the
    /// bounds); exactly zero for below-floor solutions.
    pub fn loss(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// Whether the solution was clamped to zero by the floor rule.
    pub fn is_zero(&self) -> bool {
        self.upper == 0.0
    }

    /// Whether the solver had to degrade (budget, grid ceiling, mass
    /// leak, or numerical breakdown) to produce this answer.
    pub fn is_degraded(&self) -> bool {
        self.degradation.is_some()
    }
}

/// A converged point's exportable state: the re-binnable occupancy
/// distributions of both bounding chains plus the final loss-bound
/// bracket. Produced by every [`solve_warm`] / [`try_solve_warm`]
/// call and consumable as the donor seed for a neighbouring lattice
/// point's solve.
///
/// The state is tied to the buffer size it was solved under (the grid
/// covers `[0, B]`); [`WarmState::rebin_upper`] transplants the
/// upper-chain distribution onto any other `(buffer, bins)` grid
/// conservatively, i.e. the re-binned distribution stochastically
/// dominates the original.
#[derive(Debug, Clone)]
pub struct WarmState {
    /// Buffer size `B` the distributions were solved under.
    buffer: f64,
    /// Grid resolution `M` of the exporting solve.
    bins: usize,
    /// Final upper-chain occupancy `Pr{Q_H = j·d}`, `j = 0..=M`.
    upper: Vec<f64>,
    /// Final lower-chain occupancy `Pr{Q_L = j·d}`.
    lower: Vec<f64>,
    /// Final loss-bound bracket `(lower, upper)`.
    bracket: (f64, f64),
    /// Whether the exporting solve certified zero loss (the floor
    /// rule). Only zero states are usable as probe donors.
    zero: bool,
}

impl WarmState {
    /// Whether the exporting solve certified zero loss.
    pub fn is_zero(&self) -> bool {
        self.zero
    }

    /// The exporting solve's final loss-bound bracket.
    pub fn bracket(&self) -> (f64, f64) {
        self.bracket
    }

    /// Grid resolution of the exporting solve.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// The exported occupancy distribution of one bounding chain on
    /// the donor grid (`upper = true` for `Q_H`).
    pub fn occupancy(&self, upper: bool) -> &[f64] {
        if upper {
            &self.upper
        } else {
            &self.lower
        }
    }

    /// Conservatively re-bins the upper-chain occupancy onto a grid of
    /// `bins` bins over `[0, buffer]`: every donor atom moves to the
    /// smallest target grid point at or above its position, with
    /// out-of-range mass folded onto the top atom (a smaller buffer
    /// cannot hold more). Rounding *up* means the result
    /// stochastically dominates the donor distribution whenever
    /// `buffer` covers the donor's range; either way the re-binned
    /// seed is only a heuristic — the warm probe's runtime
    /// super-invariance check is what carries the soundness proof.
    pub fn rebin_upper(&self, buffer: f64, bins: usize) -> Vec<f64> {
        let d_new = buffer / bins as f64;
        let d_old = self.buffer / self.bins as f64;
        let mut out = vec![0.0; bins + 1];
        for (j, &p) in self.upper.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let x = j as f64 * d_old;
            let idx = ((x / d_new).ceil().max(0.0) as usize).min(bins);
            out[idx] += p;
        }
        out
    }
}

/// The pair of discretized bounding chains at a fixed grid resolution,
/// steppable one arrival at a time.
///
/// The two chains are data-independent, so [`BoundSolver::step`]
/// advances them concurrently on the [`lrd_pool::current`] pool
/// (serially, in the historical order, when the pool has one thread).
/// Each chain's floating-point work is identical for every thread
/// count, so the bounds are bit-for-bit reproducible regardless of
/// parallelism.
#[derive(Debug)]
pub struct BoundSolver<D> {
    model: QueueModel<D>,
    bins: usize,
    q_lower: Vec<f64>,
    q_upper: Vec<f64>,
    conv_lower: Convolver,
    conv_upper: Convolver,
    /// Per-chain next-distribution scratch, reused every step so the
    /// steady-state iteration performs no heap allocation.
    scratch_lower: Vec<f64>,
    scratch_upper: Vec<f64>,
    kernel: LossKernel,
    iterations: usize,
    worst_mass_drift: f64,
}

impl<D: Interarrival + Clone> BoundSolver<D> {
    /// Creates the solver at resolution `bins`, with the lower chain
    /// starting empty (`q_L = δ_0`) and the upper chain starting full
    /// (`q_H = δ_B`), per paper Eq. 17.
    ///
    /// # Panics
    ///
    /// Panics if `bins < 2`. Use [`BoundSolver::try_new`] for a
    /// fallible variant.
    pub fn new(model: QueueModel<D>, bins: usize) -> Self {
        BoundSolver::try_new(model, bins).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: returns a typed [`SolverError`] instead of
    /// panicking on a degenerate grid.
    pub fn try_new(model: QueueModel<D>, bins: usize) -> Result<Self, SolverError> {
        if bins < 2 {
            return Err(SolverError::InvalidOption {
                option: "bins",
                value: bins as f64,
                constraint: "must be at least 2 (the chains need at least two bins)",
            });
        }
        let wdist = WorkDistribution::build(&model, bins);
        let kernel = LossKernel::build(&model, bins);
        let mut q_lower = vec![0.0; bins + 1];
        q_lower[0] = 1.0;
        let mut q_upper = vec![0.0; bins + 1];
        q_upper[bins] = 1.0;
        let conv_lower = Convolver::new(wdist.lower(), bins + 1);
        let conv_upper = Convolver::new(wdist.upper(), bins + 1);
        Ok(BoundSolver {
            model,
            bins,
            q_lower,
            q_upper,
            conv_lower,
            conv_upper,
            scratch_lower: Vec::new(),
            scratch_upper: Vec::new(),
            kernel,
            iterations: 0,
            worst_mass_drift: 0.0,
        })
    }

    /// Grid resolution `M`.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Grid step `d = B/M`.
    pub fn step_size(&self) -> f64 {
        self.model.buffer() / self.bins as f64
    }

    /// Iterations performed so far (at the current resolution plus any
    /// inherited from coarser levels).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The lower-bound occupancy distribution `Pr{Q_L = j·d}`,
    /// `j = 0..=M`.
    pub fn occupancy_lower(&self) -> &[f64] {
        &self.q_lower
    }

    /// The upper-bound occupancy distribution `Pr{Q_H = j·d}`.
    pub fn occupancy_upper(&self) -> &[f64] {
        &self.q_upper
    }

    /// Current loss bounds `(l(Q_L), l(Q_H))`.
    pub fn loss_bounds(&self) -> (f64, f64) {
        (
            self.kernel.loss_rate(&self.q_lower),
            self.kernel.loss_rate(&self.q_upper),
        )
    }

    /// Advances both chains by one arrival epoch: convolve with the
    /// respective work-increment discretization, then fold the
    /// out-of-range mass onto the boundary atoms at `0` and `B`
    /// (Eq. 19–20). Both chains' convolutions — same signal and kernel
    /// lengths every iteration — run through one batched transform
    /// ([`Convolver::conv_pair`]), so the per-step cost is a single
    /// full-length FFT pass instead of two independent half-size
    /// pipelines. The path depends only on the grid size, never on
    /// thread count, so results stay bit-identical across pools.
    pub fn step(&mut self) {
        let bins = self.bins;
        let (u_lower, u_upper) = Convolver::conv_pair(
            &mut self.conv_lower,
            &mut self.conv_upper,
            &self.q_lower,
            &self.q_upper,
        );
        let drift_lower = Self::fold_chain(&mut self.q_lower, u_lower, bins, &mut self.scratch_lower);
        let drift_upper = Self::fold_chain(&mut self.q_upper, u_upper, bins, &mut self.scratch_upper);
        self.worst_mass_drift = self.worst_mass_drift.max(drift_lower).max(drift_upper);
        self.iterations += 1;
    }

    /// Advances only the upper chain — the warm probe's working chain —
    /// returning that step's pre-renormalization mass deviation.
    fn step_upper(&mut self) -> f64 {
        let drift = Self::step_chain(
            &mut self.q_upper,
            &mut self.conv_upper,
            self.bins,
            &mut self.scratch_upper,
        );
        self.worst_mass_drift = self.worst_mass_drift.max(drift);
        self.iterations += 1;
        drift
    }

    /// Worst observed `|Σq − 1|` across all steps so far, measured
    /// before the per-step renormalization. Values above
    /// [`MASS_TOLERANCE`] indicate the convolution is leaking mass and
    /// surface as [`DegradationReason::MassLeak`] in [`try_solve`].
    pub fn mass_drift(&self) -> f64 {
        self.worst_mass_drift
    }

    /// Advances one chain and returns the pre-renormalization mass
    /// deviation `|Σq − 1|` of that step. `next` is the chain's
    /// persistent scratch: the new distribution is built there and
    /// swapped into `q`, so warm steps allocate nothing.
    fn step_chain(q: &mut Vec<f64>, conv: &mut Convolver, bins: usize, next: &mut Vec<f64>) -> f64 {
        let u = conv.conv(q);
        Self::fold_chain(q, u, bins, next)
    }

    /// Folds one chain's convolution output back onto the `[0, B]`
    /// grid (the boundary-atom step of Eq. 19–20), renormalizes, and
    /// swaps the result into `q`. `u` has length `3M+1`; output index
    /// `k` corresponds to occupancy index `i = k − M` in `−M..=2M`.
    fn fold_chain(q: &mut Vec<f64>, u: &[f64], bins: usize, next: &mut Vec<f64>) -> f64 {
        debug_assert_eq!(u.len(), 3 * bins + 1);
        next.clear();
        next.resize(bins + 1, 0.0);
        // i <= 0  ⇔  k <= M → atom at 0.
        next[0] = u[..=bins].iter().sum::<f64>();
        // 0 < i < M.
        for j in 1..bins {
            next[j] = u[j + bins].max(0.0);
        }
        // i >= M  ⇔  k >= 2M → atom at B.
        next[bins] = u[2 * bins..].iter().sum::<f64>();
        // FFT round-off control: clamp and renormalize (mass is
        // conserved analytically). The deviation is returned rather
        // than asserted so release builds surface it as a
        // MassLeak degradation instead of silently renormalizing.
        let mut total = 0.0;
        for v in next.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
            total += *v;
        }
        if total > 0.0 {
            for v in next.iter_mut() {
                *v /= total;
            }
        }
        std::mem::swap(q, next);
        (total - 1.0).abs()
    }

    /// Doubles the grid resolution, transplanting the current bound
    /// distributions onto the finer grid (mass at `j·d` moves to the
    /// coincident fine grid point `2j·d/2`). This is the paper's
    /// footnote-3 warm restart: the transplanted chains remain valid
    /// bounds because every coarse grid point is also a fine grid
    /// point and `φ_L^{2M} >= φ_L^{M}` pointwise (Prop. II.1, step v).
    pub fn refine(&mut self) {
        let new_bins = self.bins * 2;
        let pool = lrd_pool::current();
        // The work-increment discretization and the loss kernel are
        // independent constructions over the same model; so are the
        // two chains' transplants and convolution plans. Each branch
        // is deterministic on its own, so the refined solver is
        // identical for any thread count.
        let (wdist, kernel) = pool.join(
            || WorkDistribution::build(&self.model, new_bins),
            || LossKernel::build(&self.model, new_bins),
        );
        self.kernel = kernel;
        fn transplant(q: &[f64], new_bins: usize) -> Vec<f64> {
            let mut out = vec![0.0; new_bins + 1];
            for (j, &p) in q.iter().enumerate() {
                out[2 * j] = p;
            }
            out
        }
        let ((q_lower, conv_lower), (q_upper, conv_upper)) = pool.join(
            || {
                (
                    transplant(&self.q_lower, new_bins),
                    Convolver::new(wdist.lower(), new_bins + 1),
                )
            },
            || {
                (
                    transplant(&self.q_upper, new_bins),
                    Convolver::new(wdist.upper(), new_bins + 1),
                )
            },
        );
        self.q_lower = q_lower;
        self.q_upper = q_upper;
        self.conv_lower = conv_lower;
        self.conv_upper = conv_upper;
        self.bins = new_bins;
    }
}

/// Validates a [`SolverOptions`], returning the typed reason for the
/// first field found outside its domain.
fn validate_options(opts: &SolverOptions) -> Result<(), SolverError> {
    if opts.initial_bins < 2 {
        return Err(SolverError::InvalidOption {
            option: "initial_bins",
            value: opts.initial_bins as f64,
            constraint: "must be at least 2",
        });
    }
    if opts.max_bins < 2 {
        return Err(SolverError::InvalidOption {
            option: "max_bins",
            value: opts.max_bins as f64,
            constraint: "must be at least 2",
        });
    }
    if opts.rel_gap <= 0.0 || !opts.rel_gap.is_finite() {
        return Err(SolverError::InvalidOption {
            option: "rel_gap",
            value: opts.rel_gap,
            constraint: "must be positive",
        });
    }
    if opts.zero_floor < 0.0 || !opts.zero_floor.is_finite() {
        return Err(SolverError::InvalidOption {
            option: "zero_floor",
            value: opts.zero_floor,
            constraint: "must be non-negative and finite",
        });
    }
    if opts.max_iterations_per_level == 0 {
        return Err(SolverError::InvalidOption {
            option: "max_iterations_per_level",
            value: 0.0,
            constraint: "must be at least 1",
        });
    }
    if !(opts.stall_tolerance >= 0.0 && opts.stall_tolerance < 1.0) {
        return Err(SolverError::InvalidOption {
            option: "stall_tolerance",
            value: opts.stall_tolerance,
            constraint: "must lie in [0, 1)",
        });
    }
    if opts.stall_window == 0 {
        return Err(SolverError::InvalidOption {
            option: "stall_window",
            value: 0.0,
            constraint: "must be at least 1",
        });
    }
    if opts.max_total_cost <= 0.0 || opts.max_total_cost.is_nan() {
        return Err(SolverError::InvalidOption {
            option: "max_total_cost",
            value: opts.max_total_cost,
            constraint: "must be positive",
        });
    }
    Ok(())
}

/// The cold protocol's starting resolution: `initial_bins` clamped to
/// the refinement ceiling.
fn cold_solver_bins(opts: &SolverOptions) -> usize {
    opts.initial_bins.min(opts.max_bins)
}

/// Runs the full convergence protocol and returns the loss bounds.
///
/// # Panics
///
/// Panics on options [`try_solve`] rejects; degraded-but-valid
/// outcomes (budget or grid exhaustion, mass leak, numerical
/// breakdown) never panic in either variant.
#[deprecated(note = "use `SolveSession::builder(model).options(opts).solve()`")]
pub fn solve<D: Interarrival + Clone>(model: &QueueModel<D>, opts: &SolverOptions) -> LossSolution {
    SolveSession::builder(model).options(opts).solve()
}

/// Fallible variant of [`solve`].
///
/// `Err` is returned **only** for a malformed [`SolverOptions`] — a
/// question the solver cannot even start on. Every outcome of the
/// iteration itself, including running out of budget or grid
/// resolution, yields `Ok` with the best provable bounds reached and a
/// [`DegradationReason`] explaining what was given up; such solutions
/// always satisfy `0 <= lower <= upper < ∞`.
#[deprecated(note = "use `SolveSession::builder(model).options(opts).run()`")]
pub fn try_solve<D: Interarrival + Clone>(
    model: &QueueModel<D>,
    opts: &SolverOptions,
) -> Result<LossSolution, SolverError> {
    Ok(SolveSession::builder(model).options(opts).run()?.0)
}

/// [`solve`] with an optional lattice-neighbour warm start, also
/// returning this point's own exportable [`WarmState`].
///
/// # Panics
///
/// Panics on options [`try_solve_warm`] rejects.
#[deprecated(note = "use `SolveSession::builder(model).options(opts).donor(donor).solve_warm()`")]
pub fn solve_warm<D: Interarrival + Clone>(
    model: &QueueModel<D>,
    opts: &SolverOptions,
    donor: Option<&WarmState>,
) -> (LossSolution, WarmState) {
    SolveSession::builder(model).options(opts).donor(donor).solve_warm()
}

/// Runs the full convergence protocol, optionally seeded by a
/// neighbouring point's [`WarmState`], and returns the verdict plus
/// this point's own exportable warm state.
///
/// # Donor precondition
///
/// Passing `Some(donor)` asserts the donor was solved on a model
/// **identical to `model` except possibly the buffer size**. Sweep
/// closures whose lattice axes change anything else (Hurst, scaling,
/// stream count, …) must pass `None` for donors across those axes.
///
/// # How the warm path certifies
///
/// The warm path never changes solved values: it only ever produces
/// the exact `(0.0, 0.0)` constant the cold floor rule returns, and
/// on any doubt it runs the cold protocol on a fresh solver,
/// bit-identical to a never-warmed solve. A donor is consulted only
/// when it certified **zero** loss, via one of two mechanisms:
///
/// * **Monotone certificate** (donor buffer ≤ this buffer): losing
///   work is pathwise monotone in the buffer — for the same input, a
///   larger buffer never loses more — so the donor's certified
///   below-floor upper bound transfers directly:
///   `true_loss(B) <= true_loss(B_donor) < zero_floor`. Zero
///   iterations; the donor state is passed through for further
///   chaining.
/// * **Dominance probe** (donor buffer > this buffer): the donor's
///   upper-chain occupancy is re-binned conservatively onto this
///   point's grid and iterated for at most `PROBE_ITERATIONS` steps,
///   looking for a step that is both *stochastically dominated by its
///   predecessor* and below the zero floor (see the [`session`]'s
///   soundness argument; the check is self-validating, so a bad seed
///   can waste the probe but never corrupt the verdict).
#[deprecated(note = "use `SolveSession::builder(model).options(opts).donor(donor).run()`")]
pub fn try_solve_warm<D: Interarrival + Clone>(
    model: &QueueModel<D>,
    opts: &SolverOptions,
    donor: Option<&WarmState>,
) -> Result<(LossSolution, WarmState), SolverError> {
    SolveSession::builder(model).options(opts).donor(donor).run()
}

/// Whether `smaller ⪯_st larger`: the CDF of `smaller` lies pointwise
/// at or above the CDF of `larger`, within round-off allowance.
fn stochastically_dominated(smaller: &[f64], larger: &[f64]) -> bool {
    debug_assert_eq!(smaller.len(), larger.len());
    let mut cdf_s = 0.0f64;
    let mut cdf_l = 0.0f64;
    smaller.iter().zip(larger).all(|(&s, &l)| {
        cdf_s += s;
        cdf_l += l;
        cdf_s >= cdf_l - DOMINANCE_TOLERANCE
    })
}

/// Snapshots a finished solver as the point's exportable [`WarmState`].
fn export_state<D: Interarrival + Clone>(
    model: &QueueModel<D>,
    solver: &BoundSolver<D>,
    sol: &LossSolution,
) -> WarmState {
    WarmState {
        buffer: model.buffer(),
        bins: solver.bins,
        upper: solver.q_upper.clone(),
        lower: solver.q_lower.clone(),
        bracket: (sol.lower, sol.upper),
        zero: sol.is_zero(),
    }
}

/// Closes out a solution: attaches the mass-conservation diagnostic
/// (unless a more fundamental reason is already recorded), publishes
/// the mass-drift gauge and any degradation event, and stamps the
/// `solver.solve` span with the final verdict.
fn seal(mut sol: LossSolution, drift: f64, span: &mut lrd_obs::Span) -> LossSolution {
    if sol.degradation.is_none() && drift > MASS_TOLERANCE {
        sol.degradation = Some(DegradationReason::MassLeak { deficit: drift });
    }
    lrd_obs::gauge("solver.mass_drift", drift);
    if let Some(reason) = &sol.degradation {
        reason.emit();
    }
    span.record("iterations", sol.iterations);
    span.record("bins", sol.bins);
    span.record("converged", sol.converged);
    span.record("loss", sol.loss());
    sol
}

#[cfg(test)]
#[allow(deprecated)] // the shims stay covered against the session path
mod tests {
    use super::*;
    use lrd_traffic::{Exponential, Marginal, TruncatedPareto};

    fn two_rate_model(cutoff: f64, buffer: f64) -> QueueModel<TruncatedPareto> {
        QueueModel::new(
            Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
            TruncatedPareto::new(0.05, 1.4, cutoff),
            10.0,
            buffer,
        )
    }

    #[test]
    fn bounds_order_and_monotonicity() {
        // Prop. II.1: l(Q_L) increasing in n, l(Q_H) decreasing in n,
        // and l(Q_L) <= l(Q_H) throughout.
        let mut s = BoundSolver::new(two_rate_model(1.0, 2.0), 100);
        let mut prev_l = 0.0;
        let mut prev_h = f64::INFINITY;
        for n in 0..200 {
            s.step();
            let (l, h) = s.loss_bounds();
            assert!(l <= h + 1e-12, "order violated at n={n}: {l} > {h}");
            assert!(l >= prev_l - 1e-9, "lower bound decreased at n={n}");
            assert!(h <= prev_h + 1e-9, "upper bound increased at n={n}");
            prev_l = l;
            prev_h = h;
        }
    }

    #[test]
    fn refinement_tightens_bounds() {
        // Prop. II.1 step (v): for the stationary chains, doubling M
        // raises l(Q_L) and lowers l(Q_H). Run each grid to (near)
        // stationarity before comparing.
        let model = two_rate_model(1.0, 2.0);
        let run = |bins: usize| {
            let mut s = BoundSolver::new(model.clone(), bins);
            for _ in 0..3000 {
                s.step();
            }
            s.loss_bounds()
        };
        let (l_coarse, h_coarse) = run(50);
        let (l_fine, h_fine) = run(200);
        assert!(l_fine >= l_coarse - 1e-9, "{l_fine} < {l_coarse}");
        assert!(h_fine <= h_coarse + 1e-9, "{h_fine} > {h_coarse}");
        assert!(h_fine - l_fine < h_coarse - l_coarse);
    }

    #[test]
    fn occupancy_distributions_are_probabilities() {
        let mut s = BoundSolver::new(two_rate_model(1.0, 2.0), 64);
        for _ in 0..50 {
            s.step();
        }
        for q in [s.occupancy_lower(), s.occupancy_upper()] {
            let total: f64 = q.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(q.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn solve_converges_on_lossy_system() {
        let sol = solve(&two_rate_model(1.0, 2.0), &SolverOptions::default());
        assert!(sol.converged, "solver did not converge: {sol:?}");
        assert!(sol.lower > 0.0);
        assert!(sol.upper >= sol.lower);
        assert!(sol.upper - sol.lower <= 0.2 * sol.loss() + 1e-12);
        // Sanity: utilization 0.8 with bursty input and a small buffer
        // loses a visible fraction.
        assert!(sol.loss() > 1e-5 && sol.loss() < 0.5, "loss {}", sol.loss());
    }

    #[test]
    fn solve_reports_zero_for_underload() {
        // All rates below the service rate: nothing is ever lost.
        let model = QueueModel::new(
            Marginal::new(&[2.0, 6.0], &[0.5, 0.5]),
            TruncatedPareto::new(0.05, 1.4, 1.0),
            10.0,
            1.0,
        );
        let sol = solve(&model, &SolverOptions::default());
        assert!(sol.converged);
        assert!(sol.is_zero());
        assert_eq!(sol.loss(), 0.0);
    }

    #[test]
    fn loss_decreases_with_buffer() {
        let opts = SolverOptions::default();
        let mut prev = f64::INFINITY;
        for &b in &[0.5, 1.0, 2.0, 4.0] {
            let sol = solve(&two_rate_model(0.5, b), &opts);
            assert!(sol.converged);
            assert!(
                sol.loss() < prev,
                "loss did not decrease at B={b}: {} vs {prev}",
                sol.loss()
            );
            prev = sol.loss();
        }
    }

    #[test]
    fn loss_increases_with_cutoff() {
        // Longer correlation ⇒ longer overload bursts ⇒ more loss.
        let opts = SolverOptions::default();
        let mut prev = 0.0;
        for &tc in &[0.1, 0.5, 2.0, 8.0] {
            let sol = solve(&two_rate_model(tc, 2.0), &opts);
            assert!(sol.converged);
            assert!(
                sol.loss() >= prev - 1e-9,
                "loss decreased at T_c={tc}: {} vs {prev}",
                sol.loss()
            );
            prev = sol.loss();
        }
    }

    #[test]
    fn exponential_intervals_solve() {
        let model = QueueModel::new(
            Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
            Exponential::new(0.08),
            10.0,
            2.0,
        );
        let sol = solve(&model, &SolverOptions::default());
        assert!(sol.converged);
        assert!(sol.loss() > 0.0 && sol.loss() < 1.0);
    }

    #[test]
    fn loss_bounded_by_overload_fraction() {
        // The loss rate can never exceed the mean overload fraction
        // E[(λ−c)⁺]/λ̄ (work can only be lost while the input exceeds
        // the service rate).
        let model = two_rate_model(4.0, 0.5);
        let sol = solve(&model, &SolverOptions::default());
        let cap = 0.5 * (14.0 - 10.0) / 8.0;
        assert!(sol.upper <= cap + 1e-9, "upper {} vs cap {cap}", sol.upper);
    }

    /// An underloaded model (zero loss) at the given buffer.
    fn underload_model(buffer: f64) -> QueueModel<TruncatedPareto> {
        QueueModel::new(
            Marginal::new(&[2.0, 6.0], &[0.5, 0.5]),
            TruncatedPareto::new(0.05, 1.4, 1.0),
            10.0,
            buffer,
        )
    }

    #[test]
    fn warm_monotone_certificate_matches_cold() {
        // A zero donor at a smaller buffer certifies a larger-buffer
        // point of the same model with zero iterations, returning the
        // exact cold constant and passing the donor state through for
        // further chaining.
        let opts = SolverOptions::default();
        let (donor_sol, donor_state) = solve_warm(&underload_model(1.0), &opts, None);
        assert!(donor_sol.is_zero());
        assert!(donor_state.is_zero());

        let cold = solve(&underload_model(1.5), &opts);
        let (warm, state) = solve_warm(&underload_model(1.5), &opts, Some(&donor_state));
        assert!(cold.is_zero());
        assert_eq!(warm.lower.to_bits(), cold.lower.to_bits());
        assert_eq!(warm.upper.to_bits(), cold.upper.to_bits());
        assert_eq!(warm.iterations, 0, "monotone certificate must be free");
        assert!(warm.converged);
        assert!(state.is_zero());
        assert_eq!(state.bins(), donor_state.bins(), "state must pass through");

        // The pass-through state keeps certifying down the chain.
        let cold2 = solve(&underload_model(2.0), &opts);
        let (warm2, _) = solve_warm(&underload_model(2.0), &opts, Some(&state));
        assert!(cold2.is_zero());
        assert_eq!(warm2.upper.to_bits(), cold2.upper.to_bits());
        assert_eq!(warm2.iterations, 0);
    }

    #[test]
    fn warm_descending_probe_certifies() {
        // A donor at a *larger* buffer cannot use the monotone
        // certificate; its occupancy seeds the dominance probe, which
        // must certify this hard zero point (cold takes >1000
        // iterations) in at most PROBE_ITERATIONS steps and return
        // the exact cold constant.
        let opts = SolverOptions::sweep_profile();
        let (donor_sol, donor_state) = solve_warm(&two_rate_model(0.01, 3.0), &opts, None);
        assert!(donor_sol.is_zero(), "donor not zero: {donor_sol:?}");

        let (warm, state) = solve_warm(&two_rate_model(0.01, 2.0), &opts, Some(&donor_state));
        assert!(
            warm.iterations <= PROBE_ITERATIONS,
            "probe did not certify: {} iterations",
            warm.iterations
        );
        assert_eq!(warm.lower.to_bits(), 0.0f64.to_bits());
        assert_eq!(warm.upper.to_bits(), 0.0f64.to_bits());
        assert!(warm.converged);
        assert!(state.is_zero());
    }

    #[test]
    fn warm_fallback_matches_cold_bitwise() {
        // A lossy point warmed from a (handcrafted) zero donor at a
        // larger buffer must fail the dominance probe — its loss never
        // approaches the floor — and fall back to a solve bit-identical
        // to cold.
        let opts = SolverOptions::default();
        let bins = 64;
        let donor_state = WarmState {
            buffer: 5.0,
            bins,
            upper: vec![1.0 / (bins + 1) as f64; bins + 1],
            lower: vec![1.0 / (bins + 1) as f64; bins + 1],
            bracket: (0.0, 0.0),
            zero: true,
        };
        let model = two_rate_model(1.0, 2.0);
        let cold = solve(&model, &opts);
        let (warm, _) = solve_warm(&model, &opts, Some(&donor_state));
        assert!(!cold.is_zero());
        assert_eq!(warm.lower.to_bits(), cold.lower.to_bits());
        assert_eq!(warm.upper.to_bits(), cold.upper.to_bits());
        assert_eq!(warm.bins, cold.bins);
        assert_eq!(warm.converged, cold.converged);
    }

    #[test]
    fn nonzero_donor_is_ignored() {
        // Donors that did not certify zero must not be consulted: the
        // solve is plain cold, bit for bit.
        let opts = SolverOptions::default();
        let (donor_sol, donor_state) = solve_warm(&two_rate_model(1.0, 2.0), &opts, None);
        assert!(!donor_sol.is_zero());
        let model = two_rate_model(1.0, 3.0);
        let cold = solve(&model, &opts);
        let (warm, _) = solve_warm(&model, &opts, Some(&donor_state));
        assert_eq!(warm.lower.to_bits(), cold.lower.to_bits());
        assert_eq!(warm.upper.to_bits(), cold.upper.to_bits());
        assert_eq!(warm.iterations, cold.iterations);
    }

    #[test]
    fn rebin_upper_is_conservative() {
        // The re-binned distribution must stochastically dominate the
        // original: mass only ever moves up.
        let opts = SolverOptions::default();
        let (_, state) = solve_warm(&underload_model(1.0), &opts, None);
        for &(buffer, bins) in &[(1.0, 64), (1.5, 128), (0.8, 200), (2.0, 37)] {
            let rebinned = state.rebin_upper(buffer, bins);
            let total: f64 = rebinned.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "mass lost: {total}");
            assert!(rebinned.iter().all(|&p| p >= 0.0));
            if buffer < 1.0 {
                // Donor range exceeds the target grid: out-of-range
                // mass folds to the top atom, so dominance over the
                // original need not hold (the probe's runtime check
                // carries soundness there).
                continue;
            }
            // CDF comparison on the common value axis: at every value
            // x, Pr{rebinned <= x} <= Pr{original <= x}.
            let d_old = 1.0 / state.bins() as f64;
            let d_new = buffer / bins as f64;
            let orig = state.occupancy(true);
            for j in 0..=bins {
                let x = j as f64 * d_new;
                let cdf_new: f64 = rebinned[..=j].iter().sum();
                let cdf_old: f64 = orig
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i as f64 * d_old <= x)
                    .map(|(_, &p)| p)
                    .sum();
                assert!(
                    cdf_new <= cdf_old + 1e-9,
                    "dominance violated at x={x}: {cdf_new} > {cdf_old}"
                );
            }
        }
    }

    #[test]
    fn stochastic_dominance_check() {
        let a = [0.2, 0.3, 0.5];
        let b = [0.5, 0.3, 0.2];
        // b has more mass low, so b ⪯st a.
        assert!(stochastically_dominated(&b, &a));
        assert!(!stochastically_dominated(&a, &b));
        let c = [0.2, 0.3, 0.5];
        assert!(stochastically_dominated(&a, &c));
    }

    #[test]
    fn cost_budget_cuts_off_gracefully() {
        // An absurdly small budget must still return valid (ordered)
        // bounds, flagged as not converged.
        let opts = SolverOptions {
            max_total_cost: 300.0,
            rel_gap: 1e-9, // unreachable, forces the budget path
            ..SolverOptions::default()
        };
        let sol = solve(&two_rate_model(1.0, 2.0), &opts);
        assert!(!sol.converged);
        assert!(sol.lower <= sol.upper);
        assert!(
            sol.iterations <= 4,
            "budget ignored: {} iterations",
            sol.iterations
        );
    }
}
