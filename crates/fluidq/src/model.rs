//! The queue-plus-traffic description shared by the solver, the
//! analytic kernels, and the simulator cross-checks.

use lrd_traffic::{Interarrival, Marginal, ModelError};

/// A finite-buffer fluid queue fed by the modulated fluid source.
///
/// Units are consistent throughout the workspace: rates in Mb/s, time
/// in seconds, work (and the buffer) in Mb. The paper reports
/// *normalized* buffer sizes `B/c` in seconds; use
/// [`QueueModel::with_normalized_buffer`] to construct from that
/// convention.
#[derive(Debug, Clone)]
pub struct QueueModel<D> {
    marginal: Marginal,
    intervals: D,
    service_rate: f64,
    buffer: f64,
}

impl<D: Interarrival> QueueModel<D> {
    /// Creates a model with the buffer given in **Mb**.
    ///
    /// # Panics
    ///
    /// Panics if the service rate or buffer is not positive and
    /// finite, or if any marginal rate coincides with the service rate
    /// (the paper excludes this trivial case: such a state leaves the
    /// occupancy unchanged, and the increment `W` would have an atom at
    /// zero that the bound construction does not model). Use
    /// [`QueueModel::try_new`] for a fallible variant.
    pub fn new(marginal: Marginal, intervals: D, service_rate: f64, buffer: f64) -> Self {
        QueueModel::try_new(marginal, intervals, service_rate, buffer)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: returns a typed [`ModelError`] instead of
    /// panicking on an ill-posed queue description.
    pub fn try_new(
        marginal: Marginal,
        intervals: D,
        service_rate: f64,
        buffer: f64,
    ) -> Result<Self, ModelError> {
        if !service_rate.is_finite() {
            return Err(ModelError::NonFiniteInput {
                param: "service rate",
                value: service_rate,
            });
        }
        if service_rate <= 0.0 {
            return Err(ModelError::ParamOutOfDomain {
                param: "service rate",
                value: service_rate,
                constraint: "must be positive and finite",
            });
        }
        if !buffer.is_finite() {
            return Err(ModelError::NonFiniteInput {
                param: "buffer",
                value: buffer,
            });
        }
        if buffer <= 0.0 {
            return Err(ModelError::ParamOutOfDomain {
                param: "buffer",
                value: buffer,
                constraint: "must be positive and finite",
            });
        }
        for &r in marginal.rates() {
            if r == service_rate {
                return Err(ModelError::ParamOutOfDomain {
                    param: "marginal rate",
                    value: r,
                    constraint: "equals the service rate; perturb it slightly",
                });
            }
        }
        Ok(QueueModel {
            marginal,
            intervals,
            service_rate,
            buffer,
        })
    }

    /// Creates a model from a *normalized* buffer size in seconds
    /// (`B = c · seconds`), the convention of the paper's figures.
    pub fn with_normalized_buffer(
        marginal: Marginal,
        intervals: D,
        service_rate: f64,
        buffer_seconds: f64,
    ) -> Self {
        QueueModel::new(marginal, intervals, service_rate, service_rate * buffer_seconds)
    }

    /// Fallible variant of [`QueueModel::with_normalized_buffer`].
    pub fn try_with_normalized_buffer(
        marginal: Marginal,
        intervals: D,
        service_rate: f64,
        buffer_seconds: f64,
    ) -> Result<Self, ModelError> {
        if !buffer_seconds.is_finite() {
            return Err(ModelError::NonFiniteInput {
                param: "normalized buffer",
                value: buffer_seconds,
            });
        }
        QueueModel::try_new(marginal, intervals, service_rate, service_rate * buffer_seconds)
    }

    /// Creates a model by choosing the service rate for a target
    /// utilization `ρ = λ̄/c` and the buffer from its normalized size
    /// in seconds — the exact parameterization of the paper's
    /// experiments.
    pub fn from_utilization(
        marginal: Marginal,
        intervals: D,
        utilization: f64,
        buffer_seconds: f64,
    ) -> Self {
        QueueModel::try_from_utilization(marginal, intervals, utilization, buffer_seconds)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`QueueModel::from_utilization`].
    pub fn try_from_utilization(
        marginal: Marginal,
        intervals: D,
        utilization: f64,
        buffer_seconds: f64,
    ) -> Result<Self, ModelError> {
        if !utilization.is_finite() {
            return Err(ModelError::NonFiniteInput {
                param: "utilization",
                value: utilization,
            });
        }
        if utilization <= 0.0 || utilization > 1.0 {
            return Err(ModelError::ParamOutOfDomain {
                param: "utilization",
                value: utilization,
                constraint: "must be in (0, 1]",
            });
        }
        let mean = marginal.mean();
        if mean <= 0.0 {
            return Err(ModelError::ParamOutOfDomain {
                param: "mean rate",
                value: mean,
                constraint: "must be positive to set a utilization",
            });
        }
        QueueModel::try_with_normalized_buffer(
            marginal,
            intervals,
            mean / utilization,
            buffer_seconds,
        )
    }

    /// The fluid-rate marginal `(Π, Λ)`.
    pub fn marginal(&self) -> &Marginal {
        &self.marginal
    }

    /// The interval-length distribution.
    pub fn intervals(&self) -> &D {
        &self.intervals
    }

    /// The service rate `c` (Mb/s).
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// The buffer size `B` (Mb).
    pub fn buffer(&self) -> f64 {
        self.buffer
    }

    /// The normalized buffer size `B/c` (seconds).
    pub fn normalized_buffer(&self) -> f64 {
        self.buffer / self.service_rate
    }

    /// Offered load `ρ = λ̄/c`.
    pub fn utilization(&self) -> f64 {
        self.marginal.mean() / self.service_rate
    }

    /// Mean work arriving per renewal interval, `λ̄ · E[T]` (Mb) — the
    /// denominator of the loss-rate definition (Eq. 13).
    pub fn mean_work_per_interval(&self) -> f64 {
        self.marginal.mean() * self.intervals.mean()
    }

    /// Returns a copy with a different interval distribution (the
    /// experiments sweep `T_c` holding everything else fixed).
    pub fn with_intervals<E: Interarrival>(&self, intervals: E) -> QueueModel<E> {
        QueueModel::new(
            self.marginal.clone(),
            intervals,
            self.service_rate,
            self.buffer,
        )
    }

    /// Returns a copy with a different buffer size in Mb.
    pub fn with_buffer(&self, buffer: f64) -> QueueModel<D>
    where
        D: Clone,
    {
        QueueModel::new(
            self.marginal.clone(),
            self.intervals.clone(),
            self.service_rate,
            buffer,
        )
    }

    /// Returns a copy with a different marginal (the experiments sweep
    /// the scaling factor and the superposition count).
    pub fn with_marginal(&self, marginal: Marginal) -> QueueModel<D>
    where
        D: Clone,
    {
        QueueModel::new(
            marginal,
            self.intervals.clone(),
            self.service_rate,
            self.buffer,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_traffic::TruncatedPareto;

    fn marg() -> Marginal {
        Marginal::new(&[2.0, 5.0, 11.0, 14.0], &[0.1, 0.4, 0.4, 0.1])
    }

    fn pareto() -> TruncatedPareto {
        TruncatedPareto::new(0.05, 1.4, 10.0)
    }

    #[test]
    fn normalized_buffer_roundtrip() {
        let m = QueueModel::with_normalized_buffer(marg(), pareto(), 10.0, 1.5);
        assert!((m.buffer() - 15.0).abs() < 1e-12);
        assert!((m.normalized_buffer() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_utilization() {
        let m = QueueModel::from_utilization(marg(), pareto(), 0.8, 1.0);
        assert!((m.utilization() - 0.8).abs() < 1e-12);
        assert!((m.service_rate() - 10.0).abs() < 1e-12);
        assert!((m.buffer() - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equals the service rate")]
    fn rate_equal_to_service_rejected() {
        QueueModel::new(marg(), pareto(), 5.0, 1.0);
    }

    #[test]
    fn sweeping_helpers() {
        let m = QueueModel::from_utilization(marg(), pareto(), 0.8, 1.0);
        let m2 = m.with_buffer(20.0);
        assert!((m2.normalized_buffer() - 2.0).abs() < 1e-12);
        let m3 = m.with_intervals(pareto().with_cutoff(1.0));
        assert_eq!(m3.intervals().cutoff(), 1.0);
        let m4 = m.with_marginal(marg().scaled(0.5));
        assert!((m4.marginal().std_dev() - 0.5 * marg().std_dev()).abs() < 1e-12);
    }

    #[test]
    fn mean_work_per_interval() {
        let m = QueueModel::new(marg(), pareto(), 10.0, 1.0);
        let want = marg().mean() * pareto().mean();
        assert!((m.mean_work_per_interval() - want).abs() < 1e-12);
    }
}
