//! Resumable solve sessions: the incremental engine behind the whole
//! solver API.
//!
//! [`SolveSession`] is the paper's convergence protocol (solver.rs
//! module docs) re-expressed as an explicit state machine that can be
//! advanced a bounded number of iterations at a time via
//! [`SolveSession::step_budget`]. A session moves through the phases
//!
//! ```text
//! Cold ──────────────────────────► Converged
//! Seeded ──(probe certifies)─────► Converged
//!    └─────(probe falls back)───► Cold ────► Converged
//! ```
//!
//! * **Seeded** — a zero-loss donor [`WarmState`] at a larger buffer
//!   seeds the stochastic-dominance probe (`probe_zero` in the legacy
//!   API); each budget unit is one upper-chain step.
//! * **Cold** — the from-scratch bounding protocol; each budget unit
//!   is one two-chain step, with grid refinement and level bookkeeping
//!   amortized into the step that triggers them.
//! * **Converged** — the verdict is sealed; [`SolveSession::solution`]
//!   and [`SolveSession::warm_state`] are available. (A donor at a
//!   *smaller* buffer short-circuits here at build time through the
//!   monotone certificate, with zero iterations.)
//!
//! The state machine performs, in order, **exactly** the operations of
//! the one-shot protocol: driving a session to completion produces
//! bit-identical solutions and an identical telemetry stream
//! (`solver.solve`/`solver.level` spans, per-iteration `solver.gap`
//! events, `solver.iterations`/`solver.refines` counters) to what
//! [`solve_warm`](super::solve_warm) historically emitted — the legacy
//! free functions are now thin wrappers over a session driven to
//! completion, and `tests/session_equivalence.rs` pins the equivalence
//! bit-for-bit across the figure registry.
//!
//! Incremental refinement is what the `lrd-serve` daemon builds its
//! bounded-staleness loss-bound queries on: the engine interleaves
//! `step_budget` calls across flows between arrival ticks, reading
//! [`SolveSession::bounds`] for the freshest provable bracket (every
//! iterate of the cold protocol is a valid bound pair by
//! Proposition II.1 — only probe iterates prove nothing until they
//! certify).

use std::mem;

use super::{
    cold_solver_bins, export_state, seal, stochastically_dominated, validate_options, BoundSolver,
    LossSolution, SolverOptions, WarmState, MASS_TOLERANCE, PROBE_ITERATIONS, PROBE_PLATEAU_RATIO,
    PROBE_PLATEAU_STEPS,
};
use crate::error::{DegradationReason, SolverError};
use crate::history::{GapHistory, GapSample};
use crate::model::QueueModel;
use lrd_traffic::Interarrival;

/// The per-call iteration budget [`SolveSession::run`] (and therefore
/// the one-shot [`SessionBuilder::solve`] family and the legacy shims)
/// uses between completion checks.
pub const DEFAULT_RUN_CHUNK: usize = 4096;

static RUN_CHUNK: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(DEFAULT_RUN_CHUNK);

/// Overrides, process-wide, the per-call budget [`SolveSession::run`]
/// hands to [`SolveSession::step_budget`] (clamped to at least 1).
///
/// The solved results are bit-identical for every chunk size — that is
/// the session contract — so this knob exists for equivalence suites
/// that want to force heavily chunked stepping through call sites
/// using the one-shot entry points, and for latency experiments.
/// Restore [`DEFAULT_RUN_CHUNK`] when done; concurrent solves observe
/// the override immediately.
pub fn set_session_run_chunk(chunk: usize) {
    RUN_CHUNK.store(chunk.max(1), std::sync::atomic::Ordering::Relaxed);
}

/// The current [`SolveSession::run`] per-call budget.
pub fn session_run_chunk() -> usize {
    RUN_CHUNK.load(std::sync::atomic::Ordering::Relaxed)
}

/// Where a [`SolveSession`] stands in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// The from-scratch bounding protocol is running (no usable donor,
    /// or the seeded probe fell back).
    Cold,
    /// A donor-seeded zero-certification probe is running.
    Seeded,
    /// The session is finished; the solution and exportable warm state
    /// are available.
    Converged,
}

/// Builder for a [`SolveSession`] — the single construction surface
/// for every solve in the workspace.
///
/// ```
/// use lrd_fluidq::{QueueModel, SolveSession, SolverOptions};
/// use lrd_traffic::{Marginal, TruncatedPareto};
///
/// let model = QueueModel::new(
///     Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
///     TruncatedPareto::new(0.05, 1.4, 1.0),
///     10.0,
///     2.0,
/// );
/// let solution = SolveSession::builder(&model)
///     .options(&SolverOptions::default())
///     .solve();
/// assert!(solution.converged);
/// ```
#[derive(Debug)]
pub struct SessionBuilder<'a, D: Interarrival + Clone> {
    model: &'a QueueModel<D>,
    opts: SolverOptions,
    donor: Option<&'a WarmState>,
}

impl<'a, D: Interarrival + Clone> SessionBuilder<'a, D> {
    /// Sets the convergence-protocol options (defaults to
    /// [`SolverOptions::default`]).
    pub fn options(mut self, opts: &SolverOptions) -> Self {
        self.opts = *opts;
        self
    }

    /// Offers a neighbouring point's [`WarmState`] as a warm-start
    /// donor. Passing `Some` asserts the donor was solved on a model
    /// identical to this one except possibly the buffer size (see
    /// [`solve_warm`](super::solve_warm) for the full contract); the
    /// warm path never changes solved values, so an unusable donor
    /// costs at most the discarded probe iterations.
    pub fn donor(mut self, donor: Option<&'a WarmState>) -> Self {
        self.donor = donor;
        self
    }

    /// Validates the options and constructs the session. A usable
    /// zero donor at a smaller-or-equal buffer resolves immediately
    /// (the monotone certificate): the returned session is already
    /// [`SessionPhase::Converged`] with zero iterations.
    ///
    /// `Err` is returned **only** for malformed [`SolverOptions`];
    /// every outcome of the iteration itself, including degradation,
    /// is an `Ok` session that runs to completion.
    pub fn build(self) -> Result<SolveSession<D>, SolverError> {
        validate_options(&self.opts)?;
        let donor = self.donor.filter(|w| w.zero);
        let mut solve_span = lrd_obs::span!(
            "solver.solve",
            initial_bins = self.opts.initial_bins.min(self.opts.max_bins),
            max_bins = self.opts.max_bins,
            rel_gap = self.opts.rel_gap,
        );
        solve_span.record("warm", donor.is_some());
        let inner = match donor {
            Some(state) if state.buffer <= self.model.buffer() => {
                // Monotone certificate: the donor's zero transfers to
                // any larger buffer with no iteration at all; the donor
                // state passes through unchanged so the certificate
                // chain stays anchored at distributions that were
                // actually solved.
                let sol = LossSolution {
                    lower: 0.0,
                    upper: 0.0,
                    iterations: 0,
                    bins: state.bins,
                    converged: true,
                    degradation: None,
                    gap_history: GapHistory::new(),
                    refinement_epochs: Vec::new(),
                };
                let sealed = seal(sol, 0.0, &mut solve_span);
                solve_span = lrd_obs::Span::disabled();
                Inner::Done(Box::new(Finished {
                    solution: sealed,
                    state: state.clone(),
                }))
            }
            Some(state) => {
                // Seed the dominance probe at the donor's resolution
                // (clamped into the option envelope): the donor
                // certified below the floor there, and the stationary
                // upper bound only tightens with resolution.
                let bins = state.bins.clamp(2, self.opts.max_bins);
                match BoundSolver::try_new(self.model.clone(), bins) {
                    Ok(mut solver) => {
                        solver.q_upper = state.rebin_upper(self.model.buffer(), bins);
                        let prev = solver.q_upper.clone();
                        Inner::Probe(Box::new(ProbeState {
                            solver,
                            prev,
                            prev_upper: f64::INFINITY,
                            slow_steps: 0,
                            gap_history: GapHistory::new(),
                            refinement_epochs: Vec::new(),
                            n: 0,
                        }))
                    }
                    Err(_) => cold_inner(self.model, &self.opts, 0),
                }
            }
            None => cold_inner(self.model, &self.opts, 0),
        };
        Ok(SolveSession {
            model: self.model.clone(),
            opts: self.opts,
            solve_span,
            inner: Some(inner),
        })
    }

    /// Builds the session and drives it to completion — the fallible
    /// one-shot form, equivalent to the historical
    /// [`try_solve_warm`](super::try_solve_warm).
    pub fn run(self) -> Result<(LossSolution, WarmState), SolverError> {
        Ok(self.build()?.run())
    }

    /// Builds, runs, and returns the solution alone, panicking on
    /// malformed options — the historical [`solve`](super::solve).
    ///
    /// # Panics
    ///
    /// Panics on options [`SessionBuilder::build`] rejects.
    pub fn solve(self) -> LossSolution {
        self.run().unwrap_or_else(|e| panic!("{e}")).0
    }

    /// Builds, runs, and returns the solution plus this point's own
    /// exportable warm state, panicking on malformed options — the
    /// historical [`solve_warm`](super::solve_warm).
    ///
    /// # Panics
    ///
    /// Panics on options [`SessionBuilder::build`] rejects.
    pub fn solve_warm(self) -> (LossSolution, WarmState) {
        self.run().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// A resumable solve: the bounding-chain convergence protocol as an
/// explicit state machine. See the module docs for the phase diagram
/// and the equivalence contract with the one-shot API.
#[derive(Debug)]
pub struct SolveSession<D: Interarrival + Clone> {
    model: QueueModel<D>,
    opts: SolverOptions,
    /// The `solver.solve` span, open from build until the verdict is
    /// sealed (replaced by a disabled shell afterwards so drop-order
    /// matches the one-shot protocol exactly).
    solve_span: lrd_obs::Span,
    /// `None` only transiently while a step function owns the state.
    inner: Option<Inner<D>>,
}

#[derive(Debug)]
enum Inner<D: Interarrival + Clone> {
    Probe(Box<ProbeState<D>>),
    Protocol(Box<ProtocolState<D>>),
    Done(Box<Finished>),
}

#[derive(Debug)]
struct Finished {
    solution: LossSolution,
    state: WarmState,
}

/// The dominance probe (legacy `probe_zero`) between steps.
#[derive(Debug)]
struct ProbeState<D: Interarrival + Clone> {
    solver: BoundSolver<D>,
    /// Previous iterate, for the stochastic-dominance check.
    prev: Vec<f64>,
    prev_upper: f64,
    slow_steps: usize,
    gap_history: GapHistory,
    refinement_epochs: Vec<(usize, usize)>,
    /// Probe iterations performed so far (`spent` in the legacy API).
    n: usize,
}

/// The cold protocol (legacy `run_protocol`) between steps.
#[derive(Debug)]
struct ProtocolState<D: Interarrival + Clone> {
    solver: BoundSolver<D>,
    total_iterations: usize,
    total_cost: f64,
    gap_history: GapHistory,
    refinement_epochs: Vec<(usize, usize)>,
    /// The freshest provable `(lower, upper)` pair, for
    /// [`SolveSession::bounds`]; survives level changes.
    last_bounds: Option<(f64, f64)>,
    /// The open grid level, or `None` right after a refinement (the
    /// next step opens the finer level).
    level: Option<LevelState>,
}

/// Per-grid-level loop state of the cold protocol.
#[derive(Debug)]
struct LevelState {
    span: lrd_obs::Span,
    /// `total_iterations` when this level opened.
    start: usize,
    /// Steps performed at this level (the legacy per-level `for`
    /// counter, bounded by `max_iterations_per_level`).
    steps: usize,
    prev_gap: f64,
    slow_iters: usize,
    /// The last finite bounds seen at this level (initialized to the
    /// level-entry bounds), the fallback bracket on numerical
    /// breakdown.
    last_finite: (f64, f64),
}

/// A fresh cold-protocol state starting from `base_iterations`
/// already-spent probe steps (honest work accounting; the protocol's
/// control flow never depends on it).
fn cold_inner<D: Interarrival + Clone>(
    model: &QueueModel<D>,
    opts: &SolverOptions,
    base_iterations: usize,
) -> Inner<D> {
    let solver = BoundSolver::try_new(model.clone(), cold_solver_bins(opts))
        .expect("validate_options guarantees initial_bins.min(max_bins) >= 2");
    Inner::Protocol(Box::new(ProtocolState {
        solver,
        total_iterations: base_iterations,
        total_cost: 0.0,
        gap_history: GapHistory::new(),
        refinement_epochs: Vec::new(),
        last_bounds: None,
        level: None,
    }))
}

impl<D: Interarrival + Clone> SolveSession<D> {
    /// Starts building a session for `model`.
    pub fn builder(model: &QueueModel<D>) -> SessionBuilder<'_, D> {
        SessionBuilder {
            model,
            opts: SolverOptions::default(),
            donor: None,
        }
    }

    /// The current lifecycle phase.
    pub fn phase(&self) -> SessionPhase {
        match self.inner() {
            Inner::Probe(_) => SessionPhase::Seeded,
            Inner::Protocol(_) => SessionPhase::Cold,
            Inner::Done(_) => SessionPhase::Converged,
        }
    }

    /// Whether the session has reached [`SessionPhase::Converged`].
    pub fn is_done(&self) -> bool {
        matches!(self.inner(), Inner::Done(_))
    }

    /// Iterations performed so far (probe steps included, exactly as
    /// the one-shot API accounts them).
    pub fn iterations(&self) -> usize {
        match self.inner() {
            Inner::Probe(p) => p.n,
            Inner::Protocol(p) => p.total_iterations,
            Inner::Done(f) => f.solution.iterations,
        }
    }

    /// The current grid resolution `M`.
    pub fn bins(&self) -> usize {
        match self.inner() {
            Inner::Probe(p) => p.solver.bins(),
            Inner::Protocol(p) => p.solver.bins(),
            Inner::Done(f) => f.solution.bins,
        }
    }

    /// The freshest **provable** loss-rate bracket `(lower, upper)`.
    ///
    /// In the cold phase every iterate is a valid bound pair
    /// (Proposition II.1 holds at every `n`), so this tightens as the
    /// session is stepped — the `lrd-serve` daemon answers loss-bound
    /// queries from exactly this value between refinement budgets.
    /// `None` while a seeded probe runs (probe iterates prove nothing
    /// until one certifies) and before the first cold step.
    pub fn bounds(&self) -> Option<(f64, f64)> {
        match self.inner() {
            Inner::Probe(_) => None,
            Inner::Protocol(p) => p.last_bounds,
            Inner::Done(f) => Some((f.solution.lower, f.solution.upper)),
        }
    }

    /// The sealed solution, once [`SessionPhase::Converged`].
    pub fn solution(&self) -> Option<&LossSolution> {
        match self.inner() {
            Inner::Done(f) => Some(&f.solution),
            _ => None,
        }
    }

    /// This point's exportable warm state, once
    /// [`SessionPhase::Converged`].
    pub fn warm_state(&self) -> Option<&WarmState> {
        match self.inner() {
            Inner::Done(f) => Some(&f.state),
            _ => None,
        }
    }

    /// Consumes the session, returning the verdict when finished.
    pub fn into_result(self) -> Option<(LossSolution, WarmState)> {
        match self.inner.expect("session state present") {
            Inner::Done(f) => Some((f.solution, f.state)),
            _ => None,
        }
    }

    /// Advances the session by at most `budget` iterations, returning
    /// whether it is now finished. Level bookkeeping, grid refinement
    /// and the probe→cold fallback are amortized into the step that
    /// triggers them, so one budget unit is one chain iteration — the
    /// unit `SolverOptions::max_total_cost` is denominated in, times
    /// the current `bins`.
    pub fn step_budget(&mut self, budget: usize) -> bool {
        for _ in 0..budget {
            if self.is_done() {
                return true;
            }
            let inner = self.inner.take().expect("session state present");
            let next = match inner {
                Inner::Probe(p) => self.probe_step(p),
                Inner::Protocol(p) => self.protocol_step(p),
                done => done,
            };
            self.inner = Some(next);
        }
        self.is_done()
    }

    /// Drives the session to completion and returns the verdict.
    pub fn run(mut self) -> (LossSolution, WarmState) {
        let chunk = session_run_chunk();
        while !self.step_budget(chunk) {}
        self.into_result().expect("session just finished")
    }

    fn inner(&self) -> &Inner<D> {
        self.inner.as_ref().expect("session state present")
    }

    /// Seals the verdict into the `solver.solve` span and dispatches
    /// the span's end record — the session-side equivalent of the
    /// one-shot path returning through `seal` and dropping its span.
    fn close(&mut self, sealed: LossSolution, state: WarmState) -> Inner<D> {
        self.solve_span = lrd_obs::Span::disabled();
        Inner::Done(Box::new(Finished {
            solution: sealed,
            state,
        }))
    }

    /// One iteration of the dominance probe — the body of the legacy
    /// `probe_zero` loop, operation for operation.
    fn probe_step(&mut self, mut p: Box<ProbeState<D>>) -> Inner<D> {
        let n = p.n + 1;
        let drift = p.solver.step_upper();
        lrd_obs::counter("solver.iterations", 1);
        p.n = n;
        let dominated = stochastically_dominated(&p.solver.q_upper, &p.prev);
        let upper = p.solver.kernel.loss_rate(&p.solver.q_upper);
        lrd_obs::event!(
            "solver.gap",
            iteration = n,
            lower = 0.0,
            upper = upper,
            bins = p.solver.bins(),
        );
        if !upper.is_finite() || drift > MASS_TOLERANCE {
            // Numerical trouble inside the probe: the cheap path is
            // never worth a degraded verdict — fall back to cold.
            return cold_inner(&self.model, &self.opts, n);
        }
        p.gap_history.push(GapSample {
            iteration: n,
            lower: 0.0,
            upper,
        });
        if dominated && upper < self.opts.zero_floor {
            // Certified: the same constant the cold floor rule emits.
            let sol = LossSolution {
                lower: 0.0,
                upper: 0.0,
                iterations: n,
                bins: p.solver.bins(),
                converged: true,
                degradation: None,
                gap_history: mem::replace(&mut p.gap_history, GapHistory::new()),
                refinement_epochs: mem::take(&mut p.refinement_epochs),
            };
            let state = export_state(&self.model, &p.solver, &sol);
            let mass_drift = p.solver.mass_drift();
            let sealed = seal(sol, mass_drift, &mut self.solve_span);
            return self.close(sealed, state);
        }
        if dominated && upper > PROBE_PLATEAU_RATIO * p.prev_upper {
            p.slow_steps += 1;
            if p.slow_steps >= PROBE_PLATEAU_STEPS {
                // Dominated steps plateaued: the residual is
                // discretization error — escalate the grid, or give
                // the point to the cold protocol at the ceiling.
                if p.solver.bins() * 2 > self.opts.max_bins {
                    return cold_inner(&self.model, &self.opts, n);
                }
                p.solver.refine();
                p.refinement_epochs.push((n, p.solver.bins()));
                lrd_obs::counter("solver.refines", 1);
                p.prev = p.solver.q_upper.clone();
                p.prev_upper = f64::INFINITY;
                p.slow_steps = 0;
                return if n == PROBE_ITERATIONS {
                    cold_inner(&self.model, &self.opts, n)
                } else {
                    Inner::Probe(p)
                };
            }
        } else {
            p.slow_steps = 0;
        }
        p.prev_upper = upper;
        p.prev.copy_from_slice(&p.solver.q_upper);
        if n == PROBE_ITERATIONS {
            return cold_inner(&self.model, &self.opts, n);
        }
        Inner::Probe(p)
    }

    /// One iteration of the cold protocol — the body of the legacy
    /// `run_protocol` loop, operation for operation, with the level
    /// `for` loop flattened into [`LevelState`].
    fn protocol_step(&mut self, mut p: Box<ProtocolState<D>>) -> Inner<D> {
        if p.level.is_none() {
            let entry = p.solver.loss_bounds();
            p.level = Some(LevelState {
                span: lrd_obs::span!("solver.level", bins = p.solver.bins()),
                start: p.total_iterations,
                steps: 0,
                prev_gap: f64::INFINITY,
                slow_iters: 0,
                last_finite: entry,
            });
        }

        p.solver.step();
        p.total_iterations += 1;
        p.total_cost += p.solver.bins() as f64;
        lrd_obs::counter("solver.iterations", 1);
        let (lower, upper) = p.solver.loss_bounds();
        lrd_obs::event!(
            "solver.gap",
            iteration = p.total_iterations,
            lower = lower,
            upper = upper,
            bins = p.solver.bins(),
        );

        let level = p.level.as_mut().expect("level opened above");
        level.steps += 1;

        if !(lower.is_finite() && upper.is_finite()) {
            // Numerical breakdown: close the level, then fall back to
            // the last bounds that were still finite.
            let mut level = p.level.take().expect("level opened above");
            level.span.record("iterations", p.total_iterations - level.start);
            let last_finite = level.last_finite;
            drop(level);
            let (lower, upper) = if last_finite.0.is_finite() && last_finite.1.is_finite() {
                last_finite
            } else {
                // Loss rates live in [0, 1], so (0, 1) is always a
                // valid (if vacuous) bound pair.
                (0.0, 1.0)
            };
            let sol = LossSolution {
                lower,
                upper,
                iterations: p.total_iterations,
                bins: p.solver.bins(),
                converged: false,
                degradation: Some(DegradationReason::NumericalBreakdown),
                gap_history: mem::replace(&mut p.gap_history, GapHistory::new()),
                refinement_epochs: mem::take(&mut p.refinement_epochs),
            };
            let state = export_state(&self.model, &p.solver, &sol);
            let mass_drift = p.solver.mass_drift();
            let sealed = seal(sol, mass_drift, &mut self.solve_span);
            drop(p);
            return self.close(sealed, state);
        }
        level.last_finite = (lower, upper);
        p.last_bounds = Some((lower, upper));
        p.gap_history.push(GapSample {
            iteration: p.total_iterations,
            lower,
            upper,
        });

        if upper < self.opts.zero_floor {
            // The paper's floor rule: below practical importance.
            level.span.record("iterations", p.total_iterations - level.start);
            let sol = LossSolution {
                lower: 0.0,
                upper: 0.0,
                iterations: p.total_iterations,
                bins: p.solver.bins(),
                converged: true,
                degradation: None,
                gap_history: mem::replace(&mut p.gap_history, GapHistory::new()),
                refinement_epochs: mem::take(&mut p.refinement_epochs),
            };
            let state = export_state(&self.model, &p.solver, &sol);
            let mass_drift = p.solver.mass_drift();
            let sealed = seal(sol, mass_drift, &mut self.solve_span);
            // Drop order replicates the one-shot return: seal, then
            // the level span, then the solve span.
            drop(p);
            return self.close(sealed, state);
        }
        let gap = upper - lower;
        let mid = 0.5 * (upper + lower);
        if gap <= self.opts.rel_gap * mid {
            level.span.record("iterations", p.total_iterations - level.start);
            let sol = LossSolution {
                lower,
                upper,
                iterations: p.total_iterations,
                bins: p.solver.bins(),
                converged: true,
                degradation: None,
                gap_history: mem::replace(&mut p.gap_history, GapHistory::new()),
                refinement_epochs: mem::take(&mut p.refinement_epochs),
            };
            let state = export_state(&self.model, &p.solver, &sol);
            let mass_drift = p.solver.mass_drift();
            let sealed = seal(sol, mass_drift, &mut self.solve_span);
            drop(p);
            return self.close(sealed, state);
        }

        // Stall detection: the gap is monotone non-increasing; if it
        // stops shrinking the remaining gap is discretization error
        // and only refinement can help.
        let mut stall_break = false;
        if gap > level.prev_gap * (1.0 - self.opts.stall_tolerance) {
            level.slow_iters += 1;
            if level.slow_iters >= self.opts.stall_window {
                stall_break = true;
            }
        } else {
            level.slow_iters = 0;
        }
        let mut out_of_budget = false;
        if !stall_break {
            level.prev_gap = gap;
            out_of_budget = p.total_cost > self.opts.max_total_cost;
        }
        let exhausted = level.steps == self.opts.max_iterations_per_level;
        if !stall_break && !out_of_budget && !exhausted {
            return Inner::Protocol(p);
        }

        // The level is over: close its span, then either degrade out
        // or refine into the next level.
        let mut level = p.level.take().expect("level opened above");
        level.span.record("iterations", p.total_iterations - level.start);
        drop(level);

        if out_of_budget || p.solver.bins() * 2 > self.opts.max_bins {
            let (lower, upper) = p.solver.loss_bounds();
            let reason = if out_of_budget {
                DegradationReason::BudgetExhausted {
                    spent: p.total_cost,
                    budget: self.opts.max_total_cost,
                }
            } else {
                DegradationReason::GridCeiling {
                    max_bins: self.opts.max_bins,
                }
            };
            let sol = LossSolution {
                lower,
                upper,
                iterations: p.total_iterations,
                bins: p.solver.bins(),
                converged: false,
                degradation: Some(reason),
                gap_history: mem::replace(&mut p.gap_history, GapHistory::new()),
                refinement_epochs: mem::take(&mut p.refinement_epochs),
            };
            let state = export_state(&self.model, &p.solver, &sol);
            let mass_drift = p.solver.mass_drift();
            let sealed = seal(sol, mass_drift, &mut self.solve_span);
            drop(p);
            return self.close(sealed, state);
        }
        let old_bins = p.solver.bins();
        p.solver.refine();
        p.refinement_epochs.push((p.total_iterations, p.solver.bins()));
        lrd_obs::event!(
            "solver.refine",
            iteration = p.total_iterations,
            old_bins = old_bins,
            new_bins = p.solver.bins(),
        );
        lrd_obs::counter("solver.refines", 1);
        Inner::Protocol(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_traffic::{Marginal, TruncatedPareto};

    fn two_rate_model(cutoff: f64, buffer: f64) -> QueueModel<TruncatedPareto> {
        QueueModel::new(
            Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
            TruncatedPareto::new(0.05, 1.4, cutoff),
            10.0,
            buffer,
        )
    }

    fn underload_model(buffer: f64) -> QueueModel<TruncatedPareto> {
        QueueModel::new(
            Marginal::new(&[2.0, 6.0], &[0.5, 0.5]),
            TruncatedPareto::new(0.05, 1.4, 1.0),
            10.0,
            buffer,
        )
    }

    fn assert_bitwise_equal(a: &LossSolution, b: &LossSolution) {
        assert_eq!(a.lower.to_bits(), b.lower.to_bits());
        assert_eq!(a.upper.to_bits(), b.upper.to_bits());
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.bins, b.bins);
        assert_eq!(a.converged, b.converged);
    }

    #[test]
    fn chunked_stepping_matches_one_shot_bitwise() {
        let model = two_rate_model(1.0, 2.0);
        let opts = SolverOptions::default();
        let one_shot = SolveSession::builder(&model)
            .options(&opts)
            .solve();
        for budget in [1usize, 7, 64, 100_000] {
            let mut session = SolveSession::builder(&model)
                .options(&opts)
                .build()
                .unwrap();
            assert_eq!(session.phase(), SessionPhase::Cold);
            while !session.step_budget(budget) {}
            let (chunked, _) = session.into_result().unwrap();
            assert_bitwise_equal(&chunked, &one_shot);
        }
    }

    #[test]
    fn step_budget_bounds_iterations_per_call() {
        let model = two_rate_model(1.0, 2.0);
        let mut session = SolveSession::builder(&model).build().unwrap();
        let mut prev = 0;
        while !session.step_budget(5) {
            let done = session.iterations();
            assert!(
                done - prev <= 5,
                "budget 5 ran {} iterations",
                done - prev
            );
            prev = done;
            let (lower, upper) = session.bounds().expect("cold steps yield bounds");
            assert!(lower <= upper, "bounds inverted: {lower} > {upper}");
        }
    }

    #[test]
    fn monotone_certificate_resolves_at_build() {
        let opts = SolverOptions::default();
        let (donor_sol, donor_state) = SolveSession::builder(&underload_model(1.0))
            .options(&opts)
            .solve_warm();
        assert!(donor_sol.is_zero());
        let session = SolveSession::builder(&underload_model(1.5))
            .options(&opts)
            .donor(Some(&donor_state))
            .build()
            .unwrap();
        assert_eq!(session.phase(), SessionPhase::Converged);
        assert!(session.is_done());
        let sol = session.solution().unwrap();
        assert_eq!(sol.iterations, 0);
        assert!(sol.is_zero());
    }

    #[test]
    fn seeded_probe_runs_and_falls_back_to_cold() {
        // A handcrafted zero donor at a larger buffer seeds the probe,
        // but the lossy target can never certify: the session must
        // pass through Seeded into Cold and still match the cold
        // verdict bit for bit.
        let opts = SolverOptions::default();
        let bins = 64;
        let donor = WarmState {
            buffer: 5.0,
            bins,
            upper: vec![1.0 / (bins + 1) as f64; bins + 1],
            lower: vec![1.0 / (bins + 1) as f64; bins + 1],
            bracket: (0.0, 0.0),
            zero: true,
        };
        let model = two_rate_model(1.0, 2.0);
        let cold = SolveSession::builder(&model).options(&opts).solve();
        let mut session = SolveSession::builder(&model)
            .options(&opts)
            .donor(Some(&donor))
            .build()
            .unwrap();
        assert_eq!(session.phase(), SessionPhase::Seeded);
        assert!(session.bounds().is_none(), "probe iterates prove nothing");
        let mut saw_cold = false;
        while !session.step_budget(1) {
            saw_cold |= session.phase() == SessionPhase::Cold;
        }
        assert!(saw_cold, "probe must have fallen back to the cold protocol");
        let (warm, _) = session.into_result().unwrap();
        assert_eq!(warm.lower.to_bits(), cold.lower.to_bits());
        assert_eq!(warm.upper.to_bits(), cold.upper.to_bits());
        assert_eq!(warm.bins, cold.bins);
    }

    #[test]
    fn seeded_probe_certifies_chunked() {
        // The descending-buffer probe certificate must also hold when
        // the session is driven one iteration at a time.
        let opts = SolverOptions::sweep_profile();
        let (donor_sol, donor_state) = SolveSession::builder(&two_rate_model(0.01, 3.0))
            .options(&opts)
            .solve_warm();
        assert!(donor_sol.is_zero(), "donor not zero: {donor_sol:?}");
        let mut session = SolveSession::builder(&two_rate_model(0.01, 2.0))
            .options(&opts)
            .donor(Some(&donor_state))
            .build()
            .unwrap();
        assert_eq!(session.phase(), SessionPhase::Seeded);
        while !session.step_budget(1) {}
        let (sol, state) = session.into_result().unwrap();
        assert!(sol.iterations <= PROBE_ITERATIONS);
        assert!(sol.converged && sol.is_zero());
        assert!(state.is_zero());
    }

    #[test]
    fn invalid_options_fail_at_build() {
        let model = two_rate_model(1.0, 2.0);
        let bad = SolverOptions {
            rel_gap: -1.0,
            ..SolverOptions::default()
        };
        let err = SolveSession::builder(&model).options(&bad).build();
        assert!(matches!(
            err,
            Err(SolverError::InvalidOption { option: "rel_gap", .. })
        ));
    }
}
