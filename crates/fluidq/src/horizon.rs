//! The correlation horizon (paper Sec. IV, Eq. 26).
//!
//! The finite buffer "forgets" its past whenever it empties or fills
//! (the *resetting effect*), so correlation in the arrival process at
//! lags beyond the typical reset time cannot influence the loss rate.
//! The paper estimates that horizon by a central-limit argument: the
//! net work drift over `n` intervals is approximately normal, and the
//! probability that the buffer avoids both boundaries for `n` intervals
//! is at most `erf(B / (2√2·√n·σ_T·σ_λ))`. Requiring that no-reset
//! probability to be a small `p` and converting interval counts to time
//! gives Eq. 26:
//!
//! ```text
//! T_CH = B·μ / (2√2 · σ_T · σ_λ · erfinv(p))
//! ```
//!
//! which scales **linearly in the buffer size** — the paper's Fig. 14
//! confirms this on trace-driven simulations, and our reproduction does
//! the same.

use crate::model::QueueModel;
use lrd_specfun::erfinv;
use lrd_traffic::Interarrival;

/// Evaluates Eq. 26 from raw moments: buffer `B` (Mb), mean interval
/// `mu` (s), interval standard deviation `sigma_t` (s), marginal rate
/// standard deviation `sigma_lambda` (Mb/s), and no-reset probability
/// `p ∈ (0, 1)`.
///
/// # Panics
///
/// Panics if any moment is non-positive or `p` is outside `(0, 1)`.
pub fn correlation_horizon(b: f64, mu: f64, sigma_t: f64, sigma_lambda: f64, p: f64) -> f64 {
    assert!(b > 0.0, "buffer must be positive");
    assert!(mu > 0.0, "mean interval must be positive");
    assert!(sigma_t > 0.0, "interval std-dev must be positive");
    assert!(sigma_lambda > 0.0, "rate std-dev must be positive");
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
    b * mu / (2.0 * std::f64::consts::SQRT_2 * sigma_t * sigma_lambda * erfinv(p))
}

/// Evaluates Eq. 26 for a queue model, pulling the moments from its
/// marginal and interval distribution.
///
/// Returns `None` when the interval variance is infinite (untruncated
/// Pareto): the central-limit argument does not apply there.
pub fn model_horizon<D: Interarrival>(model: &QueueModel<D>, p: f64) -> Option<f64> {
    let var_t = model.intervals().variance();
    if !var_t.is_finite() {
        return None;
    }
    Some(correlation_horizon(
        model.buffer(),
        model.intervals().mean(),
        var_t.sqrt(),
        model.marginal().std_dev(),
        p,
    ))
}

/// Extracts the **empirical** correlation horizon from a measured
/// `loss(T_c)` curve: the smallest cutoff lag beyond which the loss
/// rate stays within a relative `tolerance` of its final (largest-`T_c`)
/// value.
///
/// `points` must be sorted by cutoff; returns `None` if even the last
/// point alone cannot satisfy the criterion (it always can) or the
/// input is empty.
pub fn empirical_horizon(points: &[(f64, f64)], tolerance: f64) -> Option<f64> {
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    if points.is_empty() {
        return None;
    }
    assert!(
        points.windows(2).all(|w| w[0].0 <= w[1].0),
        "points must be sorted by cutoff lag"
    );
    let final_loss = points.last().unwrap().1;
    let within = |loss: f64| {
        if final_loss == 0.0 {
            loss == 0.0
        } else {
            ((loss - final_loss) / final_loss).abs() <= tolerance
        }
    };
    // Find the earliest index from which *every* subsequent point is
    // within tolerance.
    let mut horizon_idx = points.len() - 1;
    for i in (0..points.len()).rev() {
        if within(points[i].1) {
            horizon_idx = i;
        } else {
            break;
        }
    }
    Some(points[horizon_idx].0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_traffic::{Marginal, TruncatedPareto};

    #[test]
    fn eq26_linear_in_buffer() {
        let t1 = correlation_horizon(1.0, 0.08, 0.1, 2.0, 0.99);
        let t2 = correlation_horizon(2.0, 0.08, 0.1, 2.0, 0.99);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn eq26_decreases_with_variability() {
        // More variable rates (larger σ_λ) reset the buffer sooner.
        let a = correlation_horizon(1.0, 0.08, 0.1, 1.0, 0.99);
        let b = correlation_horizon(1.0, 0.08, 0.1, 4.0, 0.99);
        assert!(b < a);
        assert!((a / b - 4.0).abs() < 1e-12);
    }

    #[test]
    fn eq26_known_value() {
        // Hand-computed: erfinv(0.99) ≈ 1.8213863677.
        let t = correlation_horizon(10.0, 0.1, 0.2, 5.0, 0.99);
        let want = 10.0 * 0.1 / (2.0 * std::f64::consts::SQRT_2 * 0.2 * 5.0 * 1.821_386_367_718_449_7);
        assert!((t - want).abs() < 1e-12);
    }

    #[test]
    fn model_horizon_finite_and_infinite() {
        let marg = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
        let finite = QueueModel::new(
            marg.clone(),
            TruncatedPareto::new(0.05, 1.4, 1.0),
            10.0,
            2.0,
        );
        assert!(model_horizon(&finite, 0.99).unwrap() > 0.0);
        let infinite = QueueModel::new(
            marg,
            TruncatedPareto::new(0.05, 1.4, f64::INFINITY),
            10.0,
            2.0,
        );
        assert!(model_horizon(&infinite, 0.99).is_none());
    }

    #[test]
    fn empirical_horizon_flat_tail() {
        // Loss grows with T_c then saturates at 0.1 from T_c = 4 on.
        let pts = [
            (1.0, 0.01),
            (2.0, 0.05),
            (4.0, 0.099),
            (8.0, 0.1),
            (16.0, 0.1),
        ];
        let h = empirical_horizon(&pts, 0.05).unwrap();
        assert_eq!(h, 4.0);
    }

    #[test]
    fn empirical_horizon_never_saturating() {
        // Only the final point is within tolerance of itself.
        let pts = [(1.0, 0.01), (2.0, 0.02), (4.0, 0.04), (8.0, 0.08)];
        let h = empirical_horizon(&pts, 0.05).unwrap();
        assert_eq!(h, 8.0);
    }

    #[test]
    fn empirical_horizon_zero_loss() {
        let pts = [(1.0, 0.0), (2.0, 0.0)];
        assert_eq!(empirical_horizon(&pts, 0.1), Some(1.0));
        assert_eq!(empirical_horizon(&[], 0.1), None);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_points_rejected() {
        empirical_horizon(&[(2.0, 0.1), (1.0, 0.2)], 0.1);
    }
}
