//! The Grossglauser–Bolot finite-buffer fluid-queue loss solver.
//!
//! This crate is the paper's primary computational contribution
//! (Sec. II): an efficient numerical procedure that computes **provable
//! lower and upper bounds** on the long-term loss rate of a finite
//! buffer served at constant rate `c` and fed by the cutoff-correlated
//! modulated fluid source of [`lrd_traffic`].
//!
//! # How it works
//!
//! At arrival epochs the queue obeys the Lindley-type recursion
//! `Q(n+1) = max(0, min(B, Q(n) + W(n)))` (paper Eq. 9) with i.i.d.
//! per-interval work increments `W(n) = T_n (λ(n) − c)`. The occupancy
//! axis `[0, B]` is discretized into `M` bins of width `d = B/M`, and
//! *two* discretized chains are iterated (Eq. 16–22):
//!
//! * `Q_L` rounds **down** to the grid and starts **empty** — its loss
//!   is a lower bound, increasing in both the iteration count `n` and
//!   the resolution `M`;
//! * `Q_H` rounds **up** and starts **full** — its loss is an upper
//!   bound, decreasing in `n` and `M` (Proposition II.1).
//!
//! Each iteration is one linear convolution (FFT-accelerated via
//! [`lrd_fft`]) plus boundary folding; the expected loss conditional on
//! the occupancy is known in closed form (Eq. 15), so loss bounds cost
//! one dot product per iteration. When the bounds stall before meeting
//! the target gap the grid is doubled and the iteration warm-restarts
//! from the re-binned coarse solution (the paper's footnote 3).
//!
//! # Entry points
//!
//! * [`QueueModel`] — the queue + traffic description,
//! * [`SolveSession`] / [`SolverOptions`] — the builder-based solve
//!   API: one-shot via [`SessionBuilder::solve`], resumable
//!   budget-bounded refinement via [`SolveSession::step_budget`]
//!   (what the `lrd-serve` daemon's bounded-staleness queries run on),
//! * [`BoundSolver`] — step-by-step iteration with access to the bound
//!   occupancy distributions (reproduces the paper's Fig. 2),
//! * [`horizon`] — the correlation-horizon estimate of Eq. 26 and the
//!   empirical horizon extraction used in Figs. 4–5 and 14,
//! * [`occupancy`] — tail-probability/quantile queries on the bound
//!   chains (the overflow-probability view of footnote 2),
//! * [`design`] — buffer sizing, admission control and multiplexing
//!   searches with certified loss upper bounds.

#![warn(missing_docs)]

pub mod design;
pub mod error;
pub mod history;
pub mod horizon;
pub mod kernel;
pub mod model;
pub mod occupancy;
pub mod solver;
pub mod wdist;

pub use design::{max_utilization_for_loss, min_buffer_for_loss, min_streams_for_loss, Design};
pub use error::{DegradationReason, SolverError};
pub use history::{GapHistory, GapSample, GAP_HISTORY_CAPACITY};
pub use horizon::{correlation_horizon, empirical_horizon};
pub use kernel::LossKernel;
pub use model::QueueModel;
pub use occupancy::Bracket;
#[allow(deprecated)] // the legacy free functions remain exported as shims
pub use solver::{
    solve, solve_warm, try_solve, try_solve_warm, BoundSolver, LossSolution, SolverOptions,
    WarmState, MASS_TOLERANCE,
};
pub use solver::{
    session_run_chunk, set_session_run_chunk, SessionBuilder, SessionPhase, SolveSession,
    DEFAULT_RUN_CHUNK,
};
pub use wdist::WorkDistribution;
