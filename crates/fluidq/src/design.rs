//! Capacity-planning helpers built on the loss solver.
//!
//! The paper's practical conclusions — buffers are ineffective against
//! LRD, marginal shaping and multiplexing are effective — translate
//! into three dimensioning questions a network operator actually asks.
//! Each is answered by a monotone search over [`SolveSession`] solves:
//!
//! * [`min_buffer_for_loss`] — smallest buffer meeting a loss target,
//! * [`max_utilization_for_loss`] — highest load a fixed buffer can
//!   carry at a loss target (by scaling the service rate),
//! * [`min_streams_for_loss`] — fewest multiplexed streams meeting a
//!   loss target with per-stream resources fixed.
//!
//! All searches use the solver's *upper* bound as the safe side: a
//! returned design guarantees `loss <= target` up to the bound's
//! validity, never merely "midpoint below target".

use crate::model::QueueModel;
use crate::solver::{SolveSession, SolverOptions};
use lrd_traffic::{Interarrival, Marginal};

/// Outcome of a dimensioning search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Design {
    /// The chosen parameter value (buffer Mb, utilization, or stream
    /// count as f64).
    pub value: f64,
    /// The solver's certified loss upper bound at that value.
    pub loss_upper_bound: f64,
}

/// Smallest buffer (in Mb, within `rel_tol` relative precision) whose
/// certified loss upper bound meets `target`. Returns `None` if even
/// `max_buffer` cannot meet the target.
///
/// # Panics
///
/// Panics unless `0 < target < 1`, `max_buffer > 0`, and
/// `0 < rel_tol < 1`.
pub fn min_buffer_for_loss<D: Interarrival + Clone>(
    model: &QueueModel<D>,
    target: f64,
    max_buffer: f64,
    rel_tol: f64,
    opts: &SolverOptions,
) -> Option<Design> {
    assert!(target > 0.0 && target < 1.0, "target must be in (0, 1)");
    assert!(max_buffer > 0.0, "max_buffer must be positive");
    assert!(rel_tol > 0.0 && rel_tol < 1.0, "rel_tol must be in (0, 1)");

    let upper_at = |b: f64| {
        SolveSession::builder(&model.with_buffer(b))
            .options(opts)
            .solve()
            .upper
    };

    let mut hi = max_buffer;
    let hi_loss = upper_at(hi);
    if hi_loss > target {
        return None;
    }
    // Find a failing lower bracket (or conclude tiny buffers suffice).
    let mut lo = max_buffer;
    let mut lo_loss = hi_loss;
    for _ in 0..60 {
        lo /= 2.0;
        lo_loss = upper_at(lo);
        if lo_loss > target {
            break;
        }
    }
    if lo_loss <= target {
        return Some(Design {
            value: lo,
            loss_upper_bound: lo_loss,
        });
    }
    // Bisect in log space between failing `lo` and passing `hi`.
    let mut hi_loss = hi_loss;
    while hi / lo > 1.0 + rel_tol {
        let mid = (lo * hi).sqrt();
        let l = upper_at(mid);
        if l <= target {
            hi = mid;
            hi_loss = l;
        } else {
            lo = mid;
        }
    }
    Some(Design {
        value: hi,
        loss_upper_bound: hi_loss,
    })
}

/// Highest utilization (service rate scaled down) at which the
/// certified loss stays within `target`, searched over
/// `[min_utilization, max_utilization]` to `abs_tol` precision.
///
/// The buffer is held at a fixed *normalized* size (seconds), matching
/// how operators provision: delay budgets, not megabits.
pub fn max_utilization_for_loss<D: Interarrival + Clone>(
    marginal: &Marginal,
    intervals: &D,
    buffer_seconds: f64,
    target: f64,
    bounds: (f64, f64),
    abs_tol: f64,
    opts: &SolverOptions,
) -> Option<Design> {
    let (min_u, max_u) = bounds;
    assert!(0.0 < min_u && min_u < max_u && max_u <= 1.0, "bad utilization bounds");
    assert!(target > 0.0 && target < 1.0);
    assert!(abs_tol > 0.0);

    let upper_at = |u: f64| {
        let model = QueueModel::from_utilization(
            marginal.clone(),
            intervals.clone(),
            u,
            buffer_seconds,
        );
        SolveSession::builder(&model).options(opts).solve().upper
    };

    if upper_at(min_u) > target {
        return None;
    }
    let mut lo = min_u; // passes
    let mut hi = max_u; // may fail
    let mut lo_loss = upper_at(min_u);
    if upper_at(hi) <= target {
        return Some(Design {
            value: hi,
            loss_upper_bound: upper_at(hi),
        });
    }
    while hi - lo > abs_tol {
        let mid = 0.5 * (lo + hi);
        let l = upper_at(mid);
        if l <= target {
            lo = mid;
            lo_loss = l;
        } else {
            hi = mid;
        }
    }
    Some(Design {
        value: lo,
        loss_upper_bound: lo_loss,
    })
}

/// Fewest multiplexed streams (1..=max_streams) whose superposed
/// marginal meets the loss target with per-stream service and buffer
/// fixed; `None` if even `max_streams` fails.
///
/// `rebin` controls the superposition re-binning resolution (see
/// [`Marginal::superpose`]).
pub fn min_streams_for_loss<D: Interarrival + Clone>(
    model: &QueueModel<D>,
    target: f64,
    max_streams: usize,
    rebin: usize,
    opts: &SolverOptions,
) -> Option<Design> {
    assert!(target > 0.0 && target < 1.0);
    assert!(max_streams >= 1);
    // Loss is monotone decreasing in the stream count, so a linear
    // scan with early exit is both simple and optimal for the small
    // counts that matter in practice.
    for n in 1..=max_streams {
        let muxed = avoid_service_rate(model.marginal().superpose(n, rebin), model.service_rate());
        let sol = SolveSession::builder(&model.with_marginal(muxed))
            .options(opts)
            .solve();
        if sol.upper <= target {
            return Some(Design {
                value: n as f64,
                loss_upper_bound: sol.upper,
            });
        }
    }
    None
}

/// Superposition re-binning can land a support rate exactly on the
/// service rate, which the model rejects (the paper excludes this
/// trivial case). Nudge any colliding rate by a relative epsilon —
/// the loss effect is far below solver accuracy.
fn avoid_service_rate(marginal: Marginal, c: f64) -> Marginal {
    if marginal.rates().iter().all(|&r| r != c) {
        return marginal;
    }
    let rates: Vec<f64> = marginal
        .rates()
        .iter()
        .map(|&r| if r == c { r * (1.0 + 1e-9) + 1e-12 } else { r })
        .collect();
    Marginal::new(&rates, marginal.probs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_traffic::TruncatedPareto;

    fn model() -> QueueModel<TruncatedPareto> {
        QueueModel::from_utilization(
            Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
            TruncatedPareto::new(0.05, 1.4, 0.5),
            0.8,
            0.1,
        )
    }

    fn opts() -> SolverOptions {
        SolverOptions {
            max_bins: 1 << 12,
            ..SolverOptions::default()
        }
    }

    #[test]
    fn buffer_sizing_meets_target() {
        let m = model();
        let target = 1e-3;
        let d = min_buffer_for_loss(&m, target, m.service_rate() * 20.0, 0.05, &opts())
            .expect("feasible");
        assert!(d.loss_upper_bound <= target);
        // And a ~halved buffer must violate the target (minimality up
        // to the bracket tolerance).
        let smaller = SolveSession::builder(&m.with_buffer(d.value / 2.0))
            .options(&opts())
            .solve();
        assert!(
            smaller.upper > target,
            "buffer {} not minimal: half still gives {:.2e}",
            d.value,
            smaller.upper
        );
    }

    #[test]
    fn buffer_sizing_detects_infeasible() {
        // LRD-ish long cutoff + high load: a tiny max buffer cannot
        // reach a microscopic target.
        let m = model();
        let d = min_buffer_for_loss(&m, 1e-9, m.service_rate() * 0.01, 0.05, &opts());
        assert!(d.is_none());
    }

    #[test]
    fn utilization_search_is_monotone_consistent() {
        let m = model();
        let target = 1e-3;
        let d = max_utilization_for_loss(
            m.marginal(),
            m.intervals(),
            0.1,
            target,
            (0.2, 0.95),
            0.01,
            &opts(),
        )
        .expect("feasible");
        assert!(d.loss_upper_bound <= target);
        assert!(d.value >= 0.2 && d.value <= 0.95);
    }

    #[test]
    fn stream_search_finds_small_counts() {
        let m = model();
        let single = SolveSession::builder(&m).options(&opts()).solve();
        let target = single.upper / 20.0;
        if let Some(d) = min_streams_for_loss(&m, target, 12, 200, &opts()) {
            assert!(d.loss_upper_bound <= target);
            assert!(d.value >= 2.0, "one stream cannot already meet target/20");
        }
        // An impossible target returns None.
        assert!(min_streams_for_loss(&m, 1e-12, 2, 100, &opts()).is_none());
    }
}
