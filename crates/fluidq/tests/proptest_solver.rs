//! Property-based tests of the work-increment discretization and the
//! loss kernel over randomized, well-posed models.

use lrd_fluidq::{LossKernel, QueueModel, WorkDistribution};
use lrd_traffic::{Interarrival, Marginal, TruncatedPareto};
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = QueueModel<TruncatedPareto>> {
    (
        proptest::collection::vec((0.1f64..20.0, 0.05f64..1.0), 2..6),
        1.05f64..1.95,
        0.005f64..0.2,
        prop_oneof![(0.05f64..20.0).boxed(), Just(f64::INFINITY).boxed()],
        0.3f64..0.95,
        0.02f64..1.0,
    )
        .prop_filter_map(
            "rates must differ from the service rate",
            |(pairs, alpha, theta, cutoff, util, buf_s)| {
                let rates: Vec<f64> = pairs.iter().map(|p| p.0).collect();
                let probs: Vec<f64> = pairs.iter().map(|p| p.1).collect();
                let marginal = Marginal::new(&rates, &probs);
                if marginal.mean() <= 0.0 {
                    return None;
                }
                let c = marginal.mean() / util;
                if marginal.rates().iter().any(|&r| (r - c).abs() < 1e-6) {
                    return None;
                }
                let iv = TruncatedPareto::new(theta, alpha, cutoff);
                Some(QueueModel::new(marginal, iv, c, c * buf_s))
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn work_distributions_are_probability_vectors(model in arb_model(), bins in 2usize..200) {
        let w = WorkDistribution::build(&model, bins);
        for (name, v) in [("lower", w.lower()), ("upper", w.upper())] {
            let total: f64 = v.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "{} sums to {}", name, total);
            prop_assert!(v.iter().all(|&p| p >= 0.0), "{} has negative mass", name);
            prop_assert_eq!(v.len(), 2 * bins + 1);
        }
    }

    #[test]
    fn lower_discretization_stochastically_below_upper(model in arb_model(), bins in 2usize..200) {
        let w = WorkDistribution::build(&model, bins);
        let mut cl = 0.0;
        let mut ch = 0.0;
        for i in 0..w.lower().len() {
            cl += w.lower()[i];
            ch += w.upper()[i];
            prop_assert!(cl >= ch - 1e-9, "order violated at bin {}", i);
        }
    }

    #[test]
    fn kernel_monotone_and_bounded(model in arb_model(), bins in 2usize..200) {
        let k = LossKernel::build(&model, bins);
        // Monotone in occupancy.
        for w in k.values().windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        // The full-buffer value is the analytic maximum:
        // Σ_{λ>c} π (λ−c) E[T].
        let cap: f64 = model
            .marginal()
            .rates()
            .iter()
            .zip(model.marginal().probs())
            .filter(|&(&r, _)| r > model.service_rate())
            .map(|(&r, &p)| p * (r - model.service_rate()) * model.intervals().mean())
            .sum();
        let last = *k.values().last().unwrap();
        prop_assert!((last - cap).abs() < 1e-9 * cap.max(1e-12), "{} vs {}", last, cap);
    }

    #[test]
    fn loss_rate_of_any_distribution_is_bounded(model in arb_model(), bins in 2usize..64) {
        // For any occupancy distribution, the implied loss rate lies in
        // [0, overload_fraction].
        let k = LossKernel::build(&model, bins);
        let mut q = vec![0.0; bins + 1];
        q[bins] = 1.0; // worst case: always full
        let l = k.loss_rate(&q);
        let overload: f64 = model
            .marginal()
            .rates()
            .iter()
            .zip(model.marginal().probs())
            .map(|(&r, &p)| p * (r - model.service_rate()).max(0.0))
            .sum::<f64>()
            / model.marginal().mean();
        prop_assert!(l >= 0.0);
        prop_assert!(l <= overload + 1e-9, "loss {} above overload cap {}", l, overload);
    }
}
