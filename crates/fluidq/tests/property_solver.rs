//! Property-based tests of the work-increment discretization and the
//! loss kernel over randomized, well-posed models, run as seeded
//! hand-rolled case loops.

use lrd_fluidq::{LossKernel, QueueModel, WorkDistribution};
use lrd_rng::{rngs::SmallRng, Rng, SeedableRng};
use lrd_traffic::{Interarrival, Marginal, TruncatedPareto};

const CASES: u64 = 48;

/// Draws a random but well-posed queue model: 2–5 rates straddling
/// the service rate, Pareto shape in (1.05, 1.95), various cutoffs.
/// Retries until the filter conditions hold (positive mean, no rate
/// equal to the service rate) — the same admissibility filter the
/// constructors enforce.
fn arb_model(rng: &mut SmallRng) -> QueueModel<TruncatedPareto> {
    loop {
        let n = rng.gen_range(2usize..6);
        let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1f64..20.0)).collect();
        let probs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05f64..1.0)).collect();
        let marginal = Marginal::new(&rates, &probs);
        if marginal.mean() <= 0.0 {
            continue;
        }
        let util = rng.gen_range(0.3f64..0.95);
        let c = marginal.mean() / util;
        if marginal.rates().iter().any(|&r| (r - c).abs() < 1e-6) {
            continue;
        }
        let theta = rng.gen_range(0.005f64..0.2);
        let alpha = rng.gen_range(1.05f64..1.95);
        let cutoff = if rng.gen_bool(0.5) {
            rng.gen_range(0.05f64..20.0)
        } else {
            f64::INFINITY
        };
        let buf_s = rng.gen_range(0.02f64..1.0);
        let iv = TruncatedPareto::new(theta, alpha, cutoff);
        return QueueModel::new(marginal, iv, c, c * buf_s);
    }
}

#[test]
fn work_distributions_are_probability_vectors() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF1_0000 + case);
        let model = arb_model(&mut rng);
        let bins = rng.gen_range(2usize..200);
        let w = WorkDistribution::build(&model, bins);
        for (name, v) in [("lower", w.lower()), ("upper", w.upper())] {
            let total: f64 = v.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "case {case}: {name} sums to {total}");
            assert!(v.iter().all(|&p| p >= 0.0), "case {case}: {name} has negative mass");
            assert_eq!(v.len(), 2 * bins + 1, "case {case}");
        }
    }
}

#[test]
fn lower_discretization_stochastically_below_upper() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF2_0000 + case);
        let model = arb_model(&mut rng);
        let bins = rng.gen_range(2usize..200);
        let w = WorkDistribution::build(&model, bins);
        let mut cl = 0.0;
        let mut ch = 0.0;
        for i in 0..w.lower().len() {
            cl += w.lower()[i];
            ch += w.upper()[i];
            assert!(cl >= ch - 1e-9, "case {case}: order violated at bin {i}");
        }
    }
}

#[test]
fn kernel_monotone_and_bounded() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF3_0000 + case);
        let model = arb_model(&mut rng);
        let bins = rng.gen_range(2usize..200);
        let k = LossKernel::build(&model, bins);
        // Monotone in occupancy.
        for w in k.values().windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "case {case}");
        }
        // The full-buffer value is the analytic maximum:
        // Σ_{λ>c} π (λ−c) E[T].
        let cap: f64 = model
            .marginal()
            .rates()
            .iter()
            .zip(model.marginal().probs())
            .filter(|&(&r, _)| r > model.service_rate())
            .map(|(&r, &p)| p * (r - model.service_rate()) * model.intervals().mean())
            .sum();
        let last = *k.values().last().unwrap();
        assert!(
            (last - cap).abs() < 1e-9 * cap.max(1e-12),
            "case {case}: {last} vs {cap}"
        );
    }
}

#[test]
fn loss_rate_of_any_distribution_is_bounded() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF4_0000 + case);
        let model = arb_model(&mut rng);
        let bins = rng.gen_range(2usize..64);
        // For any occupancy distribution, the implied loss rate lies in
        // [0, overload_fraction].
        let k = LossKernel::build(&model, bins);
        let mut q = vec![0.0; bins + 1];
        q[bins] = 1.0; // worst case: always full
        let l = k.loss_rate(&q);
        let overload: f64 = model
            .marginal()
            .rates()
            .iter()
            .zip(model.marginal().probs())
            .map(|(&r, &p)| p * (r - model.service_rate()).max(0.0))
            .sum::<f64>()
            / model.marginal().mean();
        assert!(l >= 0.0, "case {case}");
        assert!(l <= overload + 1e-9, "case {case}: loss {l} above overload cap {overload}");
    }
}
