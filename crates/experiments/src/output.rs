//! Result containers and plain-text/CSV rendering.
//!
//! The experiment binaries print CSV so the paper's figures can be
//! re-plotted with any tool, plus a coarse ASCII rendering for eyeball
//! checks in the terminal. No serialization crates are needed — the
//! data are small numeric tables.

use std::fmt::Write as _;

/// A named 1-D series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Display name (becomes the CSV column header).
    pub name: String,
    /// The points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }
}

/// A labelled 2-D grid of values, `values[i][j]` at `(ys[i], xs[j])`.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Label of the x axis (columns).
    pub x_label: String,
    /// Label of the y axis (rows).
    pub y_label: String,
    /// Label of the cell values.
    pub value_label: String,
    /// Column coordinates.
    pub xs: Vec<f64>,
    /// Row coordinates.
    pub ys: Vec<f64>,
    /// Row-major values; `values.len() == ys.len()`, each row
    /// `xs.len()` long.
    pub values: Vec<Vec<f64>>,
}

impl Grid {
    /// Validates shape invariants.
    ///
    /// # Panics
    ///
    /// Panics if the value matrix does not match the axes.
    pub fn validate(&self) {
        assert_eq!(self.values.len(), self.ys.len(), "row count mismatch");
        for row in &self.values {
            assert_eq!(row.len(), self.xs.len(), "column count mismatch");
        }
    }

    /// One row as a [`Series`] over the x axis.
    pub fn row_series(&self, i: usize) -> Series {
        Series::new(
            format!("{}={}", self.y_label, self.ys[i]),
            self.xs.iter().copied().zip(self.values[i].iter().copied()).collect(),
        )
    }

    /// Renders the grid as long-format CSV (`y,x,value` rows).
    pub fn to_csv(&self) -> String {
        self.validate();
        let mut out = String::new();
        let _ = writeln!(out, "{},{},{}", self.y_label, self.x_label, self.value_label);
        for (i, &y) in self.ys.iter().enumerate() {
            for (j, &x) in self.xs.iter().enumerate() {
                let _ = writeln!(out, "{},{},{}", fmt_num(y), fmt_num(x), fmt_num(self.values[i][j]));
            }
        }
        out
    }

    /// Renders a compact fixed-width table (rows = y, columns = x),
    /// values in scientific notation.
    pub fn to_table(&self) -> String {
        self.validate();
        let mut out = String::new();
        let _ = write!(out, "{:>12} |", format!("{}\\{}", self.y_label, self.x_label));
        for &x in &self.xs {
            let _ = write!(out, " {:>10}", trim_sig(x));
        }
        let _ = writeln!(out);
        let width = 14 + 11 * self.xs.len();
        let _ = writeln!(out, "{}", "-".repeat(width));
        for (i, &y) in self.ys.iter().enumerate() {
            let _ = write!(out, "{:>12} |", trim_sig(y));
            for v in &self.values[i] {
                let _ = write!(out, " {:>10}", format_loss(*v));
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Renders multiple series as wide-format CSV on a shared x column.
///
/// All series must have identical x coordinates.
///
/// # Panics
///
/// Panics if the series' x grids differ.
pub fn series_to_csv(x_label: &str, series: &[Series]) -> String {
    assert!(!series.is_empty(), "need at least one series");
    let xs: Vec<f64> = series[0].points.iter().map(|p| p.0).collect();
    for s in series {
        let this: Vec<f64> = s.points.iter().map(|p| p.0).collect();
        assert_eq!(this, xs, "series '{}' has a different x grid", s.name);
    }
    let mut out = String::new();
    let _ = write!(out, "{x_label}");
    for s in series {
        let _ = write!(out, ",{}", s.name);
    }
    let _ = writeln!(out);
    for (i, &x) in xs.iter().enumerate() {
        let _ = write!(out, "{}", fmt_num(x));
        for s in series {
            let _ = write!(out, ",{}", fmt_num(s.points[i].1));
        }
        let _ = writeln!(out);
    }
    out
}

/// Writes a string to `results/<name>` under the workspace root,
/// creating the directory if needed. Returns the path written.
pub fn write_results_file(name: &str, contents: &str) -> std::io::Result<std::path::PathBuf> {
    // `LRD_RESULTS_DIR` redirects the output (the CI smoke step uses a
    // temp dir so a `--quick` run never clobbers the checked-in
    // full-profile CSVs).
    let dir = match std::env::var_os("LRD_RESULTS_DIR") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .join("results"),
    };
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

fn fmt_num(v: f64) -> String {
    if v == f64::INFINITY {
        "inf".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e-3 && v.abs() < 1e6 {
        let s = format!("{v:.6}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        format!("{v:.6e}")
    }
}

fn trim_sig(v: f64) -> String {
    if v == f64::INFINITY {
        "inf".to_string()
    } else {
        let s = format!("{v:.3}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

/// Formats a loss rate for tables: `0` or scientific with two digits.
fn format_loss(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_csv_long_format() {
        let g = Grid {
            x_label: "tc".into(),
            y_label: "b".into(),
            value_label: "loss".into(),
            xs: vec![1.0, 2.0],
            ys: vec![0.5],
            values: vec![vec![0.1, 0.0]],
        };
        let csv = g.to_csv();
        assert!(csv.starts_with("b,tc,loss\n"));
        assert!(csv.contains("0.5,1,0.1"));
        assert!(csv.contains("0.5,2,0"));
    }

    #[test]
    fn grid_table_renders() {
        let g = Grid {
            x_label: "tc".into(),
            y_label: "b".into(),
            value_label: "loss".into(),
            xs: vec![1.0, f64::INFINITY],
            ys: vec![0.5, 5.0],
            values: vec![vec![0.1, 0.2], vec![0.0, 1e-9]],
        };
        let t = g.to_table();
        assert!(t.contains("inf"));
        assert!(t.contains("1.00e-9"));
    }

    #[test]
    fn series_csv_wide_format() {
        let s1 = Series::new("mtv", vec![(1.0, 0.1), (2.0, 0.2)]);
        let s2 = Series::new("bc", vec![(1.0, 0.3), (2.0, 0.4)]);
        let csv = series_to_csv("tc", &[s1, s2]);
        assert!(csv.starts_with("tc,mtv,bc\n"));
        assert!(csv.contains("1,0.1,0.3"));
    }

    #[test]
    #[should_panic(expected = "different x grid")]
    fn mismatched_series_rejected() {
        let s1 = Series::new("a", vec![(1.0, 0.1)]);
        let s2 = Series::new("b", vec![(2.0, 0.3)]);
        series_to_csv("x", &[s1, s2]);
    }

    #[test]
    fn row_series_extraction() {
        let g = Grid {
            x_label: "x".into(),
            y_label: "y".into(),
            value_label: "v".into(),
            xs: vec![1.0, 2.0],
            ys: vec![10.0],
            values: vec![vec![0.5, 0.6]],
        };
        let s = g.row_series(0);
        assert_eq!(s.points, vec![(1.0, 0.5), (2.0, 0.6)]);
    }

    #[test]
    #[should_panic(expected = "row count")]
    fn grid_validation() {
        Grid {
            x_label: "x".into(),
            y_label: "y".into(),
            value_label: "v".into(),
            xs: vec![1.0],
            ys: vec![1.0, 2.0],
            values: vec![vec![0.0]],
        }
        .validate();
    }
}
