//! Shared command-line handling for the figure binaries.
//!
//! Every binary accepts the same arguments (`--quick`, `--telemetry`,
//! `--telemetry-summary`, `--threads`, `--shard`, `--checkpoint`,
//! `--assignment`, `--steal` and `--help`), so parsing lives here. Invalid
//! invocations produce a typed [`CliError`] — the binaries print it to
//! stderr and exit with status 1 instead of silently ignoring unknown
//! flags (the degradation contract in DESIGN.md: bad configuration is
//! an error, not a guess).

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use crate::sweep::ShardSpec;

/// How a figure binary should run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunConfig {
    /// Use the reduced quick-profile grids (`--quick`).
    pub quick: bool,
    /// Write structured JSONL telemetry to this path
    /// (`--telemetry <path>`).
    pub telemetry: Option<PathBuf>,
    /// Print the aggregated telemetry table to stderr on exit
    /// (`--telemetry-summary`).
    pub telemetry_summary: bool,
    /// Write the aggregated telemetry table to this file instead
    /// (`--telemetry-summary=<path>`); composes with the stderr form.
    pub telemetry_summary_file: Option<PathBuf>,
    /// Size the global worker pool to this many threads (`--threads N`).
    /// `None` defers to `LRD_THREADS` or the detected parallelism;
    /// `Some(1)` forces the bit-for-bit-identical serial path.
    pub threads: Option<usize>,
    /// Solve only this slice of the figure's sweep lattice
    /// (`--shard i/n`). `None` means the full lattice.
    pub shard: Option<ShardSpec>,
    /// Stream completed sweep points to this JSONL file and resume
    /// from it when it already exists (`--checkpoint <path>`).
    pub checkpoint: Option<PathBuf>,
    /// Take this shard's point set from a planner-produced assignment
    /// file (`--assignment <path>`, written by `sweep_plan`) instead
    /// of the round-robin rule. Requires `--shard i/n` to pick the row.
    pub assignment: Option<PathBuf>,
    /// Run as a work-stealing worker against the `sweep_coord`
    /// coordinator at this endpoint (`--steal host:port` or
    /// `--steal unix:<path>`). Requires `--checkpoint`; mutually
    /// exclusive with `--shard`/`--assignment` (the coordinator, not a
    /// static split, decides which points this process solves).
    pub steal: Option<String>,
}

impl RunConfig {
    /// The telemetry sinks this configuration asks for: a JSONL writer
    /// when `--telemetry` was given, a summary table (to a file and/or
    /// stderr) when `--telemetry-summary` was. Empty (telemetry stays
    /// disabled) with neither flag. Harnesses that want to observe the
    /// run themselves can append their own sink before installing.
    ///
    /// # Errors
    ///
    /// [`CliError::Io`] naming the sink file that could not be created
    /// — the `--telemetry` JSONL path or the `--telemetry-summary`
    /// file, whichever actually failed.
    pub fn build_subscribers(&self) -> Result<Vec<Arc<dyn lrd_obs::Subscriber>>, CliError> {
        let io_error = |path: &PathBuf, e: std::io::Error| CliError::Io {
            path: path.clone(),
            message: e.to_string(),
        };
        let mut sinks: Vec<Arc<dyn lrd_obs::Subscriber>> = Vec::new();
        if let Some(path) = &self.telemetry {
            let mut sink =
                lrd_obs::JsonlSubscriber::create(path).map_err(|e| io_error(path, e))?;
            // In steal mode, stamp records with the same worker
            // identity the coordinator sees (adopted from the
            // checkpoint, cached for the process) instead of the pid
            // default — `sweep_trace` joins the two by this name.
            if self.steal.is_some() {
                if let Some(checkpoint) = &self.checkpoint {
                    sink = sink
                        .with_identity(&crate::sweep::coord::worker_identity(checkpoint));
                }
            }
            sinks.push(Arc::new(sink));
        }
        if let Some(path) = &self.telemetry_summary_file {
            let file = std::fs::File::create(path).map_err(|e| io_error(path, e))?;
            sinks.push(Arc::new(lrd_obs::SummarySubscriber::to_writer(Box::new(
                file,
            ))));
        }
        if self.telemetry_summary {
            sinks.push(Arc::new(lrd_obs::SummarySubscriber::stderr()));
        }
        Ok(sinks)
    }

    /// Installs the configured telemetry sinks for the lifetime of the
    /// returned guard — the one-liner every figure binary calls right
    /// after parsing. A no-op guard when no telemetry was requested.
    ///
    /// # Errors
    ///
    /// An unwritable sink path surfaces as [`CliError::Io`] naming the
    /// path that failed; deciding what to do with it (the binaries
    /// print and exit 1) stays with the caller — library code never
    /// terminates the process.
    pub fn install_telemetry(&self) -> Result<lrd_obs::InstallGuard, CliError> {
        Ok(lrd_obs::install_fanout(self.build_subscribers()?))
    }
}

/// Why the command line was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// An argument no figure binary understands.
    UnknownArgument(String),
    /// A flag that needs a value was given without one.
    MissingValue(&'static str),
    /// A flag value that does not parse (e.g. `--threads zero`).
    InvalidValue(&'static str, String),
    /// A `--shard` value that is not of the form `i/n` with
    /// `0 <= i < n`.
    InvalidShard(String),
    /// A `--steal` value that is neither `host:port` nor `unix:<path>`.
    InvalidEndpoint(String),
    /// A file named on the command line could not be opened.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The rendered OS error.
        message: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownArgument(arg) => {
                write!(
                    f,
                    "unknown argument `{arg}` (expected --quick, --threads <n>, \
                     --shard <i/n>, --checkpoint <path>, --assignment <path>, \
                     --steal <endpoint>, --telemetry <path>, \
                     --telemetry-summary[=<path>] or --help)"
                )
            }
            CliError::MissingValue(flag) => {
                write!(f, "{flag} requires a value")
            }
            CliError::InvalidValue(flag, value) => {
                write!(f, "{flag} requires a positive integer, got `{value}`")
            }
            CliError::InvalidShard(value) => {
                write!(
                    f,
                    "--shard requires the form i/n with 0 <= i < n (e.g. 0/4), got `{value}`"
                )
            }
            CliError::InvalidEndpoint(value) => {
                write!(
                    f,
                    "--steal requires host:port or unix:<path> \
                     (e.g. 127.0.0.1:7077), got `{value}`"
                )
            }
            CliError::Io { path, message } => {
                write!(f, "cannot open sink file {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Parses an argument list (without the program name).
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<RunConfig, CliError> {
    let mut config = RunConfig::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => config.quick = true,
            "--telemetry" => {
                let path = args.next().ok_or(CliError::MissingValue("--telemetry"))?;
                config.telemetry = Some(PathBuf::from(path));
            }
            "--telemetry-summary" => config.telemetry_summary = true,
            "--threads" => {
                let n = args.next().ok_or(CliError::MissingValue("--threads"))?;
                config.threads = Some(parse_threads(&n)?);
            }
            "--shard" => {
                let s = args.next().ok_or(CliError::MissingValue("--shard"))?;
                config.shard = Some(parse_shard(&s)?);
            }
            "--checkpoint" => {
                let path = args.next().ok_or(CliError::MissingValue("--checkpoint"))?;
                config.checkpoint = Some(PathBuf::from(path));
            }
            "--assignment" => {
                let path = args.next().ok_or(CliError::MissingValue("--assignment"))?;
                config.assignment = Some(PathBuf::from(path));
            }
            "--steal" => {
                let endpoint = args.next().ok_or(CliError::MissingValue("--steal"))?;
                config.steal = Some(parse_endpoint(&endpoint)?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: <figure binary> [--quick] [--threads <n>] \
                     [--shard <i/n> --checkpoint <path> [--assignment <path>]] \
                     [--steal <endpoint> --checkpoint <path>] \
                     [--telemetry <path.jsonl>] [--telemetry-summary[=<path>]]\n\
                     \n\
                     --quick              reduced grids (seconds instead of minutes)\n\
                     --threads <n>        size the worker pool (default: LRD_THREADS\n\
                     \u{20}                    env var, else detected parallelism;\n\
                     \u{20}                    1 = serial, bit-for-bit reproducible)\n\
                     --shard <i/n>        solve only shard i of an n-way round-robin\n\
                     \u{20}                    split of the sweep lattice (sweep\n\
                     \u{20}                    figures only; requires --checkpoint)\n\
                     --checkpoint <path>  stream completed points to <path> (JSONL)\n\
                     \u{20}                    and resume from it if it exists; merge\n\
                     \u{20}                    shards with the sweep_merge binary\n\
                     --assignment <path>  take shard i's point set from this\n\
                     \u{20}                    sweep_plan-produced assignment file\n\
                     \u{20}                    instead of the round-robin rule\n\
                     --steal <endpoint>   run as a work-stealing worker against the\n\
                     \u{20}                    sweep_coord coordinator at host:port or\n\
                     \u{20}                    unix:<path> (sweep figures only; requires\n\
                     \u{20}                    --checkpoint, excludes --shard)\n\
                     --telemetry <path>   write structured JSONL telemetry (solver\n\
                     \u{20}                    spans, per-iteration gaps, refinements,\n\
                     \u{20}                    metrics) to <path>\n\
                     --telemetry-summary[=<path>]\n\
                     \u{20}                    print an aggregated timing/metrics table\n\
                     \u{20}                    to stderr (or write it to <path>) on exit\n\
                     --help               this message\n\
                     \n\
                     Output: CSV on stdout, progress on stderr, results\n\
                     file under results/."
                );
                std::process::exit(0);
            }
            other if other.starts_with("--threads=") => {
                let n = &other["--threads=".len()..];
                if n.is_empty() {
                    return Err(CliError::MissingValue("--threads"));
                }
                config.threads = Some(parse_threads(n)?);
            }
            other if other.starts_with("--telemetry=") => {
                let path = &other["--telemetry=".len()..];
                if path.is_empty() {
                    return Err(CliError::MissingValue("--telemetry"));
                }
                config.telemetry = Some(PathBuf::from(path));
            }
            other if other.starts_with("--telemetry-summary=") => {
                let path = &other["--telemetry-summary=".len()..];
                if path.is_empty() {
                    return Err(CliError::MissingValue("--telemetry-summary"));
                }
                config.telemetry_summary_file = Some(PathBuf::from(path));
            }
            other if other.starts_with("--shard=") => {
                let s = &other["--shard=".len()..];
                if s.is_empty() {
                    return Err(CliError::MissingValue("--shard"));
                }
                config.shard = Some(parse_shard(s)?);
            }
            other if other.starts_with("--checkpoint=") => {
                let path = &other["--checkpoint=".len()..];
                if path.is_empty() {
                    return Err(CliError::MissingValue("--checkpoint"));
                }
                config.checkpoint = Some(PathBuf::from(path));
            }
            other if other.starts_with("--assignment=") => {
                let path = &other["--assignment=".len()..];
                if path.is_empty() {
                    return Err(CliError::MissingValue("--assignment"));
                }
                config.assignment = Some(PathBuf::from(path));
            }
            other if other.starts_with("--steal=") => {
                let endpoint = &other["--steal=".len()..];
                if endpoint.is_empty() {
                    return Err(CliError::MissingValue("--steal"));
                }
                config.steal = Some(parse_endpoint(endpoint)?);
            }
            other => return Err(CliError::UnknownArgument(other.to_string())),
        }
    }
    Ok(config)
}

fn parse_threads(value: &str) -> Result<usize, CliError> {
    match value.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(CliError::InvalidValue("--threads", value.to_string())),
    }
}

fn parse_shard(value: &str) -> Result<ShardSpec, CliError> {
    ShardSpec::parse(value).ok_or_else(|| CliError::InvalidShard(value.to_string()))
}

fn parse_endpoint(value: &str) -> Result<String, CliError> {
    crate::sweep::coord::Endpoint::parse(value)
        .map(|_| value.to_string())
        .ok_or_else(|| CliError::InvalidEndpoint(value.to_string()))
}

/// Parses `std::env::args()`, printing a typed error and exiting with
/// status 1 on an invalid command line — the shared entry point of all
/// figure binaries. A `--threads` request is applied to the global
/// worker pool here, before any solver work can touch it.
pub fn run_config() -> RunConfig {
    match parse(std::env::args().skip(1)) {
        Ok(config) => {
            if let Some(n) = config.threads {
                if !lrd_pool::set_global_threads(n) {
                    eprintln!(
                        "warning: worker pool already started; --threads {n} ignored"
                    );
                }
            }
            config
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_is_full_profile() {
        assert_eq!(parse(strings(&[])), Ok(RunConfig::default()));
    }

    #[test]
    fn quick_flag() {
        let config = parse(strings(&["--quick"])).unwrap();
        assert!(config.quick);
        assert!(config.telemetry.is_none());
        assert!(!config.telemetry_summary);
    }

    #[test]
    fn telemetry_flags() {
        let config =
            parse(strings(&["--telemetry", "out.jsonl", "--telemetry-summary"])).unwrap();
        assert_eq!(config.telemetry, Some(PathBuf::from("out.jsonl")));
        assert!(config.telemetry_summary);
        assert!(config.telemetry_summary_file.is_none());
        let config = parse(strings(&["--telemetry=t.jsonl"])).unwrap();
        assert_eq!(config.telemetry, Some(PathBuf::from("t.jsonl")));
        // The `=` form of --telemetry-summary writes the table to a
        // file and does not imply the stderr table.
        let config = parse(strings(&["--telemetry-summary=s.txt"])).unwrap();
        assert_eq!(config.telemetry_summary_file, Some(PathBuf::from("s.txt")));
        assert!(!config.telemetry_summary);
        assert_eq!(
            parse(strings(&["--telemetry-summary="])),
            Err(CliError::MissingValue("--telemetry-summary"))
        );
    }

    #[test]
    fn telemetry_without_path_is_a_typed_error() {
        assert_eq!(
            parse(strings(&["--telemetry"])),
            Err(CliError::MissingValue("--telemetry"))
        );
        assert_eq!(
            parse(strings(&["--telemetry="])),
            Err(CliError::MissingValue("--telemetry"))
        );
    }

    #[test]
    fn threads_flag_both_spellings() {
        let config = parse(strings(&["--threads", "4"])).unwrap();
        assert_eq!(config.threads, Some(4));
        let config = parse(strings(&["--threads=2", "--quick"])).unwrap();
        assert_eq!(config.threads, Some(2));
        assert!(config.quick);
    }

    #[test]
    fn threads_value_is_validated() {
        assert_eq!(
            parse(strings(&["--threads"])),
            Err(CliError::MissingValue("--threads"))
        );
        assert_eq!(
            parse(strings(&["--threads="])),
            Err(CliError::MissingValue("--threads"))
        );
        for bad in ["0", "-1", "two", "1.5"] {
            assert_eq!(
                parse(strings(&["--threads", bad])),
                Err(CliError::InvalidValue("--threads", bad.to_string())),
                "--threads {bad} should be rejected"
            );
        }
        let e = parse(strings(&["--threads", "0"])).unwrap_err();
        assert!(e.to_string().contains("--threads"));
        assert!(e.to_string().contains('0'));
    }

    #[test]
    fn unknown_arguments_are_typed_errors() {
        for bad in ["--fast", "quick", "-q", "--buffer=2", "extra"] {
            match parse(strings(&[bad])) {
                Err(CliError::UnknownArgument(a)) => assert_eq!(a, bad),
                other => panic!("expected UnknownArgument for {bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn error_message_names_the_argument() {
        let e = parse(strings(&["--bogus"])).unwrap_err();
        assert!(e.to_string().contains("--bogus"));
        assert!(parse(strings(&["--telemetry"]))
            .unwrap_err()
            .to_string()
            .contains("--telemetry"));
    }

    #[test]
    fn shard_flag_both_spellings() {
        let config = parse(strings(&["--shard", "1/4"])).unwrap();
        assert_eq!(config.shard, Some(ShardSpec::new(1, 4).unwrap()));
        let config = parse(strings(&["--shard=0/2", "--checkpoint=ck.jsonl"])).unwrap();
        assert_eq!(config.shard, Some(ShardSpec::new(0, 2).unwrap()));
        assert_eq!(config.checkpoint, Some(PathBuf::from("ck.jsonl")));
        let config = parse(strings(&["--checkpoint", "shard.jsonl"])).unwrap();
        assert_eq!(config.checkpoint, Some(PathBuf::from("shard.jsonl")));
        assert_eq!(config.shard, None);
    }

    #[test]
    fn shard_value_is_validated() {
        assert_eq!(
            parse(strings(&["--shard"])),
            Err(CliError::MissingValue("--shard"))
        );
        assert_eq!(
            parse(strings(&["--shard="])),
            Err(CliError::MissingValue("--shard"))
        );
        assert_eq!(
            parse(strings(&["--checkpoint"])),
            Err(CliError::MissingValue("--checkpoint"))
        );
        for bad in ["2", "2/2", "3/2", "1/0", "a/b", "-1/2"] {
            assert_eq!(
                parse(strings(&["--shard", bad])),
                Err(CliError::InvalidShard(bad.to_string())),
                "--shard {bad} should be rejected"
            );
        }
        let e = parse(strings(&["--shard", "9/3"])).unwrap_err();
        assert!(e.to_string().contains("9/3"));
        assert!(e.to_string().contains("i/n"));
    }

    #[test]
    fn unwritable_telemetry_is_a_typed_error() {
        let config = RunConfig {
            telemetry: Some(PathBuf::from("/nonexistent-dir-for-cli-test/t.jsonl")),
            ..RunConfig::default()
        };
        let err = config
            .install_telemetry()
            .map(|_guard| ())
            .expect_err("an unwritable path must fail");
        match err {
            CliError::Io { path, message } => {
                assert_eq!(path, PathBuf::from("/nonexistent-dir-for-cli-test/t.jsonl"));
                assert!(!message.is_empty());
            }
            other => panic!("expected CliError::Io, got {other:?}"),
        }
    }

    #[test]
    fn sink_errors_name_the_failing_path_not_the_telemetry_flag() {
        // Regression: the error used to be attributed to the
        // --telemetry path unconditionally (or to "?" when none was
        // given), even when a different sink failed to open.
        let bad = PathBuf::from("/nonexistent-dir-for-cli-test/summary.txt");

        // No --telemetry at all: the old code reported path "?".
        let config = RunConfig {
            telemetry_summary_file: Some(bad.clone()),
            ..RunConfig::default()
        };
        match config.install_telemetry().map(|_g| ()).unwrap_err() {
            CliError::Io { path, .. } => assert_eq!(path, bad),
            other => panic!("expected CliError::Io, got {other:?}"),
        }

        // A perfectly writable --telemetry plus a failing summary
        // file: the old code blamed the telemetry path.
        let dir = std::env::temp_dir().join(format!("lrd-cli-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("t.jsonl");
        let config = RunConfig {
            telemetry: Some(good.clone()),
            telemetry_summary_file: Some(bad.clone()),
            ..RunConfig::default()
        };
        match config.install_telemetry().map(|_g| ()).unwrap_err() {
            CliError::Io { path, .. } => {
                assert_eq!(path, bad, "must blame the sink that failed");
                assert_ne!(path, good);
            }
            other => panic!("expected CliError::Io, got {other:?}"),
        }
    }

    #[test]
    fn no_flags_build_no_subscribers() {
        let sinks = RunConfig::default().build_subscribers().unwrap();
        assert!(sinks.is_empty());
    }

    #[test]
    fn summary_flag_builds_one_subscriber() {
        let config = RunConfig {
            telemetry_summary: true,
            ..RunConfig::default()
        };
        assert_eq!(config.build_subscribers().unwrap().len(), 1);
    }

    #[test]
    fn steal_flag_both_spellings_and_validation() {
        let config = parse(strings(&["--steal", "127.0.0.1:7077"])).unwrap();
        assert_eq!(config.steal, Some("127.0.0.1:7077".to_string()));
        let config = parse(strings(&["--steal=unix:/tmp/coord.sock", "--quick"])).unwrap();
        assert_eq!(config.steal, Some("unix:/tmp/coord.sock".to_string()));
        assert_eq!(
            parse(strings(&["--steal"])),
            Err(CliError::MissingValue("--steal"))
        );
        assert_eq!(
            parse(strings(&["--steal="])),
            Err(CliError::MissingValue("--steal"))
        );
        for bad in ["nocolon", "unix:"] {
            assert_eq!(
                parse(strings(&["--steal", bad])),
                Err(CliError::InvalidEndpoint(bad.to_string())),
                "--steal {bad} should be rejected"
            );
        }
        let e = parse(strings(&["--steal", "nocolon"])).unwrap_err();
        assert!(e.to_string().contains("host:port"));
    }

    #[test]
    fn assignment_flag_both_spellings() {
        let config = parse(strings(&["--assignment", "plan.json"])).unwrap();
        assert_eq!(config.assignment, Some(PathBuf::from("plan.json")));
        let config = parse(strings(&["--assignment=p.json", "--shard=0/2"])).unwrap();
        assert_eq!(config.assignment, Some(PathBuf::from("p.json")));
        assert_eq!(
            parse(strings(&["--assignment"])),
            Err(CliError::MissingValue("--assignment"))
        );
        assert_eq!(
            parse(strings(&["--assignment="])),
            Err(CliError::MissingValue("--assignment"))
        );
    }
}
