//! Shared command-line handling for the figure binaries.
//!
//! Every binary accepts the same arguments (`--quick` and `--help`),
//! so parsing lives here. Invalid invocations produce a typed
//! [`CliError`] — the binaries print it to stderr and exit with status
//! 1 instead of silently ignoring unknown flags (the degradation
//! contract in DESIGN.md: bad configuration is an error, not a guess).

use std::fmt;

/// How a figure binary should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunConfig {
    /// Use the reduced quick-profile grids (`--quick`).
    pub quick: bool,
}

/// Why the command line was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// An argument no figure binary understands.
    UnknownArgument(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownArgument(arg) => {
                write!(f, "unknown argument `{arg}` (expected --quick or --help)")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Parses an argument list (without the program name).
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<RunConfig, CliError> {
    let mut config = RunConfig::default();
    for arg in args {
        match arg.as_str() {
            "--quick" => config.quick = true,
            "--help" | "-h" => {
                println!(
                    "usage: <figure binary> [--quick]\n\
                     \n\
                     --quick   reduced grids (seconds instead of minutes)\n\
                     --help    this message\n\
                     \n\
                     Output: CSV on stdout, progress on stderr, results\n\
                     file under results/."
                );
                std::process::exit(0);
            }
            other => return Err(CliError::UnknownArgument(other.to_string())),
        }
    }
    Ok(config)
}

/// Parses `std::env::args()`, printing a typed error and exiting with
/// status 1 on an invalid command line — the shared entry point of all
/// figure binaries.
pub fn run_config() -> RunConfig {
    match parse(std::env::args().skip(1)) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_is_full_profile() {
        assert_eq!(parse(strings(&[])), Ok(RunConfig { quick: false }));
    }

    #[test]
    fn quick_flag() {
        assert_eq!(parse(strings(&["--quick"])), Ok(RunConfig { quick: true }));
    }

    #[test]
    fn unknown_arguments_are_typed_errors() {
        for bad in ["--fast", "quick", "-q", "--buffer=2", "extra"] {
            match parse(strings(&[bad])) {
                Err(CliError::UnknownArgument(a)) => assert_eq!(a, bad),
                other => panic!("expected UnknownArgument for {bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn error_message_names_the_argument() {
        let e = parse(strings(&["--bogus"])).unwrap_err();
        assert!(e.to_string().contains("--bogus"));
    }
}
