//! Command-line handling for the figure binaries, layered over the
//! workspace-shared parser in [`lrd_cli`].
//!
//! Every figure binary accepts exactly the shared flag set (`--quick`,
//! `--telemetry`, `--telemetry-summary`, `--threads`, `--shard`,
//! `--checkpoint`, `--assignment`, `--steal` and `--help`), so the
//! only figure-specific pieces left here are the `--help` text and the
//! steal-mode worker-identity stamping. Invalid invocations produce a
//! typed [`CliError`] — the binaries print it to stderr and exit with
//! status 1 instead of silently ignoring unknown flags (the
//! degradation contract in DESIGN.md: bad configuration is an error,
//! not a guess).

pub use lrd_cli::{CliError, CommonArgs, ShardArg};

/// How a figure binary should run — the workspace-shared flag set.
pub type RunConfig = lrd_cli::CommonArgs;

/// Parses an argument list (without the program name).
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<RunConfig, CliError> {
    CommonArgs::parse_with(args, |arg, _args| match arg {
        "--help" | "-h" => {
            println!("{FIGURE_USAGE}");
            std::process::exit(0);
        }
        _ => Ok(false),
    })
}

const FIGURE_USAGE: &str = "usage: <figure binary> [--quick] [--threads <n>] \
     [--shard <i/n> --checkpoint <path> [--assignment <path>]] \
     [--steal <endpoint> --checkpoint <path>] \
     [--telemetry <path.jsonl>] [--telemetry-summary[=<path>]]\n\
     \n\
     --quick              reduced grids (seconds instead of minutes)\n\
     --threads <n>        size the worker pool (default: LRD_THREADS\n\
     \u{20}                    env var, else detected parallelism;\n\
     \u{20}                    1 = serial, bit-for-bit reproducible)\n\
     --shard <i/n>        solve only shard i of an n-way round-robin\n\
     \u{20}                    split of the sweep lattice (sweep\n\
     \u{20}                    figures only; requires --checkpoint)\n\
     --checkpoint <path>  stream completed points to <path> (JSONL)\n\
     \u{20}                    and resume from it if it exists; merge\n\
     \u{20}                    shards with the sweep_merge binary\n\
     --assignment <path>  take shard i's point set from this\n\
     \u{20}                    sweep_plan-produced assignment file\n\
     \u{20}                    instead of the round-robin rule\n\
     --steal <endpoint>   run as a work-stealing worker against the\n\
     \u{20}                    sweep_coord coordinator at host:port or\n\
     \u{20}                    unix:<path> (sweep figures only; requires\n\
     \u{20}                    --checkpoint, excludes --shard)\n\
     --telemetry <path>   write structured JSONL telemetry (solver\n\
     \u{20}                    spans, per-iteration gaps, refinements,\n\
     \u{20}                    metrics) to <path>\n\
     --telemetry-summary[=<path>]\n\
     \u{20}                    print an aggregated timing/metrics table\n\
     \u{20}                    to stderr (or write it to <path>) on exit\n\
     --help               this message\n\
     \n\
     Output: CSV on stdout, progress on stderr, results\n\
     file under results/.";

/// Parses `std::env::args()`, printing a typed error and exiting with
/// status 1 on an invalid command line — the shared entry point of all
/// figure binaries. A `--threads` request is applied to the global
/// worker pool here, before any solver work can touch it; in steal
/// mode the worker identity the coordinator will see (adopted from the
/// checkpoint) is stamped on the configuration so the JSONL telemetry
/// sink records under the same name — `sweep_trace` joins the two
/// ledgers by it.
pub fn run_config() -> RunConfig {
    match parse(std::env::args().skip(1)) {
        Ok(mut config) => {
            config.apply_threads();
            if config.steal.is_some() {
                if let Some(checkpoint) = &config.checkpoint {
                    config.identity = Some(crate::sweep::coord::worker_identity(checkpoint));
                }
            }
            config
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn figure_parse_is_the_shared_surface() {
        let config = parse(strings(&[
            "--quick",
            "--threads",
            "2",
            "--shard",
            "0/2",
            "--checkpoint",
            "ck.jsonl",
        ]))
        .unwrap();
        assert!(config.quick);
        assert_eq!(config.threads, Some(2));
        assert_eq!(config.shard, ShardArg::new(0, 2));
        assert_eq!(
            config.checkpoint,
            Some(std::path::PathBuf::from("ck.jsonl"))
        );
        assert_eq!(
            parse(strings(&["--bogus"])),
            Err(CliError::UnknownArgument("--bogus".to_string()))
        );
    }
}
