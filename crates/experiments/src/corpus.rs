//! The deterministic trace corpus and the calibrated models built on
//! it.
//!
//! This mirrors the paper's Sec. III setup: extract the 50-bin
//! marginal from each trace, measure the mean epoch duration (mean
//! same-bin run length × sample interval), and calibrate the truncated
//! Pareto's `θ` so that `E[T]` matches the measured epoch for
//! `T_c = ∞` (Eq. 25).

use lrd_fluidq::QueueModel;
use lrd_traffic::{synth, Marginal, Trace, TruncatedPareto};

/// The number of marginal histogram bins, fixed at the paper's 50.
pub const MARGINAL_BINS: usize = 50;

/// Utilization used throughout the paper's MTV experiments.
pub const MTV_UTILIZATION: f64 = 0.8;
/// Utilization used throughout the paper's Bellcore experiments.
pub const BC_UTILIZATION: f64 = 0.4;

/// One trace plus everything the experiments derive from it.
#[derive(Debug, Clone)]
pub struct TraceBundle {
    /// Human-readable name ("MTV" / "Bellcore").
    pub name: &'static str,
    /// The synthetic trace.
    pub trace: Trace,
    /// Its 50-bin marginal `(Π, Λ)`.
    pub marginal: Marginal,
    /// Mean epoch duration (seconds), the paper's θ-calibration input.
    pub mean_epoch: f64,
    /// Nominal Hurst parameter (published value for the real trace).
    pub hurst: f64,
    /// Calibrated Pareto scale θ at the nominal Hurst parameter.
    pub theta: f64,
}

impl TraceBundle {
    fn build(name: &'static str, trace: Trace, hurst: f64) -> Self {
        let marginal = trace.marginal(MARGINAL_BINS);
        let mean_epoch = trace.mean_epoch(MARGINAL_BINS);
        let alpha = lrd_traffic::alpha_from_hurst(hurst);
        let theta = TruncatedPareto::calibrate_theta(mean_epoch, alpha);
        TraceBundle {
            name,
            trace,
            marginal,
            mean_epoch,
            hurst,
            theta,
        }
    }

    /// The truncated-Pareto interval distribution at the nominal Hurst
    /// parameter and the calibrated θ, with the given cutoff lag.
    pub fn intervals(&self, cutoff: f64) -> TruncatedPareto {
        TruncatedPareto::new(self.theta, lrd_traffic::alpha_from_hurst(self.hurst), cutoff)
    }

    /// Interval distribution at an arbitrary Hurst parameter but the
    /// *nominal* θ — the paper's Fig. 10/11 protocol ("we use the same
    /// θ in the entire experiment, by matching the average interval
    /// length for the nominal Hurst parameter").
    pub fn intervals_at_hurst(&self, hurst: f64, cutoff: f64) -> TruncatedPareto {
        TruncatedPareto::new(self.theta, lrd_traffic::alpha_from_hurst(hurst), cutoff)
    }

    /// A queue model at the given utilization, normalized buffer
    /// (seconds) and cutoff lag.
    pub fn model(
        &self,
        utilization: f64,
        buffer_seconds: f64,
        cutoff: f64,
    ) -> QueueModel<TruncatedPareto> {
        QueueModel::from_utilization(
            self.marginal.clone(),
            self.intervals(cutoff),
            utilization,
            buffer_seconds,
        )
    }
}

/// The two-trace corpus all experiments run on.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// MTV-like JPEG video trace bundle.
    pub mtv: TraceBundle,
    /// Bellcore-like Ethernet trace bundle.
    pub bellcore: TraceBundle,
}

impl Corpus {
    /// The full-length corpus (the published trace lengths); takes a
    /// few seconds to synthesize.
    pub fn full() -> Self {
        Corpus::with_lengths(synth::MTV_LEN, synth::BELLCORE_LEN)
    }

    /// A short corpus for tests and quick runs.
    pub fn quick() -> Self {
        Corpus::with_lengths(1 << 14, 1 << 14)
    }

    /// A corpus with explicit trace lengths (always the default seed,
    /// so results are reproducible at any length).
    pub fn with_lengths(mtv_len: usize, bc_len: usize) -> Self {
        let seed = synth::DEFAULT_SEED;
        Corpus {
            mtv: TraceBundle::build(
                "MTV",
                synth::mtv_like_with_len(seed, mtv_len),
                synth::MTV_HURST,
            ),
            bellcore: TraceBundle::build(
                "Bellcore",
                synth::bellcore_like_with_len(seed.wrapping_add(1), bc_len),
                synth::BELLCORE_HURST,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_traffic::Interarrival;

    #[test]
    fn corpus_builds_and_calibrates() {
        let c = Corpus::quick();
        assert!(c.mtv.marginal.len() <= MARGINAL_BINS);
        assert!(c.mtv.mean_epoch > 0.0);
        assert!(c.bellcore.mean_epoch > 0.0);
        // Calibration: E[T] at T_c = ∞ equals the measured epoch.
        let iv = c.mtv.intervals(f64::INFINITY);
        assert!((iv.mean() - c.mtv.mean_epoch).abs() < 1e-12);
    }

    #[test]
    fn models_have_requested_load() {
        let c = Corpus::quick();
        let m = c.mtv.model(MTV_UTILIZATION, 1.0, 10.0);
        assert!((m.utilization() - 0.8).abs() < 1e-12);
        assert!((m.normalized_buffer() - 1.0).abs() < 1e-12);
        assert_eq!(m.intervals().cutoff(), 10.0);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = Corpus::quick();
        let b = Corpus::quick();
        assert_eq!(a.mtv.trace, b.mtv.trace);
        assert_eq!(a.bellcore.theta, b.bellcore.theta);
    }

    #[test]
    fn hurst_override_changes_alpha_not_theta() {
        let c = Corpus::quick();
        let a = c.mtv.intervals_at_hurst(0.55, 5.0);
        let b = c.mtv.intervals_at_hurst(0.95, 5.0);
        assert_eq!(a.theta(), b.theta());
        assert!(a.alpha() > b.alpha());
    }
}
