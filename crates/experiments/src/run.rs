//! The figure registry and the shared binary entry point.
//!
//! Every figure binary used to carry the same ~25-line `main` body
//! (parse flags, install telemetry, build the corpus, run the figure,
//! print the table, print the CSV, write the results files). That body
//! now lives here once: a binary is a three-line shim calling
//! [`figure_main`] with its registry name, and the registry
//! ([`FIGURES`]) is shared by the binaries, the merge tool and the
//! telemetry budget check (`examples/telemetry_check.rs`).
//!
//! Sweep-backed figures ([`FigureKind::Sweep`]) additionally support
//! `--shard i/n --checkpoint <path>`: the binary then solves only its
//! slice of the lattice, streams results to the checkpoint, and the
//! `sweep_merge` binary reassembles the full figure bit-identically to
//! a single-process run (see DESIGN.md §11).

use std::path::PathBuf;
use std::process::ExitCode;

use crate::cli::{self, RunConfig};
use crate::corpus::Corpus;
use crate::figures::{self, Profile};
use crate::output::{self, Grid};
use crate::sweep::coord::{self, CoordError, StealOptions};
use crate::sweep::{
    merge_checkpoints, run_points, CheckpointOrigin, FigureSweep, ShardSpec, SweepAssignment,
    SweepError,
};

/// Everything a figure run wants to show the user. The emit order and
/// channels are fixed: `table` and `notes` go to stderr, `csv` to
/// stdout (so sharded-merged and single-process runs can be
/// byte-diffed), and the results directory receives `<stem>.csv` plus
/// `<stem>.gp` when `gnuplot_grid` is present.
#[derive(Debug, Clone)]
pub struct FigureArtifacts {
    /// Human-readable table for stderr (grid figures).
    pub table: Option<String>,
    /// The machine-readable result; the only bytes on stdout.
    pub csv: String,
    /// Grid to render as a gnuplot script, when the figure is a
    /// surface.
    pub gnuplot_grid: Option<Grid>,
    /// Closing remarks for stderr (one line each).
    pub notes: Vec<String>,
}

impl FigureArtifacts {
    /// The standard artifacts for a surface figure: table, CSV and
    /// gnuplot script straight from the grid.
    pub fn from_grid(grid: Grid) -> FigureArtifacts {
        FigureArtifacts {
            table: Some(grid.to_table()),
            csv: grid.to_csv(),
            gnuplot_grid: Some(grid),
            notes: Vec::new(),
        }
    }
}

/// How a registered figure produces its artifacts.
pub enum FigureKind {
    /// A figure with bespoke execution (simulation, report, …): one
    /// function from corpus and profile to artifacts.
    Plain(for<'c> fn(&'c Corpus, Profile) -> FigureArtifacts),
    /// A lattice figure on the sweep pipeline — shardable, resumable
    /// and mergeable.
    Sweep {
        /// Builds the declarative sweep for this corpus and profile.
        build: for<'c> fn(&'c Corpus, Profile) -> FigureSweep<'c>,
        /// Turns the solved surface into artifacts (post-processing
        /// such as horizon extraction happens here, never inside the
        /// lattice).
        finish: fn(&Corpus, Profile, Grid) -> FigureArtifacts,
    },
}

/// One registry entry: a figure's name, provenance and runner.
pub struct FigureSpec {
    /// Registry/binary name, e.g. `"fig04_mtv_model"`.
    pub name: &'static str,
    /// What the figure shows (one line, for listings).
    pub paper: &'static str,
    /// Stem of the files written under `results/`.
    pub results_stem: &'static str,
    /// How the figure runs.
    pub kind: FigureKind,
    /// Exact `solver.solve` span count of an unsharded quick run —
    /// the telemetry budget `examples/telemetry_check.rs` enforces.
    pub quick_solves: u64,
    /// Exact `solver.solve` span count of an unsharded full run.
    pub full_solves: u64,
    /// Of [`FigureSpec::quick_solves`], how many points *have a lattice
    /// donor* under the plan's warm axis — the ceiling on spans that
    /// may legitimately carry `warm: true`. Whether an eligible point
    /// actually warm-certifies depends on the solved values (the donor
    /// must have certified zero loss), so this is an upper bound, not
    /// an exact count; sharded/resumed runs only ever fall below it.
    /// Zero for plain figures and sweeps with no warm axis.
    pub quick_warm_eligible: u64,
    /// Warm-eligible point count of an unsharded full run.
    pub full_warm_eligible: u64,
}

impl FigureSpec {
    /// The telemetry budget (exact `solver.solve` span count) for one
    /// profile.
    pub fn expected_solves(&self, profile: Profile) -> u64 {
        profile.pick(self.quick_solves, self.full_solves)
    }

    /// The warm-span ceiling (points with a lattice donor) for one
    /// profile.
    pub fn warm_eligible(&self, profile: Profile) -> u64 {
        profile.pick(self.quick_warm_eligible, self.full_warm_eligible)
    }

    /// Checks one capture's `solver.solve` span counts against this
    /// figure's budget: `solves` spans total, of which `warm` carried
    /// `warm: true`. The total must match exactly (duplicated or
    /// skipped solves are both regressions); the warm count may fall
    /// anywhere below the lattice-donor ceiling (shards, resumes and
    /// steal batches run donor-less points cold) but can never exceed
    /// it.
    pub fn check_solve_budget(
        &self,
        profile: Profile,
        solves: u64,
        warm: u64,
    ) -> Result<(), BudgetError> {
        let expected = self.expected_solves(profile);
        if solves != expected {
            return Err(BudgetError::Solves {
                figure: self.name,
                profile,
                expected,
                found: solves,
            });
        }
        let max_warm = self.warm_eligible(profile);
        if warm > max_warm {
            return Err(BudgetError::WarmSolves {
                figure: self.name,
                profile,
                max_warm,
                found: warm,
            });
        }
        Ok(())
    }
}

/// A telemetry-budget violation, naming the offending figure and
/// profile (consumed by `examples/telemetry_check.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetError {
    /// The capture's `solver.solve` span count differs from the
    /// registry budget.
    Solves {
        /// The figure whose budget was violated.
        figure: &'static str,
        /// The profile the budget was checked against.
        profile: Profile,
        /// The exact span count the registry demands.
        expected: u64,
        /// The span count the capture actually contains.
        found: u64,
    },
    /// More spans carried `warm: true` than the plan has donor-bearing
    /// points — warm starts appeared where the lattice provides no
    /// donor.
    WarmSolves {
        /// The figure whose budget was violated.
        figure: &'static str,
        /// The profile the budget was checked against.
        profile: Profile,
        /// The lattice-donor ceiling for this figure and profile.
        max_warm: u64,
        /// The warm span count the capture actually contains.
        found: u64,
    },
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetError::Solves {
                figure,
                profile,
                expected,
                found,
            } => write!(
                f,
                "{figure} ({}) budget violated: expected exactly {expected} \
                 solver.solve span(s), found {found}",
                profile.tag()
            ),
            BudgetError::WarmSolves {
                figure,
                profile,
                max_warm,
                found,
            } => write!(
                f,
                "{figure} ({}) warm budget violated: {found} solver.solve span(s) \
                 carry warm: true but the plan has only {max_warm} donor-bearing \
                 point(s)",
                profile.tag()
            ),
        }
    }
}

impl std::error::Error for BudgetError {}

fn grid_finish(_corpus: &Corpus, _profile: Profile, grid: Grid) -> FigureArtifacts {
    FigureArtifacts::from_grid(grid)
}

fn fig02_artifacts(corpus: &Corpus, profile: Profile) -> FigureArtifacts {
    let fig = figures::fig02::run(corpus, profile);
    // Companion solve to stationarity: exercises the full convergence
    // protocol (gap narrowing, grid refinement, mass check), so a
    // `--telemetry` run of this figure records the solver end to end.
    let sol = figures::fig02::stationary_bounds(corpus);
    FigureArtifacts {
        table: None,
        csv: figures::fig02::to_csv(&fig),
        gnuplot_grid: None,
        notes: vec![
            format!(
                "stationary bounds: loss in [{:.3e}, {:.3e}] after {} iterations \
                 ({} refinement{}, final M = {})",
                sol.lower,
                sol.upper,
                sol.iterations,
                sol.refinement_epochs.len(),
                if sol.refinement_epochs.len() == 1 { "" } else { "s" },
                sol.bins
            ),
            "Fig. 2 reproduced: occupancy-bound CDFs at n = 5, 10, 30 (M = 100); \
             the lower/upper pairs squeeze toward the stationary law."
                .to_string(),
        ],
    }
}

fn fig03_artifacts(corpus: &Corpus, _profile: Profile) -> FigureArtifacts {
    let series = figures::fig03::run(corpus);
    FigureArtifacts {
        table: None,
        csv: figures::fig03::to_csv(&series),
        gnuplot_grid: None,
        notes: vec![
            "Fig. 3 reproduced: MTV marginal is unimodal near its mean; \
             Bellcore marginal piles mass near idle with a heavy tail."
                .to_string(),
        ],
    }
}

fn fig06_artifacts(corpus: &Corpus, _profile: Profile) -> FigureArtifacts {
    let fig = figures::fig06::run(corpus);
    let block = figures::fig06::BLOCK;
    let note = format!(
        "Fig. 6 demonstrated: at lag {} (¼ block) the shuffled ACF retains {:.0}% \
         of the original; at lag {} (2 blocks) it retains {:.0}%.",
        block / 4,
        100.0 * fig.after[block / 4] / fig.before[block / 4].max(1e-12),
        2 * block,
        100.0 * fig.after[2 * block] / fig.before[2 * block].max(1e-12),
    );
    FigureArtifacts {
        table: None,
        csv: figures::fig06::to_csv(&fig),
        gnuplot_grid: None,
        notes: vec![note],
    }
}

fn fig07_artifacts(corpus: &Corpus, profile: Profile) -> FigureArtifacts {
    FigureArtifacts::from_grid(figures::fig07_08::fig07(corpus, profile))
}

fn fig08_artifacts(corpus: &Corpus, profile: Profile) -> FigureArtifacts {
    FigureArtifacts::from_grid(figures::fig07_08::fig08(corpus, profile))
}

fn fig09_artifacts(corpus: &Corpus, profile: Profile) -> FigureArtifacts {
    let series = figures::fig09::run(corpus, profile);
    let last = |s: &crate::output::Series| s.points.last().unwrap().1;
    let note = format!(
        "Fig. 9 reproduced: at the largest cutoff, loss(MTV) = {:.3e}, loss(BC) = {:.3e} \
         — the marginal alone changes loss by orders of magnitude.",
        last(&series[0]),
        last(&series[1])
    );
    FigureArtifacts {
        table: None,
        csv: output::series_to_csv("cutoff_s", &series),
        gnuplot_grid: None,
        notes: vec![note],
    }
}

fn fig14_artifacts(corpus: &Corpus, profile: Profile) -> FigureArtifacts {
    let fig = figures::fig14::run(corpus, profile);
    let mut csv = fig.grid.to_csv();
    csv.push_str("\nbuffer_s,empirical_ch_s\n");
    for &(b, h) in &fig.horizons {
        csv.push_str(&format!("{b},{h}\n"));
    }
    csv.push_str("\nbuffer_s,eq26_tch_s\n");
    for &(b, t) in &fig.predicted {
        csv.push_str(&format!("{b},{t}\n"));
    }
    let note = format!(
        "Fig. 14 reproduced: log-log fit of empirical CH vs buffer has slope {:.2} \
         (r² = {:.2}); Eq. 26 predicts exactly linear scaling.",
        fig.fit.slope, fig.fit.r_squared
    );
    FigureArtifacts {
        table: Some(fig.grid.to_table()),
        csv,
        gnuplot_grid: Some(fig.grid),
        notes: vec![note],
    }
}

fn ch_validation_finish(corpus: &Corpus, _profile: Profile, grid: Grid) -> FigureArtifacts {
    let v = figures::ch_validation::finish(corpus, &grid);
    let mut csv = String::from("buffer_s,empirical_ch_s,eq26_tch_s\n");
    for (e, p) in v.empirical.iter().zip(&v.predicted) {
        csv.push_str(&format!("{},{},{}\n", e.0, e.1, p.1));
    }
    let note = format!(
        "empirical CH vs buffer: log-log slope {:.2} (r² {:.2}); Eq. 26 is exactly linear.",
        v.fit.slope, v.fit.r_squared
    );
    FigureArtifacts {
        table: None,
        csv,
        gnuplot_grid: None,
        notes: vec![note],
    }
}

fn markov_baseline_artifacts(corpus: &Corpus, profile: Profile) -> FigureArtifacts {
    let series = figures::markov_baseline::run(corpus, profile);
    FigureArtifacts {
        table: None,
        csv: output::series_to_csv("buffer_s", &series),
        gnuplot_grid: None,
        notes: vec![
            "Extension: Markovian and LRD interval models agree for small buffers \
             (below the correlation horizon) and diverge as the buffer grows."
                .to_string(),
        ],
    }
}

fn trace_loss_finish(_corpus: &Corpus, profile: Profile, grid: Grid) -> FigureArtifacts {
    let mut artifacts = FigureArtifacts::from_grid(grid);
    let f = figures::trace_loss::fit(profile);
    artifacts.notes.push(format!(
        "out-of-core fit: {} packets streamed from disk -> H = {:.3} \
         (alpha = {:.3}), theta = {:.5} s, mean rate {:.3} Mb/s; the \
         trace-driven surface reproduces Fig. 4's correlation horizon \
         from estimated parameters.",
        f.packets, f.hurst, f.alpha, f.theta, f.mean_rate
    ));
    artifacts
}

fn corpus_report_artifacts(corpus: &Corpus, _profile: Profile) -> FigureArtifacts {
    let mut csv = String::from(
        "trace,samples,dt_s,mean_rate_mbps,std_mbps,target_h,wavelet_h,whittle_h,mean_epoch_s,theta_s\n",
    );
    for b in [&corpus.mtv, &corpus.bellcore] {
        let wavelet = lrd_stats::wavelet_estimate(b.trace.rates()).h;
        let whittle = lrd_stats::whittle_estimate(b.trace.rates()).h;
        csv.push_str(&format!(
            "{},{},{},{:.4},{:.4},{},{:.3},{:.3},{:.4},{:.5}\n",
            b.name,
            b.trace.len(),
            b.trace.dt(),
            b.trace.mean_rate(),
            lrd_stats::std_dev(b.trace.rates()),
            b.hurst,
            wavelet,
            whittle,
            b.mean_epoch,
            b.theta,
        ));
    }
    FigureArtifacts {
        table: None,
        csv,
        gnuplot_grid: None,
        notes: Vec::new(),
    }
}

/// Every registered figure, in paper order. The `runtime_report`
/// binary stays outside the registry: it is an instrumentation
/// harness (it installs its own collecting subscriber), not a figure.
pub static FIGURES: &[FigureSpec] = &[
    FigureSpec {
        name: "fig02_bounds",
        paper: "Fig. 2: convergence of the discrete occupancy bounds",
        results_stem: "fig02_bounds",
        kind: FigureKind::Plain(fig02_artifacts),
        quick_solves: 1,
        full_solves: 1,
        quick_warm_eligible: 0,
        full_warm_eligible: 0,
    },
    FigureSpec {
        name: "fig03_marginals",
        paper: "Fig. 3: marginal rate distributions of both traces",
        results_stem: "fig03_marginals",
        kind: FigureKind::Plain(fig03_artifacts),
        quick_solves: 0,
        full_solves: 0,
        quick_warm_eligible: 0,
        full_warm_eligible: 0,
    },
    FigureSpec {
        name: "fig04_mtv_model",
        paper: "Fig. 4: model loss vs (buffer, cutoff), MTV at utilization 0.8",
        results_stem: "fig04_mtv_model",
        kind: FigureKind::Sweep {
            build: figures::fig04_05::fig04_sweep,
            finish: grid_finish,
        },
        quick_solves: 12,
        full_solves: 56,
        quick_warm_eligible: 8,
        full_warm_eligible: 48,
    },
    FigureSpec {
        name: "fig05_bc_model",
        paper: "Fig. 5: model loss vs (buffer, cutoff), Bellcore at utilization 0.4",
        results_stem: "fig05_bc_model",
        kind: FigureKind::Sweep {
            build: figures::fig04_05::fig05_sweep,
            finish: grid_finish,
        },
        quick_solves: 12,
        full_solves: 56,
        quick_warm_eligible: 8,
        full_warm_eligible: 48,
    },
    FigureSpec {
        name: "fig06_shuffle_demo",
        paper: "Fig. 6: external shuffling demonstrated on the MTV-like trace",
        results_stem: "fig06_shuffle_demo",
        kind: FigureKind::Plain(fig06_artifacts),
        quick_solves: 0,
        full_solves: 0,
        quick_warm_eligible: 0,
        full_warm_eligible: 0,
    },
    FigureSpec {
        name: "fig07_mtv_shuffle",
        paper: "Fig. 7: shuffle-simulation loss vs (buffer, cutoff), MTV",
        results_stem: "fig07_mtv_shuffle",
        kind: FigureKind::Plain(fig07_artifacts),
        quick_solves: 0,
        full_solves: 0,
        quick_warm_eligible: 0,
        full_warm_eligible: 0,
    },
    FigureSpec {
        name: "fig08_bc_shuffle",
        paper: "Fig. 8: shuffle-simulation loss vs (buffer, cutoff), Bellcore",
        results_stem: "fig08_bc_shuffle",
        kind: FigureKind::Plain(fig08_artifacts),
        quick_solves: 0,
        full_solves: 0,
        quick_warm_eligible: 0,
        full_warm_eligible: 0,
    },
    FigureSpec {
        name: "fig09_marginal_compare",
        paper: "Fig. 9: loss vs cutoff for the two marginals, all else equal",
        results_stem: "fig09_marginal_compare",
        kind: FigureKind::Plain(fig09_artifacts),
        quick_solves: 8,
        full_solves: 18,
        quick_warm_eligible: 0,
        full_warm_eligible: 0,
    },
    FigureSpec {
        name: "fig10_hurst_vs_scaling",
        paper: "Fig. 10: loss vs (Hurst, marginal scaling), MTV",
        results_stem: "fig10_hurst_vs_scaling",
        kind: FigureKind::Sweep {
            build: figures::fig10_11::fig10_sweep,
            finish: grid_finish,
        },
        quick_solves: 9,
        full_solves: 25,
        quick_warm_eligible: 0,
        full_warm_eligible: 0,
    },
    FigureSpec {
        name: "fig11_hurst_vs_multiplex",
        paper: "Fig. 11: loss vs (Hurst, superposed streams), MTV",
        results_stem: "fig11_hurst_vs_multiplex",
        kind: FigureKind::Sweep {
            build: figures::fig10_11::fig11_sweep,
            finish: grid_finish,
        },
        quick_solves: 9,
        full_solves: 50,
        quick_warm_eligible: 0,
        full_warm_eligible: 0,
    },
    FigureSpec {
        name: "fig12_mtv_buffer_scaling",
        paper: "Fig. 12: loss vs (buffer, marginal scaling), MTV, T_c = ∞",
        results_stem: "fig12_mtv_buffer_scaling",
        kind: FigureKind::Sweep {
            build: figures::fig12_13::fig12_sweep,
            finish: grid_finish,
        },
        quick_solves: 9,
        full_solves: 35,
        quick_warm_eligible: 6,
        full_warm_eligible: 30,
    },
    FigureSpec {
        name: "fig13_bc_buffer_scaling",
        paper: "Fig. 13: loss vs (buffer, marginal scaling), Bellcore, T_c = ∞",
        results_stem: "fig13_bc_buffer_scaling",
        kind: FigureKind::Sweep {
            build: figures::fig12_13::fig13_sweep,
            finish: grid_finish,
        },
        quick_solves: 9,
        full_solves: 35,
        quick_warm_eligible: 6,
        full_warm_eligible: 30,
    },
    FigureSpec {
        name: "fig14_ch_scaling",
        paper: "Fig. 14: correlation horizon scales linearly with buffer",
        results_stem: "fig14_ch_scaling",
        kind: FigureKind::Plain(fig14_artifacts),
        quick_solves: 0,
        full_solves: 0,
        quick_warm_eligible: 0,
        full_warm_eligible: 0,
    },
    FigureSpec {
        name: "ch_validation",
        paper: "Extension: Eq. 26 correlation-horizon validation via the solver",
        results_stem: "ch_validation",
        kind: FigureKind::Sweep {
            build: figures::ch_validation::ch_validation_sweep,
            finish: ch_validation_finish,
        },
        quick_solves: 24,
        full_solves: 91,
        quick_warm_eligible: 16,
        full_warm_eligible: 78,
    },
    FigureSpec {
        name: "markov_baseline",
        paper: "Extension: truncated-Pareto vs mean-matched exponential intervals",
        results_stem: "markov_baseline",
        kind: FigureKind::Plain(markov_baseline_artifacts),
        quick_solves: 8,
        full_solves: 16,
        quick_warm_eligible: 0,
        full_warm_eligible: 0,
    },
    FigureSpec {
        name: "trace_loss",
        paper: "Extension: loss vs (buffer, cutoff) fitted from an out-of-core packet trace",
        results_stem: "trace_loss",
        kind: FigureKind::Sweep {
            build: figures::trace_loss::trace_loss_sweep,
            finish: trace_loss_finish,
        },
        quick_solves: 12,
        full_solves: 35,
        quick_warm_eligible: 8,
        full_warm_eligible: 28,
    },
    FigureSpec {
        name: "corpus_report",
        paper: "Corpus statistics table for EXPERIMENTS.md",
        results_stem: "corpus",
        kind: FigureKind::Plain(corpus_report_artifacts),
        quick_solves: 0,
        full_solves: 0,
        quick_warm_eligible: 0,
        full_warm_eligible: 0,
    },
];

/// Looks a figure up by registry name.
pub fn find_figure(name: &str) -> Option<&'static FigureSpec> {
    FIGURES.iter().find(|spec| spec.name == name)
}

/// Why a figure run failed after a valid command line.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The requested figure is not in the registry (reachable through
    /// `sweep_merge` on a checkpoint naming an unknown figure).
    UnknownFigure(String),
    /// A checkpoint manifest names a profile tag the registry cannot
    /// parse.
    UnknownProfile(String),
    /// `--shard`/`--checkpoint` on a figure that is not sweep-backed.
    ShardUnsupported(&'static str),
    /// `--shard i/n` with `n > 1` but no `--checkpoint`: a shard's
    /// only output is its checkpoint file, so running one without a
    /// path would discard the work.
    ShardWithoutCheckpoint,
    /// `--assignment` without `--shard i/n`: the shard index picks
    /// which row of the assignment this process solves.
    AssignmentWithoutShard,
    /// `--shard i/n` whose `n` disagrees with the number of shards the
    /// assignment file was planned for.
    AssignmentShardCount {
        /// Shards in the assignment file.
        expected: u32,
        /// The `n` of the requested `--shard i/n`.
        found: u32,
    },
    /// The assignment file was planned for a different figure.
    AssignmentFigure {
        /// The figure being run.
        expected: String,
        /// The figure named in the assignment file.
        found: String,
    },
    /// `--steal` combined with `--shard` or `--assignment`: the
    /// coordinator decides which points a stealing worker solves, so a
    /// static split contradicts it.
    StealWithShard,
    /// `--steal` without `--checkpoint`: a stealing worker's only
    /// output is its checkpoint file.
    StealWithoutCheckpoint,
    /// The work-stealing protocol failed (unreachable coordinator,
    /// sweep mismatch, lease-log damage, …).
    Coord(CoordError),
    /// The sweep layer failed (I/O, malformed or mismatched
    /// checkpoints).
    Sweep(SweepError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::UnknownFigure(name) => write!(f, "unknown figure `{name}`"),
            RunError::UnknownProfile(tag) => write!(f, "unknown profile tag `{tag}`"),
            RunError::ShardUnsupported(name) => write!(
                f,
                "{name} is not a sweep figure; --shard/--checkpoint are not supported"
            ),
            RunError::ShardWithoutCheckpoint => {
                write!(f, "--shard requires --checkpoint <path> (the shard's output)")
            }
            RunError::AssignmentWithoutShard => write!(
                f,
                "--assignment requires --shard i/n to pick this process's row"
            ),
            RunError::AssignmentShardCount { expected, found } => write!(
                f,
                "assignment was planned for {expected} shard(s), but --shard asked for {found}"
            ),
            RunError::AssignmentFigure { expected, found } => write!(
                f,
                "assignment was planned for figure `{found}`, not `{expected}`"
            ),
            RunError::StealWithShard => write!(
                f,
                "--steal is mutually exclusive with --shard/--assignment \
                 (the coordinator assigns the points)"
            ),
            RunError::StealWithoutCheckpoint => write!(
                f,
                "--steal requires --checkpoint <path> (the worker's output)"
            ),
            RunError::Coord(e) => write!(f, "{e}"),
            RunError::Sweep(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<SweepError> for RunError {
    fn from(e: SweepError) -> RunError {
        RunError::Sweep(e)
    }
}

impl From<CoordError> for RunError {
    fn from(e: CoordError) -> RunError {
        RunError::Coord(e)
    }
}

fn emit(spec: &FigureSpec, artifacts: &FigureArtifacts) {
    if let Some(table) = &artifacts.table {
        eprintln!("{table}");
    }
    print!("{}", artifacts.csv);
    match output::write_results_file(&format!("{}.csv", spec.results_stem), &artifacts.csv) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
    if let Some(grid) = &artifacts.gnuplot_grid {
        let gp = crate::gnuplot::grid_to_gnuplot(grid, spec.results_stem, spec.results_stem);
        match output::write_results_file(&format!("{}.gp", spec.results_stem), &gp) {
            Ok(p) => eprintln!("wrote {} (render with gnuplot)", p.display()),
            Err(e) => eprintln!("could not write gnuplot script: {e}"),
        }
    }
    for note in &artifacts.notes {
        eprintln!("{note}");
    }
}

/// Resolves the shard this process should run: the round-robin
/// `--shard i/n` by default, or — with `--assignment` — the explicit
/// owned-set row the planner assigned to shard `i`, validated against
/// the figure and the registry-rebuilt plan.
fn resolve_shard(
    spec: &FigureSpec,
    config: &RunConfig,
    sweep: &FigureSweep<'_>,
) -> Result<ShardSpec, RunError> {
    let Some(path) = config.assignment.as_deref() else {
        return Ok(config.shard.map(ShardSpec::from).unwrap_or(ShardSpec::FULL));
    };
    let Some(requested) = config.shard else {
        return Err(RunError::AssignmentWithoutShard);
    };
    let assignment = SweepAssignment::read(path)?;
    if assignment.figure != spec.name {
        return Err(RunError::AssignmentFigure {
            expected: spec.name.to_string(),
            found: assignment.figure,
        });
    }
    assignment.validate_against(&sweep.plan, path)?;
    if assignment.shards.len() as u32 != requested.count {
        return Err(RunError::AssignmentShardCount {
            expected: assignment.shards.len() as u32,
            found: requested.count,
        });
    }
    Ok(assignment
        .shard_spec(requested.index)
        .expect("index < count == shards.len() after validation"))
}

/// Runs one registered figure under a parsed configuration: the whole
/// historical binary body behind one call.
///
/// * Plain figures reject `--shard`/`--checkpoint`/`--assignment` with
///   a typed error.
/// * Sweep figures with `--shard i/n` (n > 1) solve only their slice —
///   round-robin, or the planner-assigned point set when
///   `--assignment` names a `sweep_plan` output — stream it to the
///   required `--checkpoint`, print a shard summary to stderr and emit
///   **no** artifacts; the full figure appears when `sweep_merge`
///   assembles all shards.
/// * Sweep figures with `--steal <endpoint>` become work-stealing
///   workers: they lease point batches from the `sweep_coord`
///   coordinator, heartbeat while solving, stream results to the
///   required `--checkpoint`, and emit no artifacts (merge the worker
///   checkpoints with `sweep_merge`).
/// * Sweep figures without `--shard` run the full lattice (optionally
///   checkpointed/resumed) and emit artifacts identical to the
///   pre-sweep implementation.
pub fn run_figure(spec: &FigureSpec, config: &RunConfig) -> Result<(), RunError> {
    let profile = if config.quick { Profile::Quick } else { Profile::Full };
    let corpus = if config.quick { Corpus::quick() } else { Corpus::full() };

    match &spec.kind {
        FigureKind::Plain(runner) => {
            if config.shard.is_some()
                || config.checkpoint.is_some()
                || config.assignment.is_some()
                || config.steal.is_some()
            {
                return Err(RunError::ShardUnsupported(spec.name));
            }
            emit(spec, &runner(&corpus, profile));
            Ok(())
        }
        FigureKind::Sweep { build, finish } => {
            let sweep = build(&corpus, profile);
            if let Some(endpoint) = config.steal.as_deref() {
                if config.shard.is_some() || config.assignment.is_some() {
                    return Err(RunError::StealWithShard);
                }
                let Some(path) = config.checkpoint.as_deref() else {
                    return Err(RunError::StealWithoutCheckpoint);
                };
                let endpoint = coord::Endpoint::parse(endpoint).ok_or_else(|| {
                    RunError::Coord(CoordError::protocol(format!(
                        "invalid --steal endpoint `{endpoint}`"
                    )))
                })?;
                let options = StealOptions {
                    endpoint,
                    chaos: coord::ChaosConfig::from_env(),
                    ..StealOptions::default()
                };
                let summary = coord::run_steal(&sweep, path, &options)?;
                eprintln!(
                    "worker {} of {}: {} point(s) solved ({} reused, {} batch(es) \
                     completed, {} lease(s) expired) -> {} \
                     (assemble the figure with sweep_merge)",
                    summary.worker,
                    spec.name,
                    summary.solved,
                    summary.reused,
                    summary.batches,
                    summary.expired,
                    path.display()
                );
                return Ok(());
            }
            let shard = resolve_shard(spec, config, &sweep)?;
            if !shard.is_full() {
                let Some(path) = config.checkpoint.as_deref() else {
                    return Err(RunError::ShardWithoutCheckpoint);
                };
                let results = run_points(&sweep, &shard, Some(path))?;
                eprintln!(
                    "shard {shard} of {}: {} of {} lattice points solved -> {} \
                     (assemble the figure with sweep_merge)",
                    spec.name,
                    results.len(),
                    sweep.plan.len(),
                    path.display()
                );
                Ok(())
            } else {
                let results = run_points(&sweep, &ShardSpec::FULL, config.checkpoint.as_deref())?;
                let grid = sweep.plan.to_grid(&results);
                emit(spec, &finish(&corpus, profile, grid));
                Ok(())
            }
        }
    }
}

/// Merges a complete set of shard checkpoints and emits the figure
/// exactly as an unsharded run would have — same stdout bytes, same
/// results files.
///
/// The figure and profile come from the (cross-validated) manifests;
/// the plan is rebuilt from the registry and its hash must match the
/// one the shards were solved under, so artifacts can never be
/// assembled from a stale or foreign checkpoint set.
pub fn run_merge(paths: &[PathBuf]) -> Result<(), RunError> {
    let merged = merge_checkpoints(paths)?;
    let spec = find_figure(&merged.manifest.figure)
        .ok_or_else(|| RunError::UnknownFigure(merged.manifest.figure.clone()))?;
    let profile = Profile::from_tag(&merged.manifest.profile)
        .ok_or_else(|| RunError::UnknownProfile(merged.manifest.profile.clone()))?;
    let FigureKind::Sweep { build, finish } = &spec.kind else {
        return Err(RunError::ShardUnsupported(spec.name));
    };
    let corpus = match profile {
        Profile::Quick => Corpus::quick(),
        Profile::Full => Corpus::full(),
    };
    let sweep = build(&corpus, profile);
    let expected = sweep.plan.hash_hex();
    if expected != merged.manifest.plan_hash {
        return Err(RunError::Sweep(SweepError::PlanHashMismatch {
            expected,
            found: merged.manifest.plan_hash.clone(),
        }));
    }
    let grid = sweep.plan.to_grid(&merged.results);
    let sources = match &merged.manifest.origin {
        CheckpointOrigin::Shard(s) => format!("{} shards", s.count),
        CheckpointOrigin::Steal { .. } => {
            format!("{} worker checkpoint(s)", merged.sources)
        }
    };
    eprintln!(
        "merged {sources} ({} points, {} total solver iterations)",
        merged.results.len(),
        merged.total_iterations()
    );
    emit(spec, &finish(&corpus, profile, grid));
    Ok(())
}

/// The shared `main` body of every figure binary: parse the shared
/// flags, install telemetry, run the named figure, map failures to a
/// nonzero exit.
pub fn figure_main(name: &str) -> ExitCode {
    let config = cli::run_config();
    let _telemetry = match config.install_telemetry() {
        Ok(guard) => guard,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(spec) = find_figure(name) else {
        eprintln!("error: unknown figure `{name}`");
        return ExitCode::FAILURE;
    };
    match run_figure(spec, &config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        for spec in FIGURES {
            assert!(std::ptr::eq(find_figure(spec.name).unwrap(), spec));
        }
        let mut names: Vec<&str> = FIGURES.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FIGURES.len(), "duplicate registry names");
        assert!(find_figure("runtime_report").is_none());
    }

    #[test]
    fn sweep_budgets_match_their_plans() {
        // For sweep figures the telemetry budget must equal the
        // lattice size — one solver.solve span per point.
        let corpus = Corpus::quick();
        for spec in FIGURES {
            if let FigureKind::Sweep { build, .. } = &spec.kind {
                for profile in [Profile::Quick, Profile::Full] {
                    let sweep = build(&corpus, profile);
                    assert_eq!(
                        sweep.plan.len() as u64,
                        spec.expected_solves(profile),
                        "{} {:?}",
                        spec.name,
                        profile
                    );
                    assert_eq!(sweep.plan.figure, spec.name, "plan/registry name drift");
                    assert_eq!(sweep.plan.profile, profile);
                    // The warm ceiling must equal the number of
                    // donor-bearing lattice points.
                    let donors = (0..sweep.plan.len())
                        .filter(|&i| sweep.plan.donor(i).is_some())
                        .count() as u64;
                    assert_eq!(
                        donors,
                        spec.warm_eligible(profile),
                        "{} {:?} warm ceiling",
                        spec.name,
                        profile
                    );
                }
            }
        }
    }

    #[test]
    fn plain_figures_reject_shard_flags() {
        let spec = find_figure("fig03_marginals").unwrap();
        let config = RunConfig {
            quick: true,
            shard: lrd_cli::ShardArg::new(0, 2),
            checkpoint: Some(PathBuf::from("unused.jsonl")),
            ..RunConfig::default()
        };
        assert_eq!(
            run_figure(spec, &config),
            Err(RunError::ShardUnsupported("fig03_marginals"))
        );
    }

    #[test]
    fn sharding_requires_a_checkpoint() {
        let spec = find_figure("fig04_mtv_model").unwrap();
        let config = RunConfig {
            quick: true,
            shard: lrd_cli::ShardArg::new(0, 2),
            ..RunConfig::default()
        };
        assert_eq!(
            run_figure(spec, &config),
            Err(RunError::ShardWithoutCheckpoint)
        );
    }

    #[test]
    fn assignment_requires_shard_and_matching_plan() {
        use crate::sweep::ShardPlan;

        let spec = find_figure("fig04_mtv_model").unwrap();
        let dir = std::env::temp_dir().join(format!("lrd-run-assign-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("assignment.json");
        let checkpoint = dir.join("ck.jsonl");

        // --assignment without --shard.
        let config = RunConfig {
            quick: true,
            assignment: Some(path.clone()),
            ..RunConfig::default()
        };
        assert_eq!(
            run_figure(spec, &config),
            Err(RunError::AssignmentWithoutShard)
        );

        // A structurally valid 2-way assignment for the quick plan.
        let corpus = Corpus::quick();
        let FigureKind::Sweep { build, .. } = &spec.kind else {
            unreachable!()
        };
        let sweep = build(&corpus, Profile::Quick);
        let n = sweep.plan.len();
        let assignment = crate::sweep::SweepAssignment {
            figure: spec.name.to_string(),
            plan_hash: sweep.plan.hash_hex(),
            profile: "quick".to_string(),
            total_points: n,
            shards: vec![
                ShardPlan {
                    points: (0..n / 2).collect(),
                    predicted_us: 1.0,
                },
                ShardPlan {
                    points: (n / 2..n).collect(),
                    predicted_us: 1.0,
                },
            ],
        };
        assignment.write(&path).unwrap();

        let with_shard = |i, count, assignment_path: &PathBuf| RunConfig {
            quick: true,
            shard: lrd_cli::ShardArg::new(i, count),
            checkpoint: Some(checkpoint.clone()),
            assignment: Some(assignment_path.clone()),
            ..RunConfig::default()
        };

        // --shard n disagrees with the planned shard count.
        assert_eq!(
            run_figure(spec, &with_shard(0, 3, &path)),
            Err(RunError::AssignmentShardCount {
                expected: 2,
                found: 3
            })
        );

        // An assignment planned for a different figure.
        let mut foreign = assignment.clone();
        foreign.figure = "fig05_bc_model".to_string();
        let foreign_path = dir.join("foreign.json");
        foreign.write(&foreign_path).unwrap();
        assert!(matches!(
            run_figure(spec, &with_shard(0, 2, &foreign_path)),
            Err(RunError::AssignmentFigure { .. })
        ));

        // A stale plan hash (e.g. planned under the full profile).
        let mut stale = assignment;
        stale.plan_hash = "0000000000000000".to_string();
        let stale_path = dir.join("stale.json");
        stale.write(&stale_path).unwrap();
        assert!(matches!(
            run_figure(spec, &with_shard(0, 2, &stale_path)),
            Err(RunError::Sweep(SweepError::PlanHashMismatch { .. }))
        ));
    }
}
