//! Experiment harness: one module per figure of the paper's evaluation.
//!
//! Every figure in Grossglauser & Bolot's evaluation (there are no
//! tables) has a `run` function here and a binary target
//! (`cargo run --release -p lrd-experiments --bin figNN`) that prints
//! the regenerated series as CSV and a human-readable summary. The
//! `EXPERIMENTS.md` file at the workspace root records the
//! paper-vs-measured comparison for each.
//!
//! All experiments consume the deterministic synthetic trace corpus of
//! [`corpus::Corpus`] (seeded stand-ins for the paper's MTV and
//! Bellcore recordings — see `DESIGN.md` for the substitution
//! rationale), so every number is bit-for-bit reproducible.
//!
//! Each experiment supports a `quick` profile with a reduced grid so
//! the integration test suite can exercise every figure end-to-end in
//! seconds; the binaries default to the full profile.

#![warn(missing_docs)]

pub mod cli;
pub mod corpus;
pub mod figures;
pub mod gnuplot;
pub mod output;
pub mod run;
pub mod sweep;

pub use cli::RunConfig;
pub use corpus::Corpus;
pub use output::{Grid, Series};
pub use run::{figure_main, find_figure, run_figure, run_merge, FigureSpec, RunError, FIGURES};
