//! Extension figure: the out-of-core ingestion pipeline feeding the
//! solver end to end.
//!
//! Every other figure fits its model from an in-memory rate series.
//! This one exercises the path a *real* multi-gigabyte capture would
//! take: a packet corpus is written to disk (`lrd_trace::write_corpus`),
//! streamed back through the two-pass bounded-memory ingestion
//! (`lrd_trace::ingest_file`), and the resulting report — marginal
//! histogram, pooled one-pass Hurst estimate, mean epoch duration —
//! parameterizes the (buffer, cutoff) loss sweep exactly as Sec. III
//! of the paper prescribes: `α = 3 − 2Ĥ`, `θ` calibrated from the
//! measured epoch (Eq. 25). The surface should reproduce Fig. 4's
//! phenomenology (correlation horizon, buffer ineffectiveness) from
//! the estimated parameters rather than the nominal ones.

use std::path::PathBuf;

use crate::corpus::{Corpus, MARGINAL_BINS, MTV_UTILIZATION};
use crate::figures::Profile;
use crate::sweep::{Axis, FigureSweep, PointResult, SweepPlan};
use lrd_fluidq::{QueueModel, SolveSession, SolverOptions};
use lrd_trace::{ingest_file, write_corpus, CorpusKind, CorpusSpec, IngestReport};
use lrd_traffic::TruncatedPareto;

/// Rate bins packetized per profile. Quick stays test-sized; full is
/// big enough that the estimators see several dyadic decades but the
/// corpus (tens of MiB) still round-trips in a couple of seconds —
/// the ≥ GiB scale lives in the `trace_ingest` bench, not here.
fn corpus_bins(profile: Profile) -> usize {
    profile.pick(1 << 12, 1 << 15)
}

/// The deterministic corpus recipe behind the figure (MTV family,
/// default seed): the same spec always produces byte-identical files,
/// so shards and merges re-derive identical model parameters.
fn corpus_spec(profile: Profile) -> CorpusSpec {
    CorpusSpec::new(CorpusKind::Mtv, corpus_bins(profile))
}

fn scratch_path(profile: Profile) -> PathBuf {
    // Per-process name: concurrent shard processes each write (and
    // immediately delete) their own copy instead of racing on one file.
    std::env::temp_dir().join(format!(
        "lrd_trace_loss_{}_{}.lrdpkt",
        profile.tag(),
        std::process::id()
    ))
}

/// Writes the corpus for `profile` to a scratch file, runs the
/// two-pass out-of-core ingestion, removes the file, and returns the
/// report. Deterministic: a pure function of the profile.
pub fn ingest(profile: Profile) -> IngestReport {
    let spec = corpus_spec(profile);
    let path = scratch_path(profile);
    let info = write_corpus(&path, &spec).expect("synthetic corpus write");
    let report = ingest_file(&path, info.dt, MARGINAL_BINS);
    std::fs::remove_file(&path).ok();
    report.expect("corpus ingestion")
}

/// The model parameters the ingestion fits, gathered for the figure's
/// closing note.
pub struct TraceFit {
    /// Packets streamed from disk.
    pub packets: u64,
    /// Pooled one-pass Hurst estimate.
    pub hurst: f64,
    /// `α = 3 − 2Ĥ`.
    pub alpha: f64,
    /// Calibrated Pareto scale (seconds).
    pub theta: f64,
    /// Mean rate of the binned trace (Mb/s).
    pub mean_rate: f64,
}

/// Re-derives the fitted parameters (for notes/reports).
pub fn fit(profile: Profile) -> TraceFit {
    let report = ingest(profile);
    let hurst = report
        .hurst
        .expect("synthetic LRD corpus must yield an estimate");
    let alpha = lrd_traffic::alpha_from_hurst(hurst);
    TraceFit {
        packets: report.packets,
        hurst,
        alpha,
        theta: TruncatedPareto::calibrate_theta(report.mean_epoch, alpha),
        mean_rate: report.mean_rate,
    }
}

/// The `(normalized buffer, cutoff lag)` sweep with every model input
/// estimated from the on-disk corpus. The corpus argument is unused —
/// the whole point is that the model comes from the trace file — but
/// the registry signature keeps all sweep builders uniform.
pub fn trace_loss_sweep<'c>(_corpus: &'c Corpus, profile: Profile) -> FigureSweep<'c> {
    let report = ingest(profile);
    let marginal = report.marginal();
    let hurst = report
        .hurst
        .expect("synthetic LRD corpus must yield an estimate");
    let alpha = lrd_traffic::alpha_from_hurst(hurst);
    let theta = TruncatedPareto::calibrate_theta(report.mean_epoch, alpha);

    let buffers = Axis::new(
        "buffer_s",
        profile.pick(
            crate::figures::log_space(0.05, 2.0, 3),
            crate::figures::log_space(0.01, 5.0, 5),
        ),
    );
    let cutoffs = Axis::new(
        "cutoff_s",
        profile.pick(
            crate::figures::log_space(0.05, 5.0, 3),
            crate::figures::log_space(0.01, 100.0, 6),
        ),
    )
    .with_value(f64::INFINITY);
    // Buffer is the only thing varying within a column, so the buffer
    // axis satisfies `try_solve_warm`'s donor precondition.
    let plan = SweepPlan::grid_plan(
        "trace_loss",
        profile,
        "loss_rate",
        buffers,
        cutoffs,
        SolverOptions::sweep_profile(),
    )
    .with_warm_axis(0);
    let opts = plan.solver;
    FigureSweep {
        plan,
        solve: Box::new(move |spec, donor| {
            let (b, tc) = (spec.coord(0), spec.coord(1));
            let model = QueueModel::from_utilization(
                marginal.clone(),
                TruncatedPareto::new(theta, alpha, tc),
                MTV_UTILIZATION,
                b,
            );
            let (solution, state) = SolveSession::builder(&model)
                .options(&opts)
                .donor(donor)
                .solve_warm();
            (
                PointResult::from_solution(spec.index, &solution),
                Some(state),
            )
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::run_grid;
    use lrd_traffic::synth;

    #[test]
    fn ingested_fit_lands_near_the_nominal_parameters() {
        let f = fit(Profile::Quick);
        assert!(f.packets > 0);
        assert!(
            (f.hurst - synth::MTV_HURST).abs() < 0.15,
            "estimated H {} vs nominal {}",
            f.hurst,
            synth::MTV_HURST
        );
        assert!(f.alpha > 1.0 && f.alpha < 2.0, "alpha {}", f.alpha);
        assert!(f.theta > 0.0);
    }

    #[test]
    fn ingestion_is_deterministic_across_calls() {
        // Shards in separate processes must re-derive the identical
        // model; same-process double ingestion is the proxy we can pin.
        let a = fit(Profile::Quick);
        let b = fit(Profile::Quick);
        assert_eq!(a.hurst.to_bits(), b.hurst.to_bits());
        assert_eq!(a.theta.to_bits(), b.theta.to_bits());
        assert_eq!(a.packets, b.packets);
    }

    #[test]
    fn trace_driven_surface_shows_the_paper_phenomenology() {
        let corpus = Corpus::quick();
        let g = run_grid(&trace_loss_sweep(&corpus, Profile::Quick));
        g.validate();
        // Loss non-increasing in buffer, non-decreasing in cutoff —
        // the same shape as the nominal-parameter Fig. 4 surface.
        for j in 0..g.xs.len() {
            for i in 1..g.ys.len() {
                assert!(
                    g.values[i][j] <= g.values[i - 1][j] * 1.05 + 1e-12,
                    "loss increased with buffer at cutoff {}",
                    g.xs[j]
                );
            }
        }
        for i in 0..g.ys.len() {
            for j in 1..g.xs.len() {
                assert!(
                    g.values[i][j] >= g.values[i][j - 1] * 0.95 - 1e-12,
                    "loss decreased with cutoff at buffer {}",
                    g.ys[i]
                );
            }
        }
        assert!(g
            .values
            .iter()
            .flatten()
            .all(|&v| (0.0..=1.0).contains(&v) && v.is_finite()));
    }
}
