//! Figs. 7 and 8 — loss obtained with **external shuffling and
//! trace-driven simulation**, as a function of normalized buffer size
//! and shuffle block length ("cutoff").
//!
//! These results are completely independent of the stochastic model of
//! Sec. II: the (synthetic) trace itself is block-shuffled to kill
//! correlation beyond the cutoff and then pushed through the exact
//! fluid-queue simulator. The paper uses them to confirm the model's
//! correlation-horizon and buffer-ineffectiveness phenomena.

use crate::corpus::{Corpus, TraceBundle, BC_UTILIZATION, MTV_UTILIZATION};
use crate::figures::{log_space, Profile};
use crate::output::Grid;
use lrd_sim::simulate_trace;
use lrd_traffic::shuffle::external_shuffle_seconds;
use lrd_rng::rngs::SmallRng;
use lrd_rng::SeedableRng;

/// Shuffle-and-simulate loss grid over `(normalized buffer, cutoff)`.
///
/// Each cutoff shuffles the trace once (fixed seed, so the figure is
/// reproducible) and reuses the shuffled trace across all buffer
/// sizes. `f64::INFINITY` denotes the unshuffled trace.
pub fn shuffle_grid(bundle: &TraceBundle, utilization: f64, profile: Profile) -> Grid {
    let buffers = profile.pick(log_space(0.05, 2.0, 3), log_space(0.01, 5.0, 7));
    let mut cutoffs = profile.pick(log_space(0.1, 5.0, 3), log_space(0.05, 50.0, 6));
    cutoffs.push(f64::INFINITY);

    let c = bundle.marginal.service_rate_for_utilization(utilization);
    // The shuffles stay serial: each draws from one shared RNG stream,
    // so reordering them would change every figure. Only the per-buffer
    // simulations fan out — they are pure functions of the (already
    // shuffled) trace, so thread count cannot change the surface.
    let mut rng = SmallRng::seed_from_u64(0xf1_95);
    let values_by_cutoff: Vec<Vec<f64>> = cutoffs
        .iter()
        .map(|&tc| {
            let input = if tc.is_finite() {
                external_shuffle_seconds(&bundle.trace, tc, &mut rng)
            } else {
                bundle.trace.clone()
            };
            lrd_pool::par_map(&buffers, |&b| simulate_trace(&input, c, c * b).loss_rate)
        })
        .collect();

    // Transpose to rows = buffers (matching the model grids).
    let values = (0..buffers.len())
        .map(|i| (0..cutoffs.len()).map(|j| values_by_cutoff[j][i]).collect())
        .collect();
    Grid {
        x_label: "cutoff_s".into(),
        y_label: "buffer_s".into(),
        value_label: "loss_rate".into(),
        xs: cutoffs,
        ys: buffers,
        values,
    }
}

/// Fig. 7: shuffled MTV trace at utilization 0.8.
pub fn fig07(corpus: &Corpus, profile: Profile) -> Grid {
    shuffle_grid(&corpus.mtv, MTV_UTILIZATION, profile)
}

/// Fig. 8: shuffled Bellcore trace at utilization 0.4.
pub fn fig08(corpus: &Corpus, profile: Profile) -> Grid {
    shuffle_grid(&corpus.bellcore, BC_UTILIZATION, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_surface_shape() {
        let corpus = Corpus::quick();
        let g = fig07(&corpus, Profile::Quick);
        g.validate();
        assert!(g
            .values
            .iter()
            .flatten()
            .all(|&v| (0.0..=1.0).contains(&v)));
        // Loss decreases with buffer at every cutoff.
        for j in 0..g.xs.len() {
            for i in 1..g.ys.len() {
                assert!(
                    g.values[i][j] <= g.values[i - 1][j] + 1e-12,
                    "loss increased with buffer at cutoff {}",
                    g.xs[j]
                );
            }
        }
    }

    #[test]
    fn longer_cutoffs_lose_at_least_as_much_for_big_buffers() {
        // With buffers comparable to the block length, preserving more
        // correlation (longer blocks) should not make things better.
        // Monte-Carlo noise allows small violations, so compare the
        // shortest and the unshuffled cutoffs only.
        let corpus = Corpus::quick();
        let g = fig07(&corpus, Profile::Quick);
        let last_row = g.values.last().unwrap();
        let first = last_row[0];
        let unshuffled = *last_row.last().unwrap();
        assert!(
            unshuffled >= first * 0.5 - 1e-12,
            "unshuffled loss {unshuffled} unexpectedly below shuffled {first}"
        );
    }

    #[test]
    fn agrees_with_model_on_order_of_magnitude() {
        // The paper observes model-vs-shuffling agreement for MTV. At
        // quick-profile resolution we check the two stay within a
        // couple of orders of magnitude where both are nonzero.
        let corpus = Corpus::quick();
        let model = crate::figures::fig04_05::fig04(&corpus, Profile::Quick);
        let shuffled = fig07(&corpus, Profile::Quick);
        // Compare the (largest buffer, largest finite cutoff) corner.
        let m = model.values[2][2];
        let s = shuffled.values[2][2];
        if m > 1e-8 && s > 1e-8 {
            let ratio = (m / s).max(s / m);
            assert!(ratio < 100.0, "model {m} vs shuffle {s}");
        }
    }
}
