//! Fig. 3 — the marginal rate distributions of the MTV and Bellcore
//! traces (50-bin histograms).

use crate::corpus::Corpus;
use crate::output::Series;

/// Returns the two marginal-distribution series (`rate → probability`).
pub fn run(corpus: &Corpus) -> Vec<Series> {
    [&corpus.mtv, &corpus.bellcore]
        .into_iter()
        .map(|b| {
            Series::new(
                b.name,
                b.marginal
                    .rates()
                    .iter()
                    .copied()
                    .zip(b.marginal.probs().iter().copied())
                    .collect(),
            )
        })
        .collect()
}

/// CSV rendering: each series separately (the rate grids differ), as
/// `trace,rate,probability` long format.
pub fn to_csv(series: &[Series]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("trace,rate_mbps,probability\n");
    for s in series {
        for &(r, p) in &s.points {
            let _ = writeln!(out, "{},{r:.6},{p:.8}", s.name);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_normalized_marginals() {
        let series = run(&Corpus::quick());
        assert_eq!(series.len(), 2);
        for s in &series {
            let total: f64 = s.points.iter().map(|p| p.1).sum();
            assert!((total - 1.0).abs() < 1e-9, "{} sums to {total}", s.name);
            assert!(s.points.len() <= 50);
        }
    }

    #[test]
    fn shapes_match_the_paper_qualitatively() {
        // MTV: concentrated unimodal around ~9.5 Mb/s.
        // Bellcore: mass piled near zero with a long tail.
        let series = run(&Corpus::quick());
        let mode = |s: &Series| {
            s.points
                .iter()
                .cloned()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap()
                .0
        };
        let mtv_mode = mode(&series[0]);
        assert!(
            (mtv_mode - 9.5).abs() < 3.0,
            "MTV mode at {mtv_mode} Mb/s, expected near 9.5"
        );
        let bc_mode = mode(&series[1]);
        let bc_max = series[1].points.last().unwrap().0;
        assert!(
            bc_mode < 0.3 * bc_max,
            "Bellcore mode {bc_mode} should sit in the low-rate region (max {bc_max})"
        );
    }

    #[test]
    fn csv_format() {
        let csv = to_csv(&run(&Corpus::quick()));
        assert!(csv.starts_with("trace,rate_mbps,probability\n"));
        assert!(csv.contains("MTV,"));
        assert!(csv.contains("Bellcore,"));
    }
}
