//! Eq. 26 validation (extension of Fig. 14): correlation horizons
//! extracted from **solver** loss-vs-cutoff curves, across buffer
//! sizes, against the closed-form `T_CH`.
//!
//! Fig. 14 does this with trace shuffling; this experiment does it
//! with the numerical solver, which is free of Monte-Carlo noise and
//! therefore gives a cleaner scaling exponent.
//!
//! The expensive part — the loss-vs-cutoff curve for every buffer —
//! is a plain `(buffer, cutoff)` lattice and therefore a
//! [`SweepPlan`]; the horizon extraction and Eq. 26 comparison are a
//! cheap [`finish`] pass over the solved surface, so the sweep shards
//! and resumes like any other figure.

use crate::corpus::{Corpus, MTV_UTILIZATION};
use crate::figures::{log_space, Profile};
use crate::output::Grid;
use crate::sweep::{run_grid, Axis, FigureSweep, PointResult, SweepPlan};
use lrd_fluidq::{empirical_horizon, SolveSession, SolverOptions};
use lrd_stats::{linear_fit, LinearFit};
use lrd_traffic::Interarrival;

/// The result of the validation sweep.
#[derive(Debug, Clone)]
pub struct ChValidation {
    /// `(buffer_s, empirical CH from the solver)`.
    pub empirical: Vec<(f64, f64)>,
    /// `(buffer_s, Eq. 26 T_CH with p = 0.99)`.
    pub predicted: Vec<(f64, f64)>,
    /// Log-log fit of the empirical horizons (slope ≈ 1 ⇒ linear).
    pub fit: LinearFit,
}

/// Relative flatness tolerance used for the empirical horizon.
pub const FLATNESS_TOL: f64 = 0.15;

/// The `(buffer, cutoff)` loss sweep the horizons are extracted from
/// (MTV bundle at utilization 0.8).
pub fn ch_validation_sweep(corpus: &Corpus, profile: Profile) -> FigureSweep<'_> {
    let buffers = Axis::new(
        "buffer_s",
        profile.pick(log_space(0.02, 0.16, 3), log_space(0.01, 0.64, 7)),
    );
    let cutoffs = Axis::new(
        "cutoff_s",
        profile.pick(log_space(0.02, 20.0, 8), log_space(0.01, 100.0, 13)),
    );
    // Buffer-only variation along axis 0 ⇒ warm starts are sound.
    let plan = SweepPlan::grid_plan(
        "ch_validation",
        profile,
        "loss_rate",
        buffers,
        cutoffs,
        SolverOptions::sweep_profile(),
    )
    .with_warm_axis(0);
    let opts = plan.solver;
    let bundle = &corpus.mtv;
    FigureSweep {
        plan,
        solve: Box::new(move |spec, donor| {
            let (b, tc) = (spec.coord(0), spec.coord(1));
            let model = bundle.model(MTV_UTILIZATION, b, tc);
            let (solution, state) = SolveSession::builder(&model)
                .options(&opts)
                .donor(donor)
                .solve_warm();
            (
                PointResult::from_solution(spec.index, &solution),
                Some(state),
            )
        }),
    }
}

/// Extracts horizons and the Eq. 26 comparison from a solved
/// loss-vs-cutoff surface (rows = buffers, columns = cutoffs — the
/// grid [`ch_validation_sweep`] produces).
pub fn finish(corpus: &Corpus, grid: &Grid) -> ChValidation {
    let bundle = &corpus.mtv;
    let mut empirical = Vec::new();
    let mut predicted = Vec::new();
    for (&b, row) in grid.ys.iter().zip(&grid.values) {
        let curve: Vec<(f64, f64)> = grid.xs.iter().copied().zip(row.iter().copied()).collect();
        if curve.iter().all(|&(_, l)| l < 1e-12) {
            continue;
        }
        if let Some(h) = empirical_horizon(&curve, FLATNESS_TOL) {
            empirical.push((b, h));
        }
        // Eq. 26 with interval moments at a 1-second reference cutoff.
        let iv = bundle.intervals(1.0);
        let c = bundle.marginal.service_rate_for_utilization(MTV_UTILIZATION);
        predicted.push((
            b,
            lrd_fluidq::correlation_horizon(
                c * b,
                iv.mean(),
                iv.variance().sqrt(),
                bundle.marginal.std_dev(),
                0.99,
            ),
        ));
    }

    let fit = if empirical.len() >= 3 {
        let xs: Vec<f64> = empirical.iter().map(|p| p.0.ln()).collect();
        let ys: Vec<f64> = empirical.iter().map(|p| p.1.ln()).collect();
        linear_fit(&xs, &ys)
    } else {
        LinearFit {
            slope: f64::NAN,
            intercept: f64::NAN,
            r_squared: 0.0,
        }
    };
    ChValidation {
        empirical,
        predicted,
        fit,
    }
}

/// Runs the sweep on the MTV bundle at utilization 0.8.
pub fn run(corpus: &Corpus, profile: Profile) -> ChValidation {
    finish(corpus, &run_grid(&ch_validation_sweep(corpus, profile)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizons_scale_with_buffer() {
        let corpus = Corpus::quick();
        let v = run(&corpus, Profile::Quick);
        assert!(!v.predicted.is_empty());
        // Eq. 26 column is exactly linear in B.
        for w in v.predicted.windows(2) {
            let rb = w[1].0 / w[0].0;
            let rt = w[1].1 / w[0].1;
            assert!((rb - rt).abs() < 1e-9);
        }
        // Empirical horizons are non-decreasing in the buffer (the
        // cutoff grid quantizes them, so allow equality).
        for w in v.empirical.windows(2) {
            assert!(
                w[1].1 >= w[0].1 - 1e-12,
                "empirical horizon decreased: {w:?}"
            );
        }
    }
}
