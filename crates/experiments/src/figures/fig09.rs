//! Fig. 9 — loss vs. cutoff lag for the MTV and Bellcore **marginals**
//! with every other parameter held equal (normalized buffer 1 s,
//! utilization 2/3, θ = 20 ms, H = 0.9).
//!
//! This is the paper's first demonstration that the marginal
//! distribution — not the correlation structure — dominates the loss
//! rate: the two curves differ by orders of magnitude even though the
//! interval process is identical.

use crate::corpus::Corpus;
use crate::figures::{log_space, Profile};
use crate::output::Series;
use lrd_fluidq::{QueueModel, SolveSession};
use lrd_traffic::TruncatedPareto;

/// The paper's fixed parameters for this experiment. θ is quoted as
/// "20" in the paper; we read it in milliseconds (0.020 s), which puts
/// the mean interval at `θ/(α−1) = 0.1 s`, consistent with the epoch
/// durations of both traces.
pub const THETA: f64 = 0.020;
/// Common Hurst parameter.
pub const HURST: f64 = 0.9;
/// Common utilization.
pub const UTILIZATION: f64 = 2.0 / 3.0;
/// Common normalized buffer (seconds).
pub const BUFFER_S: f64 = 1.0;

/// Loss vs. `T_c` for both marginals, all else equal.
pub fn run(corpus: &Corpus, profile: Profile) -> Vec<Series> {
    let cutoffs = profile.pick(log_space(0.1, 10.0, 4), log_space(0.05, 100.0, 9));
    let opts = lrd_fluidq::SolverOptions::sweep_profile();
    [&corpus.mtv, &corpus.bellcore]
        .into_iter()
        .map(|bundle| {
            let points = cutoffs
                .iter()
                .map(|&tc| {
                    let iv = TruncatedPareto::from_hurst(HURST, THETA, tc);
                    let model = QueueModel::from_utilization(
                        bundle.marginal.clone(),
                        iv,
                        UTILIZATION,
                        BUFFER_S,
                    );
                    let sol = SolveSession::builder(&model).options(&opts).solve();
                    (tc, sol.loss())
                })
                .collect();
            Series::new(bundle.name, points)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginal_dominates_loss() {
        let corpus = Corpus::quick();
        let series = run(&corpus, Profile::Quick);
        assert_eq!(series.len(), 2);
        let (mtv, bc) = (&series[0], &series[1]);
        // At the largest cutoff both should be computed on the same
        // grid; the Bellcore marginal (heavy-tailed, near-idle mass)
        // must lose far more at equal utilization, mirroring the
        // paper's orders-of-magnitude gap.
        let m = mtv.points.last().unwrap().1;
        let b = bc.points.last().unwrap().1;
        assert!(
            b > 10.0 * m.max(1e-12),
            "expected BC loss ≫ MTV loss, got bc={b:.3e} mtv={m:.3e}"
        );
    }

    #[test]
    fn loss_grows_with_cutoff() {
        let corpus = Corpus::quick();
        for s in run(&corpus, Profile::Quick) {
            for w in s.points.windows(2) {
                assert!(
                    w[1].1 >= w[0].1 * 0.9 - 1e-12,
                    "{}: loss fell from {:?} to {:?}",
                    s.name,
                    w[0],
                    w[1]
                );
            }
        }
    }
}
