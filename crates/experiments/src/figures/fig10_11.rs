//! Figs. 10 and 11 — the Hurst parameter vs. the marginal
//! distribution, MTV at utilization 0.8, normalized buffer 1 s,
//! `T_c = ∞`.
//!
//! * Fig. 10 sweeps the **marginal scaling factor** `a`
//!   (`λ' = λ̄ + a(λ − λ̄)`) against `H`;
//! * Fig. 11 sweeps the **number of superposed streams** `n`
//!   (the `n`-fold convolution renormalized to the original mean)
//!   against `H`.
//!
//! The paper's point: over the practically relevant ranges, changing
//! the marginal moves the loss rate by more than an order of magnitude
//! while changing `H` moves it far less. Following the paper, θ is
//! held at the value calibrated for the *nominal* Hurst parameter so
//! the sweep isolates the tail exponent from the short-range structure.

use crate::corpus::{Corpus, MTV_UTILIZATION};
use crate::figures::{lin_space, Profile};
use crate::output::Grid;
use crate::sweep::{run_grid, Axis, FigureSweep, PointResult, SweepPlan};
use lrd_fluidq::{QueueModel, SolveSession, SolverOptions};

/// Normalized buffer for both figures (seconds).
pub const BUFFER_S: f64 = 1.0;

fn hurst_axis(profile: Profile) -> Axis {
    Axis::new(
        "hurst",
        profile.pick(lin_space(0.55, 0.95, 3), lin_space(0.55, 0.95, 5)),
    )
}

/// The Fig. 10 sweep: loss over `(H, scaling factor a)`.
pub fn fig10_sweep(corpus: &Corpus, profile: Profile) -> FigureSweep<'_> {
    let scales = Axis::new(
        "scaling_a",
        profile.pick(lin_space(0.5, 1.5, 3), lin_space(0.5, 1.5, 5)),
    );
    let plan = SweepPlan::grid_plan(
        "fig10_hurst_vs_scaling",
        profile,
        "loss_rate",
        hurst_axis(profile),
        scales,
        SolverOptions::sweep_profile(),
    );
    let opts = plan.solver;
    let bundle = &corpus.mtv;
    // No warm axis: both axes change the model beyond the buffer size
    // (Hurst alters the interval process, `a` the marginal), so no
    // lattice neighbour satisfies the warm-start donor precondition.
    FigureSweep {
        plan,
        solve: Box::new(move |spec, _donor| {
            let (h, a) = (spec.coord(0), spec.coord(1));
            let model = QueueModel::from_utilization(
                bundle.marginal.scaled(a),
                bundle.intervals_at_hurst(h, f64::INFINITY),
                MTV_UTILIZATION,
                BUFFER_S,
            );
            let solution = SolveSession::builder(&model).options(&opts).solve();
            (PointResult::from_solution(spec.index, &solution), None)
        }),
    }
}

/// The Fig. 11 sweep: loss over `(H, number of superposed streams n)`.
pub fn fig11_sweep(corpus: &Corpus, profile: Profile) -> FigureSweep<'_> {
    let streams = Axis::new(
        "streams_n",
        profile.pick(vec![1.0, 3.0, 10.0], (1..=10).map(f64::from).collect()),
    );
    let plan = SweepPlan::grid_plan(
        "fig11_hurst_vs_multiplex",
        profile,
        "loss_rate",
        hurst_axis(profile),
        streams,
        SolverOptions::sweep_profile(),
    );
    let opts = plan.solver;
    let bundle = &corpus.mtv;
    // No warm axis, for the same reason as Fig. 10 (Hurst and stream
    // count both reshape the model, not just the buffer).
    FigureSweep {
        plan,
        solve: Box::new(move |spec, _donor| {
            let (h, n) = (spec.coord(0), spec.coord(1));
            let marginal = bundle.marginal.superpose(n as usize, 200);
            let model = QueueModel::from_utilization(
                marginal,
                bundle.intervals_at_hurst(h, f64::INFINITY),
                MTV_UTILIZATION,
                BUFFER_S,
            );
            let solution = SolveSession::builder(&model).options(&opts).solve();
            (PointResult::from_solution(spec.index, &solution), None)
        }),
    }
}

/// Fig. 10: loss over `(H, scaling factor a)`.
pub fn fig10(corpus: &Corpus, profile: Profile) -> Grid {
    run_grid(&fig10_sweep(corpus, profile))
}

/// Fig. 11: loss over `(H, number of superposed streams n)`.
pub fn fig11(corpus: &Corpus, profile: Profile) -> Grid {
    run_grid(&fig11_sweep(corpus, profile))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_dominates_hurst() {
        let corpus = Corpus::quick();
        let g = fig10(&corpus, Profile::Quick);
        g.validate();
        // Effect of scaling a: 1.5 → 0.5 at the middle H.
        let mid = g.ys.len() / 2;
        let scale_hi = g.values[mid].last().unwrap();
        let scale_lo = g.values[mid][0];
        // Effect of H: 0.95 vs 0.55 at nominal scaling a = 1.
        let a_mid = g.xs.len() / 2;
        let h_hi = g.values[g.ys.len() - 1][a_mid];
        let h_lo = g.values[0][a_mid];
        let scale_effect = scale_hi / scale_lo.max(1e-300);
        let h_effect = (h_hi / h_lo.max(1e-300)).max(h_lo / h_hi.max(1e-300));
        // Paper headline: the marginal transformation moves loss by
        // more than an order of magnitude. The *relative* dominance of
        // scaling over H depends on the marginal width and is recorded
        // quantitatively for the full profile in EXPERIMENTS.md; here
        // we require the scaling effect to be at least of the same
        // order as the Hurst effect.
        assert!(
            scale_effect > 10.0,
            "scaling 0.5→1.5 should move loss by >10×, got {scale_effect:.2e}"
        );
        assert!(
            scale_effect > 0.2 * h_effect,
            "scaling effect {scale_effect:.2e} vanishingly small next to Hurst effect {h_effect:.2e}"
        );
    }

    #[test]
    fn multiplexing_reduces_loss() {
        let corpus = Corpus::quick();
        let g = fig11(&corpus, Profile::Quick);
        g.validate();
        for (i, row) in g.values.iter().enumerate() {
            let single = row[0];
            let many = *row.last().unwrap();
            assert!(
                many < single || single == 0.0,
                "H={}: n=10 loss {many:.2e} not below n=1 loss {single:.2e}",
                g.ys[i]
            );
        }
    }
}
