//! Extension experiment (paper Sec. IV discussion): **any** model that
//! captures the correlation up to the correlation horizon predicts the
//! same loss — including a memoryless (Markovian) one.
//!
//! We compare the truncated-Pareto model against an exponential-
//! interval model *matched to the same mean interval length*, across
//! buffer sizes. Below the correlation horizon of the smallest buffers
//! the two agree closely; as the buffer (and hence the horizon) grows,
//! the exponential model — whose correlation dies exponentially — can
//! no longer supply the long-lag correlation and underestimates loss.
//! This is exactly the paper's explanation for why Markov models
//! "work" for finite buffers and fail for large ones.

use crate::corpus::{Corpus, MTV_UTILIZATION};
use crate::figures::{log_space, Profile};
use crate::output::Series;
use lrd_fluidq::{QueueModel, SolveSession};
use lrd_traffic::{Exponential, Interarrival};

/// Loss vs. normalized buffer size for the truncated-Pareto model
/// (`T_c = ∞`) and the mean-matched exponential model.
pub fn run(corpus: &Corpus, profile: Profile) -> Vec<Series> {
    let buffers = profile.pick(log_space(0.02, 1.0, 4), log_space(0.01, 5.0, 8));
    let opts = lrd_fluidq::SolverOptions::sweep_profile();
    let bundle = &corpus.mtv;

    let pareto_iv = bundle.intervals(f64::INFINITY);
    let expo_iv = Exponential::new(pareto_iv.mean());

    let mut pareto_pts = Vec::new();
    let mut expo_pts = Vec::new();
    for &b in &buffers {
        let pm = QueueModel::from_utilization(
            bundle.marginal.clone(),
            pareto_iv,
            MTV_UTILIZATION,
            b,
        );
        let em = QueueModel::from_utilization(
            bundle.marginal.clone(),
            expo_iv,
            MTV_UTILIZATION,
            b,
        );
        pareto_pts.push((b, SolveSession::builder(&pm).options(&opts).solve().loss()));
        expo_pts.push((b, SolveSession::builder(&em).options(&opts).solve().loss()));
    }
    vec![
        Series::new("truncated_pareto", pareto_pts),
        Series::new("exponential", expo_pts),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_agree_for_small_buffers_diverge_for_large() {
        let corpus = Corpus::quick();
        let series = run(&corpus, Profile::Quick);
        let pareto = &series[0].points;
        let expo = &series[1].points;

        // Smallest buffer: both models see only sub-horizon correlation
        // → same order of magnitude.
        let (p0, e0) = (pareto[0].1, expo[0].1);
        if p0 > 1e-9 && e0 > 1e-9 {
            let ratio = (p0 / e0).max(e0 / p0);
            assert!(ratio < 10.0, "small-buffer disagreement: {p0:.2e} vs {e0:.2e}");
        }

        // Largest buffer: the LRD model must lose at least as much as
        // the SRD model (long bursts defeat the buffer), and typically
        // much more.
        let (pl, el) = (pareto.last().unwrap().1, expo.last().unwrap().1);
        assert!(
            pl >= el * 0.9 - 1e-15,
            "LRD loss {pl:.2e} below SRD loss {el:.2e} at the largest buffer"
        );
    }
}
