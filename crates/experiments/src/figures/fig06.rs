//! Fig. 6 — the external-shuffling procedure demonstrated on data:
//! the autocorrelation of the MTV-like trace before and after block
//! shuffling, showing correlation surviving below the block length
//! and vanishing above. (The paper's Fig. 6 is the procedure
//! illustration itself; shuffling is exercised quantitatively by
//! Figs. 7/8/14.)

use crate::corpus::Corpus;
use lrd_rng::rngs::SmallRng;
use lrd_rng::SeedableRng;
use lrd_traffic::shuffle::external_shuffle;

/// Samples per shuffle block for the demonstration.
pub const BLOCK: usize = 64;

/// The before/after autocorrelation curves.
#[derive(Debug, Clone)]
pub struct Fig06 {
    /// ACF of the original trace, lags `0..=4·BLOCK`.
    pub before: Vec<f64>,
    /// ACF of the externally shuffled trace, same lags.
    pub after: Vec<f64>,
}

/// Shuffles the MTV-like trace in `BLOCK`-sample blocks (fixed seed)
/// and measures both autocorrelations.
pub fn run(corpus: &Corpus) -> Fig06 {
    let trace = &corpus.mtv.trace;
    let mut rng = SmallRng::seed_from_u64(6);
    let shuffled = external_shuffle(trace, BLOCK, &mut rng);
    let max_lag = 4 * BLOCK;
    Fig06 {
        before: lrd_stats::autocorrelation(trace.rates(), max_lag),
        after: lrd_stats::autocorrelation(shuffled.rates(), max_lag),
    }
}

/// CSV with one row per lag.
pub fn to_csv(fig: &Fig06) -> String {
    let mut csv = String::from("lag_samples,acf_original,acf_shuffled\n");
    for (k, (b, a)) in fig.before.iter().zip(&fig.after).enumerate() {
        csv.push_str(&format!("{k},{b:.6},{a:.6}\n"));
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffling_kills_long_lag_correlation() {
        let corpus = Corpus::quick();
        let fig = run(&corpus);
        assert_eq!(fig.before.len(), 4 * BLOCK + 1);
        assert_eq!(fig.after.len(), 4 * BLOCK + 1);
        // Determinism: the fixed seed makes the curve reproducible.
        let again = run(&corpus);
        assert_eq!(fig.after, again.after);
        // Within a quarter block, most correlation survives; at two
        // blocks, it is largely destroyed relative to the original.
        let short = fig.after[BLOCK / 4] / fig.before[BLOCK / 4].max(1e-12);
        let long = fig.after[2 * BLOCK] / fig.before[2 * BLOCK].max(1e-12);
        assert!(short > long, "short-lag survival {short} <= long-lag {long}");
    }
}
