//! One module per paper figure (Fig. 6 is a procedure illustration —
//! the shuffling itself — exercised by figs. 7/8/14 and the
//! `lrd-traffic` tests rather than regenerated as data).

pub mod fig02;
pub mod fig03;
pub mod fig04_05;
pub mod fig06;
pub mod fig07_08;
pub mod fig09;
pub mod fig10_11;
pub mod fig12_13;
pub mod fig14;
pub mod ch_validation;
pub mod markov_baseline;
pub mod trace_loss;

/// Grid-size profile: `Quick` keeps every experiment under a couple of
/// seconds for tests; `Full` reproduces the published resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Reduced grids, short traces; used by the test suite.
    Quick,
    /// Publication-resolution grids.
    Full,
}

impl Profile {
    /// Picks one of two values by profile.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Profile::Quick => quick,
            Profile::Full => full,
        }
    }

    /// The stable string tag stored in checkpoint manifests.
    pub fn tag(self) -> &'static str {
        match self {
            Profile::Quick => "quick",
            Profile::Full => "full",
        }
    }

    /// Parses a manifest/CLI tag back into a profile.
    pub fn from_tag(tag: &str) -> Option<Profile> {
        match tag {
            "quick" => Some(Profile::Quick),
            "full" => Some(Profile::Full),
            _ => None,
        }
    }
}

/// Logarithmically spaced values from `lo` to `hi` inclusive.
pub fn log_space(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && count >= 2);
    let (a, b) = (lo.ln(), hi.ln());
    (0..count)
        .map(|i| (a + (b - a) * i as f64 / (count - 1) as f64).exp())
        .collect()
}

/// Linearly spaced values from `lo` to `hi` inclusive.
pub fn lin_space(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    assert!(hi > lo && count >= 2);
    (0..count)
        .map(|i| lo + (hi - lo) * i as f64 / (count - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spacings() {
        let l = log_space(0.01, 100.0, 5);
        assert_eq!(l.len(), 5);
        assert!((l[0] - 0.01).abs() < 1e-12);
        assert!((l[4] - 100.0).abs() < 1e-9);
        // Constant ratio.
        let r = l[1] / l[0];
        for w in l.windows(2) {
            assert!((w[1] / w[0] - r).abs() < 1e-9);
        }
        let s = lin_space(0.0, 1.0, 3);
        assert_eq!(s, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn profile_pick() {
        assert_eq!(Profile::Quick.pick(1, 2), 1);
        assert_eq!(Profile::Full.pick(1, 2), 2);
    }

    #[test]
    fn profile_tags_round_trip() {
        for p in [Profile::Quick, Profile::Full] {
            assert_eq!(Profile::from_tag(p.tag()), Some(p));
        }
        assert_eq!(Profile::from_tag("fast"), None);
    }
}
