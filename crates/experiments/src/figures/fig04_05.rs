//! Figs. 4 and 5 — the loss rate predicted by the **model** as a
//! function of normalized buffer size and cutoff lag (MTV at
//! utilization 0.8, Bellcore at 0.4).
//!
//! These are the surfaces that exhibit the paper's two headline
//! phenomena: the **correlation horizon** (for each buffer, loss stops
//! changing once `T_c` exceeds a buffer-dependent value) and **buffer
//! ineffectiveness** (for large `T_c`, growing the buffer barely
//! reduces loss).

use crate::corpus::{Corpus, TraceBundle, BC_UTILIZATION, MTV_UTILIZATION};
use crate::figures::Profile;
use crate::output::Grid;
use crate::sweep::{run_grid, Axis, FigureSweep, PointResult, SweepPlan};
use lrd_fluidq::{SolveSession, SolverOptions};

/// The `(normalized buffer, cutoff lag)` sweep for one bundle. The
/// axis order (buffers slowest) reproduces the historical nested-loop
/// surface point for point.
pub fn loss_sweep<'c>(
    figure: &str,
    bundle: &'c TraceBundle,
    utilization: f64,
    profile: Profile,
) -> FigureSweep<'c> {
    let buffers = Axis::new(
        "buffer_s",
        profile.pick(
            crate::figures::log_space(0.05, 2.0, 3),
            crate::figures::log_space(0.01, 5.0, 7),
        ),
    );
    let cutoffs = Axis::new(
        "cutoff_s",
        profile.pick(
            crate::figures::log_space(0.05, 5.0, 3),
            crate::figures::log_space(0.01, 100.0, 7),
        ),
    )
    .with_value(f64::INFINITY);
    // Along the buffer axis the model differs only in buffer size, so
    // a point may warm-start from its smaller-buffer predecessor —
    // the donor precondition of `try_solve_warm`.
    let plan = SweepPlan::grid_plan(
        figure,
        profile,
        "loss_rate",
        buffers,
        cutoffs,
        SolverOptions::sweep_profile(),
    )
    .with_warm_axis(0);
    let opts = plan.solver;
    FigureSweep {
        plan,
        solve: Box::new(move |spec, donor| {
            let (b, tc) = (spec.coord(0), spec.coord(1));
            let (solution, state) = SolveSession::builder(&bundle.model(utilization, b, tc))
                .options(&opts)
                .donor(donor)
                .solve_warm();
            (
                PointResult::from_solution(spec.index, &solution),
                Some(state),
            )
        }),
    }
}

/// The Fig. 4 sweep (MTV at utilization 0.8).
pub fn fig04_sweep(corpus: &Corpus, profile: Profile) -> FigureSweep<'_> {
    loss_sweep("fig04_mtv_model", &corpus.mtv, MTV_UTILIZATION, profile)
}

/// The Fig. 5 sweep (Bellcore at utilization 0.4).
pub fn fig05_sweep(corpus: &Corpus, profile: Profile) -> FigureSweep<'_> {
    loss_sweep("fig05_bc_model", &corpus.bellcore, BC_UTILIZATION, profile)
}

/// Fig. 4: the MTV surface at utilization 0.8.
pub fn fig04(corpus: &Corpus, profile: Profile) -> Grid {
    run_grid(&fig04_sweep(corpus, profile))
}

/// Fig. 5: the Bellcore surface at utilization 0.4.
pub fn fig05(corpus: &Corpus, profile: Profile) -> Grid {
    run_grid(&fig05_sweep(corpus, profile))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtv_surface_shape() {
        let corpus = Corpus::quick();
        let g = fig04(&corpus, Profile::Quick);
        g.validate();
        // Loss is non-increasing in buffer (rows, at fixed cutoff) and
        // non-decreasing in cutoff (columns, at fixed buffer).
        for j in 0..g.xs.len() {
            for i in 1..g.ys.len() {
                assert!(
                    g.values[i][j] <= g.values[i - 1][j] * 1.05 + 1e-12,
                    "loss increased with buffer at cutoff {}",
                    g.xs[j]
                );
            }
        }
        for i in 0..g.ys.len() {
            for j in 1..g.xs.len() {
                assert!(
                    g.values[i][j] >= g.values[i][j - 1] * 0.95 - 1e-12,
                    "loss decreased with cutoff at buffer {}",
                    g.ys[i]
                );
            }
        }
        // All values are valid loss rates.
        assert!(g
            .values
            .iter()
            .flatten()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn correlation_horizon_exists() {
        // For the smallest buffer, the loss at a moderate cutoff is
        // already close to the infinite-cutoff loss — correlation
        // beyond the horizon is irrelevant.
        let corpus = Corpus::quick();
        let g = fig04(&corpus, Profile::Quick);
        let row = &g.values[0]; // smallest buffer
        let last = *row.last().unwrap(); // T_c = ∞
        let mid = row[row.len() - 2]; // largest finite cutoff
        if last > 0.0 {
            assert!(
                ((mid - last) / last).abs() < 0.5,
                "moderate-cutoff loss {mid} far from infinite-cutoff loss {last}"
            );
        }
    }
}
