//! Figs. 4 and 5 — the loss rate predicted by the **model** as a
//! function of normalized buffer size and cutoff lag (MTV at
//! utilization 0.8, Bellcore at 0.4).
//!
//! These are the surfaces that exhibit the paper's two headline
//! phenomena: the **correlation horizon** (for each buffer, loss stops
//! changing once `T_c` exceeds a buffer-dependent value) and **buffer
//! ineffectiveness** (for large `T_c`, growing the buffer barely
//! reduces loss).

use crate::corpus::{Corpus, TraceBundle, BC_UTILIZATION, MTV_UTILIZATION};
use crate::figures::{log_space, solver_options, Profile};
use crate::output::Grid;
use lrd_fluidq::solve;

/// Loss-rate grid over `(normalized buffer, cutoff lag)` for one
/// bundle, solved with the paper's convergence protocol at every
/// point.
pub fn loss_grid(bundle: &TraceBundle, utilization: f64, profile: Profile) -> Grid {
    let buffers = profile.pick(
        log_space(0.05, 2.0, 3),
        log_space(0.01, 5.0, 7),
    );
    let mut cutoffs = profile.pick(
        log_space(0.05, 5.0, 3),
        log_space(0.01, 100.0, 7),
    );
    cutoffs.push(f64::INFINITY);

    let opts = solver_options();
    // Every (buffer, cutoff) point is an independent solve, so the
    // flattened cross product goes through the worker pool; each solve
    // is internally deterministic, so the surface is identical for any
    // thread count.
    let points: Vec<(f64, f64)> = buffers
        .iter()
        .flat_map(|&b| cutoffs.iter().map(move |&tc| (b, tc)))
        .collect();
    let flat = lrd_pool::par_map(&points, |&(b, tc)| {
        solve(&bundle.model(utilization, b, tc), &opts).loss()
    });
    let values = flat
        .chunks(cutoffs.len())
        .map(|row| row.to_vec())
        .collect();
    Grid {
        x_label: "cutoff_s".into(),
        y_label: "buffer_s".into(),
        value_label: "loss_rate".into(),
        xs: cutoffs,
        ys: buffers,
        values,
    }
}

/// Fig. 4: the MTV surface at utilization 0.8.
pub fn fig04(corpus: &Corpus, profile: Profile) -> Grid {
    loss_grid(&corpus.mtv, MTV_UTILIZATION, profile)
}

/// Fig. 5: the Bellcore surface at utilization 0.4.
pub fn fig05(corpus: &Corpus, profile: Profile) -> Grid {
    loss_grid(&corpus.bellcore, BC_UTILIZATION, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtv_surface_shape() {
        let corpus = Corpus::quick();
        let g = fig04(&corpus, Profile::Quick);
        g.validate();
        // Loss is non-increasing in buffer (rows, at fixed cutoff) and
        // non-decreasing in cutoff (columns, at fixed buffer).
        for j in 0..g.xs.len() {
            for i in 1..g.ys.len() {
                assert!(
                    g.values[i][j] <= g.values[i - 1][j] * 1.05 + 1e-12,
                    "loss increased with buffer at cutoff {}",
                    g.xs[j]
                );
            }
        }
        for i in 0..g.ys.len() {
            for j in 1..g.xs.len() {
                assert!(
                    g.values[i][j] >= g.values[i][j - 1] * 0.95 - 1e-12,
                    "loss decreased with cutoff at buffer {}",
                    g.ys[i]
                );
            }
        }
        // All values are valid loss rates.
        assert!(g
            .values
            .iter()
            .flatten()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn correlation_horizon_exists() {
        // For the smallest buffer, the loss at a moderate cutoff is
        // already close to the infinite-cutoff loss — correlation
        // beyond the horizon is irrelevant.
        let corpus = Corpus::quick();
        let g = fig04(&corpus, Profile::Quick);
        let row = &g.values[0]; // smallest buffer
        let last = *row.last().unwrap(); // T_c = ∞
        let mid = row[row.len() - 2]; // largest finite cutoff
        if last > 0.0 {
            assert!(
                ((mid - last) / last).abs() < 0.5,
                "moderate-cutoff loss {mid} far from infinite-cutoff loss {last}"
            );
        }
    }
}
