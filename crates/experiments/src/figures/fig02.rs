//! Fig. 2 — convergence of the discrete occupancy bounds
//! `Q_{L,H}^M(n)` for `n = 5, 10, 30` iterations at `M = 100`.
//!
//! The lower chain starts empty, the upper chain starts full; as `n`
//! grows the two cumulative distributions squeeze toward the
//! stationary occupancy law from opposite sides.

use crate::corpus::Corpus;
use crate::figures::Profile;
use lrd_fluidq::{BoundSolver, LossSolution, SolveSession, SolverOptions};

/// The bound distributions after a given iteration count.
#[derive(Debug, Clone)]
pub struct BoundsSnapshot {
    /// Iteration count `n` of this snapshot.
    pub n: usize,
    /// `Pr{Q_L^M(n) = j·d}`, `j = 0..=M`.
    pub lower: Vec<f64>,
    /// `Pr{Q_H^M(n) = j·d}`.
    pub upper: Vec<f64>,
}

/// Fig. 2 data: the occupancy grid plus snapshots at the paper's
/// iteration counts.
#[derive(Debug, Clone)]
pub struct Fig02 {
    /// Occupancy grid values `j·d` in Mb, `j = 0..=M`.
    pub occupancy: Vec<f64>,
    /// Snapshots at `n = 5, 10, 30`.
    pub snapshots: Vec<BoundsSnapshot>,
}

/// Runs Fig. 2 on the MTV bundle (utilization 0.8, normalized buffer
/// 1 s, untruncated intervals) with the paper's `M = 100`.
pub fn run(corpus: &Corpus, _profile: Profile) -> Fig02 {
    let model = corpus.mtv.model(crate::corpus::MTV_UTILIZATION, 1.0, f64::INFINITY);
    let bins = 100;
    let d = model.buffer() / bins as f64;
    let mut solver = BoundSolver::new(model, bins);
    let mut snapshots = Vec::new();
    for n in 1..=30usize {
        solver.step();
        if matches!(n, 5 | 10 | 30) {
            snapshots.push(BoundsSnapshot {
                n,
                lower: solver.occupancy_lower().to_vec(),
                upper: solver.occupancy_upper().to_vec(),
            });
        }
    }
    Fig02 {
        occupancy: (0..=bins).map(|j| j as f64 * d).collect(),
        snapshots,
    }
}

/// Solves the Fig. 2 system to stationarity with a deliberately coarse
/// starting grid and a tight per-level iteration cap, so the full
/// convergence protocol — per-iteration gap narrowing, at least one
/// footnote-3 grid refinement, and the final mass-conservation check —
/// runs end to end. The figure's snapshots show the transient; this
/// companion solve shows (and, under `--telemetry`, records) the
/// endgame.
pub fn stationary_bounds(corpus: &Corpus) -> LossSolution {
    let model = corpus.mtv.model(crate::corpus::MTV_UTILIZATION, 1.0, f64::INFINITY);
    let opts = SolverOptions {
        initial_bins: 64,
        max_bins: 1 << 10,
        max_iterations_per_level: 64,
        rel_gap: 0.05,
        ..SolverOptions::default()
    };
    SolveSession::builder(&model).options(&opts).solve()
}

/// CSV rendering: columns `q, qL5, qH5, qL10, qH10, qL30, qH30` of
/// **cumulative** probabilities (the paper plots CDFs).
pub fn to_csv(fig: &Fig02) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("occupancy");
    for s in &fig.snapshots {
        let _ = write!(out, ",qL{n},qH{n}", n = s.n);
    }
    out.push('\n');
    let cumulate = |v: &[f64]| {
        let mut acc = 0.0;
        v.iter()
            .map(|&p| {
                acc += p;
                acc
            })
            .collect::<Vec<_>>()
    };
    let cdfs: Vec<(Vec<f64>, Vec<f64>)> = fig
        .snapshots
        .iter()
        .map(|s| (cumulate(&s.lower), cumulate(&s.upper)))
        .collect();
    for (j, &q) in fig.occupancy.iter().enumerate() {
        let _ = write!(out, "{q:.6}");
        for (lo, hi) in &cdfs {
            let _ = write!(out, ",{:.6},{:.6}", lo[j], hi[j]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_squeeze_monotonically() {
        let corpus = Corpus::quick();
        let fig = run(&corpus, Profile::Quick);
        assert_eq!(fig.snapshots.len(), 3);
        assert_eq!(fig.occupancy.len(), 101);

        // Stochastic order within every snapshot: the lower chain's CDF
        // dominates the upper chain's CDF pointwise.
        for s in &fig.snapshots {
            let mut cl = 0.0;
            let mut ch = 0.0;
            for j in 0..s.lower.len() {
                cl += s.lower[j];
                ch += s.upper[j];
                assert!(cl >= ch - 1e-9, "order violated at n={}, j={j}", s.n);
            }
        }
        // Squeeze across n: the n=30 gap is no wider than the n=5 gap
        // at the median of the grid.
        let gap_at = |s: &BoundsSnapshot, j: usize| {
            let cl: f64 = s.lower[..=j].iter().sum();
            let ch: f64 = s.upper[..=j].iter().sum();
            cl - ch
        };
        let mid = fig.occupancy.len() / 2;
        assert!(gap_at(&fig.snapshots[2], mid) <= gap_at(&fig.snapshots[0], mid) + 1e-9);
    }

    #[test]
    fn stationary_solve_refines_at_least_once() {
        let corpus = Corpus::quick();
        let sol = stationary_bounds(&corpus);
        assert!(sol.lower <= sol.upper);
        assert!(
            !sol.refinement_epochs.is_empty(),
            "the tight per-level cap must force a refinement: {sol:?}"
        );
        assert!(!sol.gap_history.is_empty());
    }

    #[test]
    fn csv_has_expected_shape() {
        let corpus = Corpus::quick();
        let fig = run(&corpus, Profile::Quick);
        let csv = to_csv(&fig);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "occupancy,qL5,qH5,qL10,qH10,qL30,qH30"
        );
        assert_eq!(lines.count(), 101);
    }
}
