//! Fig. 14 — the correlation horizon scales **linearly with the buffer
//! size**.
//!
//! The paper re-plots the Fig. 7 shuffle surface on logarithmic axes
//! and observes that it flattens along lines `B/T_c = const`. We make
//! that quantitative: for each buffer size, extract the empirical
//! correlation horizon from the loss-vs-cutoff curve, then fit
//! `log CH` against `log B` — a slope near 1 is the paper's linear
//! scaling. The Eq. 26 prediction is evaluated alongside.

use crate::corpus::{Corpus, MTV_UTILIZATION};
use crate::figures::{fig07_08, Profile};
use crate::output::Grid;
use lrd_fluidq::empirical_horizon;
use lrd_stats::{linear_fit, LinearFit};

/// Fig. 14 data: the shuffle surface, the per-buffer empirical
/// horizons, and the log-log fit of horizon vs. buffer.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// The underlying shuffle loss surface (same data as Fig. 7).
    pub grid: Grid,
    /// `(normalized buffer [s], empirical correlation horizon [s])`.
    pub horizons: Vec<(f64, f64)>,
    /// OLS fit of `ln CH` on `ln B`; slope ≈ 1 ⇒ linear scaling.
    pub fit: LinearFit,
    /// Eq. 26 predictions `(buffer, T_CH)` using the MTV moments and
    /// `p = 0.99`, for comparison.
    pub predicted: Vec<(f64, f64)>,
}

/// Relative tolerance used to declare the loss curve "flat" beyond the
/// horizon (the paper's qualitative criterion made concrete).
pub const FLATNESS_TOL: f64 = 0.25;

/// Runs the Fig. 14 analysis on the MTV bundle.
pub fn run(corpus: &Corpus, profile: Profile) -> Fig14 {
    let grid = fig07_08::shuffle_grid(&corpus.mtv, MTV_UTILIZATION, profile);
    let mut horizons = Vec::new();
    for (i, &b) in grid.ys.iter().enumerate() {
        let curve: Vec<(f64, f64)> = grid
            .xs
            .iter()
            .zip(&grid.values[i])
            .filter(|(tc, _)| tc.is_finite())
            .map(|(&tc, &l)| (tc, l))
            .collect();
        // Skip buffers whose loss is identically ~0: no horizon signal.
        if curve.iter().all(|&(_, l)| l < 1e-12) {
            continue;
        }
        if let Some(h) = empirical_horizon(&curve, FLATNESS_TOL) {
            horizons.push((b, h));
        }
    }
    let fit = if horizons.len() >= 2
        && horizons.windows(2).any(|w| w[0].0 != w[1].0)
        && horizons.windows(2).any(|w| w[0].1 != w[1].1)
    {
        let xs: Vec<f64> = horizons.iter().map(|p| p.0.ln()).collect();
        let ys: Vec<f64> = horizons.iter().map(|p| p.1.ln()).collect();
        linear_fit(&xs, &ys)
    } else {
        // Degenerate quick-profile case: report a flat fit.
        LinearFit {
            slope: f64::NAN,
            intercept: f64::NAN,
            r_squared: 0.0,
        }
    };

    // Eq. 26 prediction: the interval moments come from the calibrated
    // truncated Pareto evaluated at a representative finite cutoff
    // (the measured horizon scale itself), the rate σ from the
    // marginal.
    let bundle = &corpus.mtv;
    let c = bundle
        .marginal
        .service_rate_for_utilization(MTV_UTILIZATION);
    let predicted = grid
        .ys
        .iter()
        .map(|&b_s| {
            use lrd_traffic::Interarrival;
            let iv = bundle.intervals(1.0);
            let t_ch = lrd_fluidq::correlation_horizon(
                c * b_s,
                iv.mean(),
                iv.variance().sqrt(),
                bundle.marginal.std_dev(),
                0.99,
            );
            (b_s, t_ch)
        })
        .collect();

    Fig14 {
        grid,
        horizons,
        fit,
        predicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizons_grow_with_buffer() {
        let corpus = Corpus::quick();
        let fig = run(&corpus, Profile::Quick);
        // With the quick grids we only require the horizon sequence to
        // be non-decreasing where defined.
        for w in fig.horizons.windows(2) {
            assert!(
                w[1].1 >= w[0].1 * 0.5,
                "horizon shrank sharply with buffer: {w:?}"
            );
        }
    }

    #[test]
    fn eq26_prediction_is_linear_in_buffer() {
        let corpus = Corpus::quick();
        let fig = run(&corpus, Profile::Quick);
        let p = &fig.predicted;
        assert!(p.len() >= 2);
        for w in p.windows(2) {
            let ratio_b = w[1].0 / w[0].0;
            let ratio_t = w[1].1 / w[0].1;
            assert!(
                (ratio_b - ratio_t).abs() < 1e-9,
                "Eq. 26 not linear: {w:?}"
            );
        }
    }
}
