//! Figs. 12 and 13 — normalized buffer size vs. marginal scaling
//! factor (MTV at utilization 0.8, Bellcore at 0.4, `T_c = ∞`).
//!
//! The paper's punchline: halving the marginal's width (`a: 1 → 0.5`)
//! reduces loss more than growing the buffer to 5 s — "controlling the
//! loss rate by increasing the buffer size is much less efficient than
//! controlling the loss rate by adjusting the marginal distribution".

use crate::corpus::{Corpus, TraceBundle, BC_UTILIZATION, MTV_UTILIZATION};
use crate::figures::Profile;
use crate::output::Grid;
use crate::sweep::{run_grid, Axis, FigureSweep, PointResult, SweepPlan};
use lrd_fluidq::{QueueModel, SolveSession, SolverOptions};

/// The `(normalized buffer, scaling factor)` sweep at `T_c = ∞` for
/// one bundle.
pub fn buffer_scaling_sweep<'c>(
    figure: &str,
    bundle: &'c TraceBundle,
    utilization: f64,
    profile: Profile,
) -> FigureSweep<'c> {
    let buffers = Axis::new(
        "buffer_s",
        profile.pick(
            crate::figures::log_space(0.05, 2.0, 3),
            crate::figures::log_space(0.01, 5.0, 7),
        ),
    );
    let scales = Axis::new(
        "scaling_a",
        profile.pick(
            crate::figures::lin_space(0.5, 1.5, 3),
            crate::figures::lin_space(0.5, 1.5, 5),
        ),
    );
    // The scaling factor is fixed within a buffer column, so the
    // buffer axis satisfies `try_solve_warm`'s buffer-only donor
    // precondition and may carry warm starts.
    let plan = SweepPlan::grid_plan(
        figure,
        profile,
        "loss_rate",
        buffers,
        scales,
        SolverOptions::sweep_profile(),
    )
    .with_warm_axis(0);
    let opts = plan.solver;
    FigureSweep {
        plan,
        solve: Box::new(move |spec, donor| {
            let (b, a) = (spec.coord(0), spec.coord(1));
            let model = QueueModel::from_utilization(
                bundle.marginal.scaled(a),
                bundle.intervals(f64::INFINITY),
                utilization,
                b,
            );
            let (solution, state) = SolveSession::builder(&model)
                .options(&opts)
                .donor(donor)
                .solve_warm();
            (
                PointResult::from_solution(spec.index, &solution),
                Some(state),
            )
        }),
    }
}

/// The Fig. 12 sweep (MTV at utilization 0.8).
pub fn fig12_sweep(corpus: &Corpus, profile: Profile) -> FigureSweep<'_> {
    buffer_scaling_sweep("fig12_mtv_buffer_scaling", &corpus.mtv, MTV_UTILIZATION, profile)
}

/// The Fig. 13 sweep (Bellcore at utilization 0.4).
pub fn fig13_sweep(corpus: &Corpus, profile: Profile) -> FigureSweep<'_> {
    buffer_scaling_sweep("fig13_bc_buffer_scaling", &corpus.bellcore, BC_UTILIZATION, profile)
}

/// Fig. 12: MTV at utilization 0.8.
pub fn fig12(corpus: &Corpus, profile: Profile) -> Grid {
    run_grid(&fig12_sweep(corpus, profile))
}

/// Fig. 13: Bellcore at utilization 0.4.
pub fn fig13(corpus: &Corpus, profile: Profile) -> Grid {
    run_grid(&fig13_sweep(corpus, profile))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrowing_the_marginal_beats_buffering() {
        let corpus = Corpus::quick();
        let g = fig12(&corpus, Profile::Quick);
        g.validate();
        // Loss at (smallest buffer, a = 0.5) vs (largest buffer, a = 1).
        let narrow_small_buf = g.values[0][0];
        let wide_big_buf = g.values[g.ys.len() - 1][g.xs.len() / 2];
        assert!(
            narrow_small_buf <= wide_big_buf * 2.0 + 1e-12,
            "narrowed marginal with tiny buffer ({narrow_small_buf:.2e}) should rival \
             the widest buffer at nominal scaling ({wide_big_buf:.2e})"
        );
    }

    #[test]
    fn loss_monotone_in_both_axes() {
        let corpus = Corpus::quick();
        for g in [fig12(&corpus, Profile::Quick), fig13(&corpus, Profile::Quick)] {
            for i in 0..g.ys.len() {
                for j in 1..g.xs.len() {
                    assert!(
                        g.values[i][j] >= g.values[i][j - 1] * 0.9 - 1e-12,
                        "loss not increasing in scaling at buffer {}",
                        g.ys[i]
                    );
                }
            }
            for j in 0..g.xs.len() {
                for i in 1..g.ys.len() {
                    assert!(
                        g.values[i][j] <= g.values[i - 1][j] * 1.1 + 1e-12,
                        "loss not decreasing in buffer at scaling {}",
                        g.xs[j]
                    );
                }
            }
        }
    }
}
