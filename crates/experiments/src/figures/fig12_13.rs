//! Figs. 12 and 13 — normalized buffer size vs. marginal scaling
//! factor (MTV at utilization 0.8, Bellcore at 0.4, `T_c = ∞`).
//!
//! The paper's punchline: halving the marginal's width (`a: 1 → 0.5`)
//! reduces loss more than growing the buffer to 5 s — "controlling the
//! loss rate by increasing the buffer size is much less efficient than
//! controlling the loss rate by adjusting the marginal distribution".

use crate::corpus::{Corpus, TraceBundle, BC_UTILIZATION, MTV_UTILIZATION};
use crate::figures::{lin_space, log_space, solver_options, Profile};
use crate::output::Grid;
use lrd_fluidq::{solve, QueueModel};

/// Loss grid over `(normalized buffer, scaling factor)` at `T_c = ∞`.
pub fn buffer_scaling_grid(bundle: &TraceBundle, utilization: f64, profile: Profile) -> Grid {
    let buffers = profile.pick(log_space(0.05, 2.0, 3), log_space(0.01, 5.0, 7));
    let scales = profile.pick(lin_space(0.5, 1.5, 3), lin_space(0.5, 1.5, 5));
    let opts = solver_options();
    // Independent solves over the (buffer, scale) cross product — same
    // pool-backed fan-out as the Fig. 4/5 surfaces.
    let points: Vec<(f64, f64)> = buffers
        .iter()
        .flat_map(|&b| scales.iter().map(move |&a| (b, a)))
        .collect();
    let flat = lrd_pool::par_map(&points, |&(b, a)| {
        let model = QueueModel::from_utilization(
            bundle.marginal.scaled(a),
            bundle.intervals(f64::INFINITY),
            utilization,
            b,
        );
        solve(&model, &opts).loss()
    });
    let values = flat.chunks(scales.len()).map(|row| row.to_vec()).collect();
    Grid {
        x_label: "scaling_a".into(),
        y_label: "buffer_s".into(),
        value_label: "loss_rate".into(),
        xs: scales,
        ys: buffers,
        values,
    }
}

/// Fig. 12: MTV at utilization 0.8.
pub fn fig12(corpus: &Corpus, profile: Profile) -> Grid {
    buffer_scaling_grid(&corpus.mtv, MTV_UTILIZATION, profile)
}

/// Fig. 13: Bellcore at utilization 0.4.
pub fn fig13(corpus: &Corpus, profile: Profile) -> Grid {
    buffer_scaling_grid(&corpus.bellcore, BC_UTILIZATION, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrowing_the_marginal_beats_buffering() {
        let corpus = Corpus::quick();
        let g = fig12(&corpus, Profile::Quick);
        g.validate();
        // Loss at (smallest buffer, a = 0.5) vs (largest buffer, a = 1).
        let narrow_small_buf = g.values[0][0];
        let wide_big_buf = g.values[g.ys.len() - 1][g.xs.len() / 2];
        assert!(
            narrow_small_buf <= wide_big_buf * 2.0 + 1e-12,
            "narrowed marginal with tiny buffer ({narrow_small_buf:.2e}) should rival \
             the widest buffer at nominal scaling ({wide_big_buf:.2e})"
        );
    }

    #[test]
    fn loss_monotone_in_both_axes() {
        let corpus = Corpus::quick();
        for g in [fig12(&corpus, Profile::Quick), fig13(&corpus, Profile::Quick)] {
            for i in 0..g.ys.len() {
                for j in 1..g.xs.len() {
                    assert!(
                        g.values[i][j] >= g.values[i][j - 1] * 0.9 - 1e-12,
                        "loss not increasing in scaling at buffer {}",
                        g.ys[i]
                    );
                }
            }
            for j in 0..g.xs.len() {
                for i in 1..g.ys.len() {
                    assert!(
                        g.values[i][j] <= g.values[i - 1][j] * 1.1 + 1e-12,
                        "loss not decreasing in buffer at scaling {}",
                        g.xs[j]
                    );
                }
            }
        }
    }
}
