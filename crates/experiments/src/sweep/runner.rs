//! Shard execution: fan a plan's points through the worker pool,
//! streaming completed results to a resumable checkpoint.

use std::collections::HashMap;
use std::fs::File;
use std::io::Write;
use std::path::Path;

use crate::output::Grid;
use crate::sweep::checkpoint::{open_checkpoint, CheckpointOrigin};
use crate::sweep::{point_line, PointResult, PointSpec, ShardSpec, SweepError, SweepPlan};
use lrd_fluidq::WarmState;

/// How many points are solved between checkpoint flushes. Small enough
/// that a killed run loses at most a few seconds of work on quick
/// profiles; large enough that the write amortises across a `par_map`
/// batch.
pub const CHECKPOINT_CHUNK: usize = 8;

/// How many times a transient checkpoint-append failure is attempted
/// before the shard aborts with [`SweepError::Io`].
const APPEND_ATTEMPTS: u32 = 5;

/// A runnable sweep: the declarative [`SweepPlan`] plus the function
/// that solves one lattice point.
///
/// Figure modules expose `*_sweep(corpus, profile)` constructors that
/// borrow the corpus (hence the lifetime) and capture everything a
/// point solve needs; the runner never inspects the closure, so every
/// figure-specific detail stays in its module.
pub struct FigureSweep<'a> {
    /// The declarative plan: axes, order, hash.
    pub plan: SweepPlan,
    /// Solves one point, optionally seeded by the warm state of its
    /// lattice donor ([`SweepPlan::donor`]), and exports this point's
    /// own warm state for downstream neighbours (`None` when the
    /// figure does not participate in warm starts). Must be
    /// deterministic and — given the same donor — independent across
    /// points; the runner fans it through [`lrd_pool::par_map`]. The
    /// solved **values** must not depend on the donor at all: the
    /// solver's warm path guarantees bit-identical bounds, and the
    /// merge layer asserts it.
    #[allow(clippy::type_complexity)]
    pub solve: Box<dyn Fn(&PointSpec, Option<&WarmState>) -> (PointResult, Option<WarmState>) + Sync + 'a>,
}

impl std::fmt::Debug for FigureSweep<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FigureSweep")
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

/// Solves one point while watching its `solver.solve` telemetry span,
/// stamping the summed span duration into the result. No new
/// stopwatch: the timing is the one the solver's own span already
/// measures, captured thread-locally (so it composes with `par_map`
/// workers and any installed telemetry sink). Durations feed the
/// cost-weighted re-split planner only — they never influence the
/// solved values.
pub(crate) fn solve_timed(
    sweep: &FigureSweep<'_>,
    spec: &PointSpec,
    donor: Option<&WarmState>,
) -> (PointResult, Option<WarmState>) {
    let ((mut result, state), dur) =
        lrd_obs::watch_span("solver.solve", || (sweep.solve)(spec, donor));
    result.solve_us = dur;
    if let Some(us) = dur {
        // The per-point duration stream: quantiles in the summary
        // sink, and (in steal mode) the coordinator's live cost model.
        lrd_obs::histogram("sweep.solve_us", us);
    }
    (result, state)
}

/// Whether lattice warm-starting is enabled (the default).
/// `LRD_WARM=off|0|none|cold` forces every point to solve cold — the
/// lever behind the pinned cold-baseline telemetry in
/// `results/telemetry/` and quick A/B comparisons. Values are
/// bit-identical either way (the solver's warm-path contract), so the
/// knob only moves iteration counts. Read once; mirrors `LRD_SIMD`.
fn warm_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("LRD_WARM").as_deref(),
            Ok("off" | "0" | "none" | "cold")
        )
    })
}

/// The warm states harvested so far within one execution partition (a
/// shard run, or one leased batch in steal mode), keyed by point
/// index. Feeding a chunk through [`WarmPool::solve_chunk`] looks up
/// each point's plan-fixed donor among the already-harvested states —
/// a donor not in the pool (first wave, resumed from a checkpoint,
/// owned by another shard/batch, or sharing the current chunk) simply
/// seeds nothing and the point runs cold.
///
/// Determinism: the pool's contents at each chunk boundary are a pure
/// function of the chunk partition, which the callers derive from the
/// plan and the resume state alone — never from thread scheduling. The
/// solver guarantees warm and cold solves agree bitwise on values, so
/// even partitions that disagree (different shard splits, reclaimed
/// steal leases) merge bit-identically; only iteration counts differ.
pub(crate) struct WarmPool {
    states: HashMap<usize, WarmState>,
}

impl WarmPool {
    /// An empty pool — every first point of a partition runs cold.
    pub(crate) fn new() -> WarmPool {
        WarmPool {
            states: HashMap::new(),
        }
    }

    /// Solves one chunk through the worker pool, seeding each point
    /// from its donor when already harvested, then harvests the
    /// chunk's own exported states.
    pub(crate) fn solve_chunk(
        &mut self,
        sweep: &FigureSweep<'_>,
        chunk: &[PointSpec],
        timed: bool,
    ) -> Vec<PointResult> {
        let states = &self.states;
        let warm = warm_enabled();
        let solved = lrd_pool::par_map(chunk, |spec| {
            let donor = if warm {
                sweep.plan.donor(spec.index).and_then(|d| states.get(&d))
            } else {
                None
            };
            if timed {
                solve_timed(sweep, spec, donor)
            } else {
                (sweep.solve)(spec, donor)
            }
        });
        let mut results = Vec::with_capacity(solved.len());
        for (result, state) in solved {
            if let Some(state) = state {
                self.states.insert(result.index, state);
            }
            results.push(result);
        }
        results
    }
}

/// Splits `specs` (stable-index order) into execution chunks of at
/// most `cap` points that never straddle a wavefront boundary
/// ([`SweepPlan::wave_of`]) — so by the time a chunk starts, every
/// in-partition donor of its points has been solved and harvested.
/// Plans without a warm axis form a single wave and this degenerates
/// to plain `chunks(cap)`.
pub(crate) fn wave_chunks<'p>(
    plan: &SweepPlan,
    specs: &'p [PointSpec],
    cap: usize,
) -> Vec<&'p [PointSpec]> {
    let mut chunks = Vec::new();
    let mut rest = specs;
    while let Some(first) = rest.first() {
        let wave = plan.wave_of(first.index);
        let len = rest
            .iter()
            .position(|s| plan.wave_of(s.index) != wave)
            .unwrap_or(rest.len());
        let (head, tail) = rest.split_at(len);
        for chunk in head.chunks(cap.max(1)) {
            chunks.push(chunk);
        }
        rest = tail;
    }
    chunks
}

/// Whether an I/O failure is worth retrying: the kernel interrupted or
/// back-pressured the write, or the disk is (possibly momentarily)
/// full. Anything else — permissions, a vanished file, a read-only
/// mount — will not get better by waiting.
fn is_transient(kind: std::io::ErrorKind) -> bool {
    use std::io::ErrorKind;
    matches!(
        kind,
        ErrorKind::Interrupted
            | ErrorKind::WouldBlock
            | ErrorKind::StorageFull
            | ErrorKind::QuotaExceeded
            | ErrorKind::ResourceBusy
    )
}

/// Runs `op` up to [`APPEND_ATTEMPTS`] times, sleeping an
/// exponentially-growing backoff between attempts and emitting a
/// `sweep.checkpoint_retry` warning event per retry. Only transient
/// failures ([`is_transient`]) are retried; hard failures and an
/// exhausted budget surface as [`SweepError::Io`].
pub(crate) fn retry_transient(
    path: &Path,
    what: &str,
    mut op: impl FnMut() -> std::io::Result<()>,
) -> Result<(), SweepError> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(()) => return Ok(()),
            Err(e) if attempt + 1 < APPEND_ATTEMPTS && is_transient(e.kind()) => {
                attempt += 1;
                eprintln!(
                    "warning: {}: transient {what} failure ({e}); retrying \
                     (attempt {attempt} of {})",
                    path.display(),
                    APPEND_ATTEMPTS - 1,
                );
                lrd_obs::event!(
                    "sweep.checkpoint_retry",
                    path = path.display().to_string(),
                    what = what.to_string(),
                    attempt = u64::from(attempt),
                    error = e.to_string(),
                );
                std::thread::sleep(std::time::Duration::from_millis(1u64 << attempt));
            }
            Err(e) => return Err(SweepError::io(path, &e)),
        }
    }
}

/// Appends `text` to an open checkpoint handle with bounded retries.
/// A failed attempt may have written a partial line; each retry first
/// truncates back to the pre-append length so the file never
/// accumulates torn middles — the retried append starts on the same
/// clean boundary.
pub(crate) fn append_with_retry(
    file: &mut File,
    path: &Path,
    text: &str,
) -> Result<(), SweepError> {
    let start = file.metadata().map_err(|e| SweepError::io(path, &e))?.len();
    retry_transient(path, "checkpoint append", || {
        if file.metadata()?.len() != start {
            file.set_len(start)?;
        }
        file.write_all(text.as_bytes())?;
        file.flush()
    })
}

/// Runs `shard` of the sweep, returning its results in stable-index
/// order.
///
/// Execution follows the plan's deterministic wavefront schedule: the
/// shard's points run in stable-index order, chunked so no chunk
/// straddles a warm-axis wave boundary, and each point is seeded by
/// its plan-fixed donor's [`WarmState`] when that donor was solved
/// earlier in this run ([`SweepPlan::donor`]; donors outside the
/// shard, inside the current chunk, or resumed from a checkpoint seed
/// nothing and the point runs cold). For plans without a warm axis
/// this is exactly the old behaviour: without a checkpoint the points
/// fan through [`lrd_pool::par_map`] in one batch. With a checkpoint,
/// completed points are appended in [`CHECKPOINT_CHUNK`]-sized batches as
/// they finish — each point line carrying its measured `solver.solve`
/// duration for the re-split planner — and a pre-existing file from an
/// interrupted run is **resumed**: its manifest is validated against
/// the plan (figure, plan hash, profile, shard, lattice size — any
/// disagreement is a typed [`SweepError::ManifestMismatch`]), its
/// intact points are kept without re-solving, and a torn final line
/// from a mid-write kill is dropped and re-solved. A file whose
/// *manifest* line is torn (the producer was killed before its first
/// flush, so the file holds no solved work) is discarded with a
/// warning and the shard starts fresh. Fresh manifests are fsynced
/// before the first point append, and appends themselves retry
/// transient I/O failures with backoff before giving up. Solved values
/// are bit-identical whether a shard ran straight through, was killed
/// and resumed, or never checkpointed at all.
pub fn run_points(
    sweep: &FigureSweep<'_>,
    shard: &ShardSpec,
    checkpoint: Option<&Path>,
) -> Result<Vec<PointResult>, SweepError> {
    let owned = sweep.plan.points_for(shard);

    let Some(path) = checkpoint else {
        // No checkpoint: one `par_map` batch per wavefront (a single
        // batch for cold plans), threading warm states between waves.
        let mut pool = WarmPool::new();
        let mut results = Vec::with_capacity(owned.len());
        for chunk in wave_chunks(&sweep.plan, &owned, usize::MAX) {
            results.extend(pool.solve_chunk(sweep, chunk, false));
        }
        return Ok(results);
    };

    let origin = CheckpointOrigin::Shard(shard.clone());
    let (mut done, mut file) = open_checkpoint(path, &sweep.plan, &origin)?;

    let remaining: Vec<PointSpec> = owned
        .into_iter()
        .filter(|spec| !done.contains_key(&spec.index))
        .collect();

    // Points resumed from the checkpoint carry no warm state (only
    // their values were persisted), so their lattice dependents run
    // cold — deterministically, because the resume set is fixed before
    // any solving starts.
    let mut pool = WarmPool::new();
    for chunk in wave_chunks(&sweep.plan, &remaining, CHECKPOINT_CHUNK) {
        let results = pool.solve_chunk(sweep, chunk, true);
        let mut text = String::new();
        for (spec, result) in chunk.iter().zip(&results) {
            debug_assert_eq!(spec.index, result.index, "solve must preserve the index");
            text.push_str(&point_line(&spec.coords, result));
            text.push('\n');
        }
        append_with_retry(&mut file, path, &text)?;
        for result in results {
            done.insert(result.index, result);
        }
    }
    Ok(done.into_values().collect())
}

/// Runs the full (unsharded, uncheckpointed) sweep and assembles the
/// surface — the path every in-process figure call takes.
pub fn run_grid(sweep: &FigureSweep<'_>) -> Grid {
    let results =
        run_points(sweep, &ShardSpec::FULL, None).expect("uncheckpointed run cannot fail on I/O");
    sweep.plan.to_grid(&results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Profile;
    use crate::sweep::{manifest_line, Axis};
    use lrd_fluidq::SolverOptions;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn sweep() -> FigureSweep<'static> {
        let plan = SweepPlan::grid_plan(
            "demo",
            Profile::Quick,
            "loss_rate",
            Axis::new("b", vec![0.1, 1.0, 10.0]),
            Axis::new("tc", vec![0.5, 5.0, f64::INFINITY]),
            SolverOptions::sweep_profile(),
        );
        FigureSweep {
            plan,
            solve: Box::new(|spec: &PointSpec, _donor| {
                (
                    PointResult {
                        index: spec.index,
                        value: spec.coords[0].min(spec.coords[1]) / 3.0,
                        iterations: 5,
                        bins: 128,
                        converged: true,
                        solve_us: None,
                    },
                    None,
                )
            }),
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lrd-runner-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("shard.jsonl")
    }

    #[test]
    fn grid_matches_direct_solve() {
        let s = sweep();
        let g = run_grid(&s);
        g.validate();
        assert_eq!(g.values[2][2], 10.0f64.min(f64::INFINITY) / 3.0);
    }

    #[test]
    fn checkpointed_shard_matches_plain_run_bitwise() {
        let s = sweep();
        let shard = ShardSpec::new(1, 2).unwrap();
        let plain = run_points(&s, &shard, None).unwrap();
        let path = tmp("bitwise");
        let _ = std::fs::remove_file(&path);
        let checkpointed = run_points(&s, &shard, Some(&path)).unwrap();
        assert_eq!(plain.len(), checkpointed.len());
        for (a, b) in plain.iter().zip(&checkpointed) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
        // Re-running over the finished checkpoint solves nothing and
        // returns the identical surface.
        let again = run_points(&s, &shard, Some(&path)).unwrap();
        assert_eq!(checkpointed, again);
    }

    #[test]
    fn explicit_shard_solves_exactly_its_owned_points() {
        let s = sweep();
        let shard = ShardSpec::owned(0, 2, vec![7, 2, 4]).unwrap();
        let path = tmp("explicit");
        let _ = std::fs::remove_file(&path);
        let results = run_points(&s, &shard, Some(&path)).unwrap();
        assert_eq!(
            results.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![2, 4, 7]
        );
        // The owned set survives the checkpoint round trip, so a
        // resume validates against the same ownership.
        let again = run_points(&s, &shard, Some(&path)).unwrap();
        assert_eq!(results, again);
    }

    #[test]
    fn checkpointed_run_records_solver_span_durations() {
        let plan = sweep().plan;
        let spanning = FigureSweep {
            plan: plan.clone(),
            solve: Box::new(move |spec: &PointSpec, _donor| {
                let _span = lrd_obs::span!("solver.solve");
                (
                    PointResult {
                        index: spec.index,
                        value: spec.index as f64,
                        iterations: 1,
                        bins: 128,
                        converged: true,
                        solve_us: None,
                    },
                    None,
                )
            }),
        };
        // Uncheckpointed: no watcher, durations stay None.
        let plain = run_points(&spanning, &ShardSpec::FULL, None).unwrap();
        assert!(plain.iter().all(|r| r.solve_us.is_none()));
        // Checkpointed: every point carries its measured span duration.
        let path = tmp("durations");
        let _ = std::fs::remove_file(&path);
        let timed = run_points(&spanning, &ShardSpec::FULL, Some(&path)).unwrap();
        assert!(timed.iter().all(|r| r.solve_us.is_some_and(|d| d >= 0.0)));
        // …and the values are unchanged by the timing.
        for (a, b) in plain.iter().zip(&timed) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }

    /// A warm sweep whose stub closure exports a (cloned, real) solver
    /// state for every point and records which points received a
    /// donor, so the tests below can pin the wavefront wiring without
    /// re-proving the solver's warm/cold bit-identity (the fluidq
    /// suite owns that).
    fn warm_sweep(warmed: &std::sync::Mutex<Vec<usize>>) -> FigureSweep<'_> {
        use crate::corpus::{Corpus, MTV_UTILIZATION};
        let corpus = Corpus::quick();
        let opts = SolverOptions::sweep_profile();
        let (_, state) =
            lrd_fluidq::SolveSession::builder(&corpus.mtv.model(MTV_UTILIZATION, 0.1, 0.05))
                .options(&opts)
                .solve_warm();
        let plan = SweepPlan::grid_plan(
            "warmdemo",
            Profile::Quick,
            "v",
            Axis::new("b", vec![1.0, 2.0, 3.0]),
            Axis::new("tc", vec![0.5, 5.0]),
            opts,
        )
        .with_warm_axis(0);
        FigureSweep {
            plan,
            solve: Box::new(move |spec: &PointSpec, donor| {
                if donor.is_some() {
                    warmed.lock().unwrap().push(spec.index);
                }
                (
                    PointResult {
                        index: spec.index,
                        value: spec.index as f64,
                        iterations: 1,
                        bins: 128,
                        converged: true,
                        solve_us: None,
                    },
                    Some(state.clone()),
                )
            }),
        }
    }

    fn drain_sorted(warmed: &std::sync::Mutex<Vec<usize>>) -> Vec<usize> {
        let mut seen: Vec<usize> = std::mem::take(&mut *warmed.lock().unwrap());
        seen.sort_unstable();
        seen
    }

    #[test]
    fn wavefront_threads_donors_between_waves() {
        let warmed = std::sync::Mutex::new(Vec::new());
        let s = warm_sweep(&warmed);

        // Full run: only the first buffer wave (indices 0, 1) is cold.
        run_points(&s, &ShardSpec::FULL, None).unwrap();
        assert_eq!(drain_sorted(&warmed), vec![2, 3, 4, 5]);

        // An explicit shard: donors outside the owned set seed nothing.
        // Owned {0, 2, 3, 5}: donor(2)=0 and donor(5)=3 are in-shard,
        // donor(3)=1 is not — deterministically cold.
        let shard = ShardSpec::owned(0, 1, vec![0, 2, 3, 5]).unwrap();
        run_points(&s, &shard, None).unwrap();
        assert_eq!(drain_sorted(&warmed), vec![2, 5]);
    }

    #[test]
    fn resumed_points_donate_nothing() {
        let warmed = std::sync::Mutex::new(Vec::new());
        let s = warm_sweep(&warmed);
        let path = tmp("warm-resume");
        let _ = std::fs::remove_file(&path);

        // Simulate an interrupted run that had solved point 0 only.
        let full = run_points(&s, &ShardSpec::FULL, None).unwrap();
        drain_sorted(&warmed);
        let mut text = manifest_line(&s.plan, &ShardSpec::FULL);
        text.push('\n');
        text.push_str(&point_line(&s.plan.point(0).coords, &full[0]));
        text.push('\n');
        std::fs::write(&path, text).unwrap();

        // On resume, point 2's donor (0) came from the checkpoint and
        // carries no state — it runs cold; everything downstream of
        // this run's own solves still warms.
        let resumed = run_points(&s, &ShardSpec::FULL, Some(&path)).unwrap();
        assert_eq!(drain_sorted(&warmed), vec![3, 4, 5]);
        assert_eq!(resumed.len(), full.len());
        for (a, b) in full.iter().zip(&resumed) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }

    #[test]
    fn wave_chunks_never_straddle_wave_boundaries() {
        let plan = SweepPlan::grid_plan(
            "demo",
            Profile::Quick,
            "v",
            Axis::new("b", vec![1.0, 2.0, 3.0]),
            Axis::new("tc", (0..5).map(f64::from).collect()),
            SolverOptions::sweep_profile(),
        )
        .with_warm_axis(0);
        let specs = plan.points_for(&ShardSpec::FULL);
        // cap 4 < wave size 5: each 5-point wave splits 4 + 1.
        let chunks = wave_chunks(&plan, &specs, 4);
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        assert_eq!(sizes, vec![4, 1, 4, 1, 4, 1]);
        for chunk in &chunks {
            let wave = plan.wave_of(chunk[0].index);
            assert!(chunk.iter().all(|s| plan.wave_of(s.index) == wave));
        }
        // Chunking covers every point exactly once, in order.
        let flat: Vec<usize> = chunks.iter().flat_map(|c| c.iter().map(|s| s.index)).collect();
        assert_eq!(flat, (0..plan.len()).collect::<Vec<_>>());

        // A cold plan is one wave: the unbounded cap yields one batch.
        let cold = SweepPlan::grid_plan(
            "demo",
            Profile::Quick,
            "v",
            Axis::new("b", vec![1.0, 2.0, 3.0]),
            Axis::new("tc", (0..5).map(f64::from).collect()),
            SolverOptions::sweep_profile(),
        );
        assert_eq!(wave_chunks(&cold, &specs, usize::MAX).len(), 1);
    }

    #[test]
    fn torn_manifest_checkpoint_is_discarded_and_rerun_fresh() {
        let s = sweep();
        let path = tmp("torn-manifest");
        let _ = std::fs::remove_file(&path);
        // A process killed before its first flush leaves a prefix of
        // the manifest line with no newline — the exact artifact of a
        // kill between the manifest write and its flush/fsync.
        let manifest = manifest_line(&s.plan, &ShardSpec::FULL);
        std::fs::write(&path, &manifest[..manifest.len() / 2]).unwrap();

        let recovered = run_points(&s, &ShardSpec::FULL, Some(&path)).unwrap();
        let reference = run_points(&s, &ShardSpec::FULL, None).unwrap();
        assert_eq!(recovered.len(), reference.len());
        for (a, b) in reference.iter().zip(&recovered) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
        // The rewritten file is a valid, complete checkpoint now.
        let again = run_points(&s, &ShardSpec::FULL, Some(&path)).unwrap();
        assert_eq!(recovered, again);
    }

    #[test]
    fn fresh_manifest_is_complete_on_disk_before_any_append() {
        // Satellite regression: open_checkpoint must leave a complete,
        // newline-terminated, fsynced manifest on disk *before* the
        // append handle is handed out — so a kill between manifest
        // write and first point line leaves a resumable file, not a
        // torn one.
        let s = sweep();
        let path = tmp("durable-manifest");
        let _ = std::fs::remove_file(&path);
        let origin = CheckpointOrigin::Shard(ShardSpec::FULL);
        let (done, file) = open_checkpoint(&path, &s.plan, &origin).unwrap();
        assert!(done.is_empty());
        // Simulate the kill: drop the handle without appending.
        drop(file);
        let on_disk = std::fs::read_to_string(&path).unwrap();
        let mut want = manifest_line(&s.plan, &ShardSpec::FULL);
        want.push('\n');
        assert_eq!(on_disk, want);
        // And the survivor resumes cleanly, solving everything.
        let resumed = run_points(&s, &ShardSpec::FULL, Some(&path)).unwrap();
        assert_eq!(resumed.len(), s.plan.len());
    }

    #[test]
    fn transient_append_failures_are_retried() {
        use std::io::{Error, ErrorKind};
        let path = tmp("retry");
        // Two WouldBlocks then success: op runs three times, Ok.
        let calls = AtomicUsize::new(0);
        retry_transient(&path, "test append", || {
            match calls.fetch_add(1, Ordering::SeqCst) {
                0 => Err(Error::new(ErrorKind::WouldBlock, "busy")),
                1 => Err(Error::from(ErrorKind::StorageFull)),
                _ => Ok(()),
            }
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 3);

        // A hard failure is not retried at all.
        let calls = AtomicUsize::new(0);
        let err = retry_transient(&path, "test append", || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(Error::new(ErrorKind::PermissionDenied, "nope"))
        })
        .unwrap_err();
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert!(matches!(err, SweepError::Io { .. }));

        // A persistent transient failure exhausts the budget.
        let calls = AtomicUsize::new(0);
        let err = retry_transient(&path, "test append", || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(Error::new(ErrorKind::Interrupted, "eintr"))
        })
        .unwrap_err();
        assert_eq!(calls.load(Ordering::SeqCst), APPEND_ATTEMPTS as usize);
        assert!(matches!(err, SweepError::Io { .. }));
    }

    #[test]
    fn retried_append_truncates_partial_writes() {
        // A partial line left by a failed attempt must be cut back
        // before the retry, so the checkpoint never holds a torn
        // middle. Simulate by writing garbage through a second handle
        // between "attempts".
        let s = sweep();
        let path = tmp("truncate");
        let _ = std::fs::remove_file(&path);
        let origin = CheckpointOrigin::Shard(ShardSpec::FULL);
        let (_, mut file) = open_checkpoint(&path, &s.plan, &origin).unwrap();
        let start = file.metadata().unwrap().len();
        // The "failed attempt": half a point line, no newline.
        let full = run_points(&s, &ShardSpec::FULL, None).unwrap();
        let line = point_line(&s.plan.point(0).coords, &full[0]);
        file.write_all(&line.as_bytes()[..line.len() / 2]).unwrap();
        file.flush().unwrap();
        assert!(file.metadata().unwrap().len() > start);
        // The retry path: append_with_retry on a fresh handle sees the
        // same pre-append length only if the caller recorded it — here
        // we exercise the truncation branch directly.
        file.set_len(start).unwrap();
        append_with_retry(&mut file, &path, &format!("{line}\n")).unwrap();
        let again = run_points(&s, &ShardSpec::FULL, Some(&path)).unwrap();
        assert_eq!(again.len(), s.plan.len());
        for (a, b) in full.iter().zip(&again) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }

    #[test]
    fn resume_skips_solved_points() {
        let calls = AtomicUsize::new(0);
        let base = sweep();
        let counting = FigureSweep {
            plan: base.plan.clone(),
            solve: Box::new(|spec: &PointSpec, donor| {
                calls.fetch_add(1, Ordering::SeqCst);
                (base.solve)(spec, donor)
            }),
        };
        let path = tmp("resume");
        let _ = std::fs::remove_file(&path);

        // Simulate an interrupted run: manifest plus the first two
        // solved points, with the second line torn mid-write.
        let full = run_points(&base, &ShardSpec::FULL, None).unwrap();
        let mut text = manifest_line(&base.plan, &ShardSpec::FULL);
        text.push('\n');
        text.push_str(&point_line(&base.plan.point(0).coords, &full[0]));
        text.push('\n');
        let torn = point_line(&base.plan.point(1).coords, &full[1]);
        text.push_str(&torn[..torn.len() - 5]);
        std::fs::write(&path, text).unwrap();

        let resumed = run_points(&counting, &ShardSpec::FULL, Some(&path)).unwrap();
        // Point 0 was kept; the torn point 1 and the remaining 7 were
        // re-solved.
        assert_eq!(calls.load(Ordering::SeqCst), base.plan.len() - 1);
        assert_eq!(resumed.len(), full.len());
        for (a, b) in full.iter().zip(&resumed) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }

    #[test]
    fn resume_rejects_other_plans_shard_and_points() {
        let s = sweep();
        let path = tmp("reject");
        let _ = std::fs::remove_file(&path);
        run_points(&s, &ShardSpec::FULL, Some(&path)).unwrap();

        // Same file, different declared shard.
        let err = run_points(&s, &ShardSpec::new(0, 2).unwrap(), Some(&path)).unwrap_err();
        assert!(matches!(
            err,
            SweepError::ManifestMismatch { field: "shard", .. }
        ));

        // Same shard, different plan (axis value changed → new hash).
        let mut other = sweep();
        other.plan.axes[0].values[0] = 0.2;
        let err = run_points(&other, &ShardSpec::FULL, Some(&path)).unwrap_err();
        assert!(matches!(
            err,
            SweepError::ManifestMismatch {
                field: "plan_hash",
                ..
            }
        ));

        // A point the declared shard does not own.
        let shard = ShardSpec::new(0, 3).unwrap();
        let mut text = manifest_line(&s.plan, &shard);
        text.push('\n');
        text.push_str(&point_line(
            &s.plan.point(1).coords,
            &(s.solve)(&s.plan.point(1), None).0,
        ));
        text.push('\n');
        std::fs::write(&path, text).unwrap();
        let err = run_points(&s, &shard, Some(&path)).unwrap_err();
        assert!(matches!(err, SweepError::ForeignPoint { index: 1, .. }));
    }
}
